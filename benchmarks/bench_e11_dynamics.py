"""E11 — the paper's caveat: topology changes mid-protocol corrupt the map.

The introduction motivates fast protocols with exactly this hazard: "if a
processor is randomly added or removed from the topology of the network in
the middle of the computation, a global topology determination is likely to
produce an incorrect result."  We sweep the *time* of a single wire cut (or
addition) across the protocol's lifetime and classify each run: accurate,
stale (terminates with a map of a network that no longer exists), deadlock,
or a protocol-level error.

Expected shape: mutations landing inside the active window almost never
yield an accurate map; mutations after termination always do.
"""

from __future__ import annotations

from repro import determine_topology
from repro.dynamics import DynamicOutcome, WireMutation, run_dynamic_gtd
from repro.topology.portgraph import PortGraph, Wire
from repro.util.tables import format_table

from _report import report


def ring_with_spare_ports(n: int) -> PortGraph:
    """A bidirectional ring built at delta=3 so port 3 is free everywhere."""
    g = PortGraph(n, 3)
    for u in range(n):
        g.add_wire(u, 1, (u + 1) % n, 1)
        g.add_wire(u, 2, (u - 1) % n, 2)
    return g.freeze()


def run_sweep():
    graph = ring_with_spare_ports(8)
    baseline = determine_topology(graph)
    horizon = baseline.ticks
    victim = graph.out_wire(4, 1)
    addition = Wire(0, 3, 4, 3)

    rows = []
    accurate_mid = 0
    mid_cases = 0
    for fraction in (0.1, 0.3, 0.5, 0.7, 0.9, 1.2):
        when = int(horizon * fraction)
        cut = run_dynamic_gtd(
            graph,
            [WireMutation(tick=when, kind="cut", wire=victim)],
            max_ticks=horizon * 3,
        )
        add = run_dynamic_gtd(
            graph, [WireMutation(tick=when, kind="add", wire=addition)]
        )
        rows.append(
            (
                f"{fraction:.0%} of runtime",
                when,
                cut.outcome.value,
                cut.lost_characters,
                add.outcome.value,
            )
        )
        if fraction < 1.0:
            mid_cases += 2
            accurate_mid += (cut.outcome is DynamicOutcome.ACCURATE) + (
                add.outcome is DynamicOutcome.ACCURATE
            )
    return rows, horizon, accurate_mid, mid_cases


def test_e11_mid_protocol_changes(benchmark):
    rows, horizon, accurate_mid, mid_cases = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    benchmark.extra_info["mid_run_accuracy"] = f"{accurate_mid}/{mid_cases}"
    report(
        "e11_dynamics",
        format_table(
            ["mutation time", "tick", "cut outcome", "chars lost", "add outcome"],
            rows,
            title=f"E11 (paper §1.1 caveat): one wire cut/added during a run "
            f"that takes {horizon} ticks undisturbed — mid-run accuracy "
            f"{accurate_mid}/{mid_cases}",
        ),
    )
    # Mutations applied after termination leave the map accurate...
    assert rows[-1][2] == "accurate" and rows[-1][4] == "accurate"
    # ...while mid-run mutations essentially never do.
    assert accurate_mid <= mid_cases // 2
