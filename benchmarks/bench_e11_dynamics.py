"""E11 — the paper's caveat: topology changes mid-protocol corrupt the map.

The introduction motivates fast protocols with exactly this hazard: "if a
processor is randomly added or removed from the topology of the network in
the middle of the computation, a global topology determination is likely to
produce an incorrect result."  We sweep the *time* of a single wire cut (or
addition) across the protocol's lifetime and classify each run: accurate,
stale (terminates with a map of a network that no longer exists), deadlock,
or a protocol-level error.

The sweep is one campaign: the ``spare-ring`` family (a bidirectional ring
with a free port on every processor, so wires can appear mid-run) crossed
with ``cut:FRACTION`` / ``add:FRACTION`` fault models at increasing
fractions of the undisturbed runtime.

Expected shape: mutations landing inside the active window almost never
yield an accurate map; mutations after termination always do.
"""

from __future__ import annotations

from repro.campaigns import CampaignSpec, Scenario, run_campaign, run_scenario
from repro.util.tables import format_table

from _report import bench_metric, report

FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.2)
SIZE = 8


def run_sweep():
    baseline = run_scenario(Scenario(family="spare-ring", size=SIZE))
    horizon = baseline.ticks
    campaign = run_campaign(
        CampaignSpec(
            families=("spare-ring",),
            sizes=(SIZE,),
            faults=tuple(
                f"{kind}:{fraction}" for fraction in FRACTIONS for kind in ("cut", "add")
            ),
        )
    )
    by_fault = {r.scenario.fault: r for r in campaign.results}
    rows = []
    accurate_mid = 0
    mid_cases = 0
    for fraction in FRACTIONS:
        cut = by_fault[f"cut:{fraction}"]
        add = by_fault[f"add:{fraction}"]
        rows.append(
            (
                f"{fraction:.0%} of runtime",
                int(horizon * fraction),
                cut.outcome,
                cut.lost_characters,
                add.outcome,
            )
        )
        if fraction < 1.0:
            mid_cases += 2
            accurate_mid += (cut.outcome == "accurate") + (add.outcome == "accurate")
    return rows, horizon, accurate_mid, mid_cases


def test_e11_mid_protocol_changes(benchmark):
    rows, horizon, accurate_mid, mid_cases = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    benchmark.extra_info["mid_run_accuracy"] = f"{accurate_mid}/{mid_cases}"
    bench_metric(
        "e11",
        "undisturbed_horizon_ticks",
        horizon,
        direction="lower",
        unit="ticks",
        meta={"mid_run_accuracy": f"{accurate_mid}/{mid_cases}"},
    )
    report(
        "e11_dynamics",
        format_table(
            ["mutation time", "tick", "cut outcome", "chars lost", "add outcome"],
            rows,
            title=f"E11 (paper §1.1 caveat): one wire cut/added during a run "
            f"that takes {horizon} ticks undisturbed — mid-run accuracy "
            f"{accurate_mid}/{mid_cases}",
        ),
    )
    # Mutations applied after termination leave the map accurate...
    assert rows[-1][2] == "accurate" and rows[-1][4] == "accurate"
    # ...while mid-run mutations essentially never do.
    assert accurate_mid <= mid_cases // 2
