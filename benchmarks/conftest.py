"""Benchmark-suite configuration: make sure the output directory exists.

Per-file staleness is handled inside ``_report``: the first metric (or
report line) an experiment records in a session unlinks that
experiment's own snapshot/log.  Wiping the whole directory here instead
would break CI's one-bench-per-step flow — every later invocation would
erase the snapshots the earlier steps produced, leaving the
bench-compare steps nothing to diff.
"""

from __future__ import annotations

import pytest

from _report import OUT_DIR


@pytest.fixture(scope="session", autouse=True)
def clean_out_dir():
    OUT_DIR.mkdir(exist_ok=True)
    yield
