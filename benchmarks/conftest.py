"""Benchmark-suite configuration: fresh output directory per session."""

from __future__ import annotations

import shutil

import pytest

from _report import OUT_DIR


@pytest.fixture(scope="session", autouse=True)
def clean_out_dir():
    """Start each benchmark session with an empty results directory."""
    if OUT_DIR.exists():
        shutil.rmtree(OUT_DIR)
    OUT_DIR.mkdir()
    yield
