"""E4 — the BCA contract (§4.1): backwards delivery in O(D).

Sweep directed rings (backwards across one edge costs a full circuit, the
worst case) and confirm: message delivered, initiator informed strictly
after delivery, cost linear in the circuit length, and constant cost when a
reverse wire exists (bidirectional ring).
"""

from __future__ import annotations

from repro.analysis.complexity import check_linear_scaling
from repro.protocol.bca import run_single_bca
from repro.topology import generators
from repro.util.tables import format_table

from _report import report

RING_SIZES = (4, 8, 12, 16, 24, 32, 48)


def run_sweep():
    rows = []
    xs, ys = [], []
    for n in RING_SIZES:
        graph = generators.directed_ring(n)
        res = run_single_bca(graph, node=1, in_port=1)
        rows.append(("directed_ring", n, n, res.delivered_at, res.initiator_done_at))
        xs.append(n)
        ys.append(res.initiator_done_at)
        assert res.initiator_done_at > res.delivered_at
    for n in (8, 32):
        graph = generators.bidirectional_ring(n)
        res = run_single_bca(graph, node=1, in_port=1)
        rows.append(("bidirectional_ring", n, 2, res.delivered_at, res.initiator_done_at))
    return rows, xs, ys


def test_e4_bca_linear_in_d(benchmark):
    rows, xs, ys = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    verdict = check_linear_scaling(xs, ys)
    benchmark.extra_info["ticks_per_hop"] = round(verdict.fit.slope, 2)
    report(
        "e4_bca",
        format_table(
            ["network", "N", "loop length", "delivered@", "initiator done@"],
            rows,
            title="E4 (BCA, §4.1): backwards delivery cost — "
            f"fit {verdict.fit.slope:.2f} ticks/hop, R^2={verdict.fit.r_squared:.4f}",
        ),
    )
    assert verdict.is_linear
    # constant-time when the reverse wire exists, regardless of N
    bidi = [r for r in rows if r[0] == "bidirectional_ring"]
    assert bidi[0][4] == bidi[1][4]
