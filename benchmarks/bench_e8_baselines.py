"""E8 — the protocol vs relaxed-model baselines.

Rows per network: the paper's protocol (anonymous, finite-state,
constant-size characters), the echo mapper (unique IDs + unbounded
messages) and the unbounded-memory DFS walker.  Expected shape: the
baselines win on raw time by orders of magnitude but their resources
(message size / token memory) grow with the network, while the protocol's
characters stay constant-size — the trade the paper's model forces.
"""

from __future__ import annotations

from repro import determine_topology
from repro.baselines.dfs_unbounded import unbounded_dfs_map
from repro.baselines.echo_mapper import echo_map
from repro.sim.characters import alphabet_size
from repro.topology import generators
from repro.util.tables import format_table

from _report import report


def workloads():
    yield "de_bruijn(2,3)", generators.de_bruijn(2, 3)
    yield "de_bruijn(2,4)", generators.de_bruijn(2, 4)
    yield "bidirectional_ring(12)", generators.bidirectional_ring(12)
    yield "torus(4x4)", generators.directed_torus(4, 4)


def run_sweep():
    rows = []
    for name, graph in workloads():
        protocol = determine_topology(graph)
        echo = echo_map(graph)
        dfs = unbounded_dfs_map(graph)
        assert protocol.matches(graph)
        assert echo.matches(graph) and dfs.matches(graph)
        rows.append(
            (
                name,
                graph.num_nodes,
                protocol.ticks,
                f"|I|={alphabet_size(graph.delta)} (const)",
                echo.rounds,
                echo.max_message_entries,
                dfs.steps,
                graph.num_wires,  # token memory grows with the map = E entries
            )
        )
    return rows


def test_e8_baseline_comparison(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "e8_baselines",
        format_table(
            [
                "network",
                "N",
                "protocol ticks",
                "protocol msg size",
                "echo rounds",
                "echo max msg (entries)",
                "DFS steps",
                "DFS token memory",
            ],
            rows,
            title="E8: constant-size-message protocol vs relaxed baselines "
            "(every mapper exact)",
        ),
    )
    # Baselines are faster but pay in message size / memory that scales
    # with the network; the protocol's alphabet never grows.
    for row in rows:
        assert row[4] < row[2], "echo should beat protocol on raw time"
        assert row[5] >= row[1] - 1, "echo messages carry ~the whole map"
