"""E6 — Lemma 5.1: G(N) >= N^{CN} topologies at diameter O(log N).

Two parts: (a) brute-force verification at tiny depths that the exact count
of non-isomorphic family members sits between the analytic lower bound and
the raw (L-1)! arrangement count; (b) the asymptotic table showing
log2 G(N) growing like N log N (a positive, stabilizing fraction of
log2 N^N).
"""

from __future__ import annotations

from repro.analysis.counting import (
    exact_family_count,
    family_loop_arrangements,
    tree_family_description,
)
from repro.util.tables import format_table

from _report import report


def run_exact_part():
    rows = []
    for depth in (1, 2):
        point = tree_family_description(depth)
        exact = exact_family_count(depth)
        bound = 2**point.log2_count_bound
        arrangements = family_loop_arrangements(depth)
        rows.append((depth, point.num_nodes, arrangements, round(bound, 3), exact))
        assert bound <= exact <= arrangements
    return rows


def run_asymptotic_part():
    rows = []
    fractions = []
    for depth in range(2, 13, 2):
        point = tree_family_description(depth)
        fraction = point.log2_count_bound / point.log2_n_to_the_n
        fractions.append(fraction)
        rows.append(
            (
                depth,
                point.num_nodes,
                point.diameter_bound,
                round(point.log2_count_bound, 1),
                round(point.log2_n_to_the_n, 1),
                round(fraction, 3),
            )
        )
    return rows, fractions


def test_e6_counting_lemma(benchmark):
    exact_rows = benchmark.pedantic(run_exact_part, rounds=1, iterations=1)
    asym_rows, fractions = run_asymptotic_part()
    benchmark.extra_info["limit_fraction_C"] = round(fractions[-1], 4)
    report(
        "e6_counting",
        format_table(
            ["depth", "N", "(L-1)! orders", "Lemma 5.1 bound", "exact count"],
            exact_rows,
            title="E6a (Lemma 5.1): exact isomorphism-class counts vs the bound",
        )
        + "\n\n"
        + format_table(
            ["depth", "N", "D bound", "log2 G(N)", "log2 N^N", "ratio (-> C)"],
            asym_rows,
            title="E6b (Lemma 5.1): log2 G(N) grows as a constant fraction of "
            "N log N at diameter O(log N)",
        ),
    )
    # the ratio stabilizes to a positive constant C: G(N) >= N^{CN}
    assert fractions[-1] > 0.3
    assert abs(fractions[-1] - fractions[-2]) < 0.05
