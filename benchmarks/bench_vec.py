"""Transition-table stepper bench — table walk vs closure dispatch.

PR 9 lowered the protocol automaton into the ``char_trans`` tensor: the
flat engine's hot loop executes dense int64 rows directly and only
escapes to the per-code closures for configurations the tables do not
own.  This bench measures both sides of that split on the *same engine
class* — the control engine clears ``TABLE_WALK`` so every delivery
takes the closure dispatch the production engine uses as its escape
path — and records the per-hop speedup the table walk buys.  In-bench
asserts pin tick counts, hop counts and byte-identical root transcripts
across both paths *and* the object backend, so neither side can drift
semantically while getting faster.

The lane sweep at the bottom rides the same tables through the batch
backend: S ∈ {1, 4, 16, 64} lock-step lanes of the full GTD on one
shared compiled topology, each lane's scalar stepper walking the one
mmap-able transition tensor.  Per-lane parity against the solo flat run
is asserted before any number is recorded.  The sweep needs numpy (the
``[batch]`` extra); those cases skip cleanly without it.
"""

from __future__ import annotations

import pytest

from repro import determine_topology
from repro.protocol.gtd import GTDProcessor
from repro.sim.batchcore import BatchEngine, LaneRun, have_numpy
from repro.sim.flatcore import FlatEngine
from repro.sim.run import ENGINE_BACKENDS
from repro.topology import generators

from _report import bench_metric, report


class _ClosureDispatchFlatEngine(FlatEngine):
    """Flat engine with the transition-table walk disabled (bench control).

    Every delivery runs the per-code closure handlers — exactly the path
    the production stepper escapes to for interceptions, KILL floods and
    loop tokens, here promoted to 100% of traffic.
    """

    TABLE_WALK = False


#: bench-local backend name; registered so the production run pipeline
#: (pooling, budgets, reconstruction) drives the control engine unchanged
ENGINE_BACKENDS.setdefault("flat-nowalk", _ClosureDispatchFlatEngine)

#: lane counts of the batch sweep (64 lanes of de_bruijn(2,4) fit easily;
#: the point is the per-lane overhead curve, not peak memory)
LANE_SWEEP = (1, 4, 16, 64)


def _transcript_bytes(result) -> bytes:
    return "\n".join(repr(e) for e in result.transcript.events()).encode()


#: metric name -> (hops, rate, transcript bytes), filled as tests run
_SIDES: dict[str, tuple[int, float, bytes]] = {}


def _measure_side(benchmark, *, backend: str, metric: str) -> None:
    graph = generators.de_bruijn(2, 4)  # N=16, E=32, D=4
    reference = determine_topology(graph, backend="object")

    def run():
        return determine_topology(graph, backend=backend)

    result = benchmark(run)
    assert result.matches(graph)
    # parity gate: the measured path moved exactly the reference traffic
    assert result.ticks == reference.ticks
    assert result.metrics.total_delivered == reference.metrics.total_delivered
    assert _transcript_bytes(result) == _transcript_bytes(reference)
    hops = result.metrics.total_delivered
    rate = hops / benchmark.stats["mean"]
    benchmark.extra_info["character_hops"] = hops
    benchmark.extra_info["hops_per_second"] = int(rate)
    _SIDES[metric] = (hops, rate, _transcript_bytes(result))
    bench_metric("vec", metric, rate, unit="hops/s", meta={"character_hops": hops})
    report(
        "vec",
        f"VEC [{backend}] full protocol on de_bruijn(2,4): {hops} "
        f"character-hops, {rate:,.0f} hops/s wall-clock",
    )


def test_vec_table_walk_throughput(benchmark):
    """Production flat engine: the transition tables serve the hot loop."""
    _measure_side(benchmark, backend="flat", metric="table_walk_hops_per_second")


def test_vec_closure_dispatch_throughput(benchmark):
    """Control: same engine, every hop through the closure dispatch.

    Runs after the table-walk side (file order), so it also reports the
    per-hop split — the headline number of the lowering — and asserts
    both paths moved identical traffic.
    """
    _measure_side(
        benchmark, backend="flat-nowalk", metric="closure_hops_per_second"
    )
    walk = _SIDES.get("table_walk_hops_per_second")
    closure = _SIDES["closure_hops_per_second"]
    if walk is None:  # partial -k run; nothing to compare against
        return
    assert walk[0] == closure[0], "hop-count divergence between stepper paths"
    assert walk[2] == closure[2], "transcript divergence between stepper paths"
    ratio = walk[1] / closure[1]
    bench_metric("vec", "table_walk_speedup", ratio, unit="x")
    report(
        "vec",
        f"VEC split: table walk {walk[1]:,.0f} hops/s vs closure dispatch "
        f"{closure[1]:,.0f} hops/s = {ratio:.2f}x per-hop speedup",
    )


# ----------------------------------------------------------------------
# lane sweep: the same tables under S lock-step batch lanes
# ----------------------------------------------------------------------
needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="numpy not installed (the [batch] extra)"
)


def _lane_runs(eng: BatchEngine) -> list[LaneRun]:
    return [
        LaneRun(
            max_ticks=20000,
            until=(lambda p=eng.lane_engines[i].processors[eng.root]: p.terminal),
            drain=True,
        )
        for i in range(eng.lanes)
    ]


def _measure_lanes(benchmark, lanes: int) -> None:
    graph = generators.de_bruijn(2, 4)
    solo = determine_topology(graph, backend="flat")
    eng = BatchEngine(graph, [GTDProcessor() for _ in graph.nodes()], lanes=lanes)

    def run():
        eng.reset()
        return eng.run_lanes(_lane_runs(eng))

    outs = benchmark.pedantic(run, rounds=2, iterations=1)
    # per-lane parity with the solo flat run before any number is recorded
    for out in outs:
        assert out.error is None
        assert out.ticks == solo.ticks
    hops = sum(e.metrics.total_delivered for e in eng.lane_engines)
    assert hops == lanes * solo.metrics.total_delivered
    rate = hops / benchmark.stats.stats.mean
    benchmark.extra_info["lanes"] = lanes
    benchmark.extra_info["hops_per_second"] = int(rate)
    bench_metric(
        "vec",
        f"lanes_{lanes}_hops_per_second",
        rate,
        unit="hops/s",
        meta={f"lanes_{lanes}_character_hops": hops},
    )
    report(
        "vec",
        f"VEC [batch] {lanes} lane(s) of de_bruijn(2,4): {hops} aggregate "
        f"character-hops per burst, {rate:,.0f} hops/s wall-clock",
    )


@needs_numpy
@pytest.mark.parametrize("lanes", LANE_SWEEP)
def test_vec_lane_sweep_throughput(benchmark, lanes):
    _measure_lanes(benchmark, lanes)
