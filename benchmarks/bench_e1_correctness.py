"""E1 — Theorem 4.1: exact topology recovery, every family, every seed.

Paper claim: "The computer at the root of a network performing the Global
Topology Determination Algorithm accurately maps the given directed
network."  Expected shape: a 100% recovery column.
"""

from __future__ import annotations

from repro import determine_topology
from repro.topology import generators
from repro.util.tables import format_table

from _report import report


def run_sweep() -> tuple[list[tuple], int, int]:
    rows = []
    total = 0
    exact = 0
    cases: list[tuple[str, object]] = list(generators.all_families().items())
    for seed in range(3):
        cases.append(
            (
                f"random(seed={seed})",
                generators.random_strongly_connected(
                    12, extra_edges=6 + seed, seed=seed
                ),
            )
        )
    for name, graph in cases:
        result = determine_topology(graph)
        ok = result.matches(graph)
        total += 1
        exact += ok
        rows.append(
            (
                name,
                graph.num_nodes,
                graph.num_wires,
                result.diameter,
                result.ticks,
                "yes" if ok else "NO",
            )
        )
    return rows, exact, total


def test_e1_exact_recovery(benchmark):
    rows, exact, total = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    benchmark.extra_info["exact"] = exact
    benchmark.extra_info["total"] = total
    report(
        "e1_correctness",
        format_table(
            ["family", "N", "E", "D", "ticks", "exact map"],
            rows,
            title=f"E1 (Theorem 4.1): exact recovery on {total} networks "
            f"-> {exact}/{total}",
        ),
    )
    assert exact == total, "Theorem 4.1 violated: some map was not exact"
