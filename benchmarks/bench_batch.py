"""Batch-backend throughput: lock-step lanes against the scalar flat path.

The campaign bench (``bench_campaign.py``) gates the zero-rebuild cache
layer; this module gates what the **batch** backend adds on top of it:
chunk fusion of the seed axis into lock-step lane runs, cohort dedup of
equal effective wire programs, and the lane scheduler itself.  Both
backends run the same mixed matrix through the real executor at steady
state (``jobs=1``, untimed warmup) and must produce cell-for-cell
identical results up to the backend tag — the in-bench parity assertion
below is the same contract the differential test suite enforces.

The speedup is matrix-shaped by construction: lanes only merge where
effective wire programs coincide (post-terminal ops reduced to the
healthy run, seed-invariant frontier cuts), so a single-seed matrix
measures mostly scheduler overhead while a multi-seed matrix realizes
the fusion wins.  The full case therefore carries the floor; the small
case is a parity tripwire.  Requires numpy (the ``[batch]`` extra): the
whole module skips without it, and bench-compare then skips the missing
metrics rather than gating on stale ones.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.campaigns.executor import clear_scenario_caches, run_campaign
from repro.campaigns.spec import CampaignSpec
from repro.sim.batchcore import have_numpy

from _report import bench_metric, report

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="numpy not installed (the [batch] extra)"
)

#: The campaign bench's mixed matrix, verbatim — statics, legacy cut/add
#: dynamics, and timeline programs — so batch numbers are directly
#: comparable with ``BENCH_camp``'s scenarios-per-second.
FAULTS = (
    "none",
    "shutdown:0.15",
    "cut:0.4",
    "cut:1.5",
    "add:0.5",
    "storm:p=0.3@0.25",
    "storm:p=0.25@0.2",
    "churn:rate=0.08,period=0.25,heal=0.9,until=0.7",
    "churn:rate=0.1,period=0.2,until=0.6",
    "frontier:k=2@0.3",
    "frontier:k=3@0.25",
    "cut@0.3+heal@0.5",
)

#: case -> (sizes, seeds)
CASES = {
    "small": ((10,), (0,)),
    "full": ((10, 13), (0, 1)),
}

#: Minimum batch/flat speedup on the full (multi-seed) matrix.  Measured
#: ~1.15-1.2x on the reference machine — the honest win is bounded by the
#: mergeable share of the matrix (the per-event protocol work of
#: non-mergeable lanes is identical to flat by design); the floor leaves
#: headroom for slower hosts while still catching a scheduler regression.
SPEEDUP_FLOOR = 1.02

#: case -> backend -> (results, mean_seconds)
_RUNS: dict[str, dict[str, tuple[list, float]]] = {}


def _scenarios(case: str, backend: str):
    sizes, seeds = CASES[case]
    return CampaignSpec(
        families=("spare-ring",),
        sizes=sizes,
        faults=FAULTS,
        seeds=seeds,
        backends=(backend,),
    ).scenarios()


def _strip_backend(results) -> list[dict]:
    """Result rows without the scenario tag, for cross-backend equality."""
    rows = []
    for result in results:
        row = asdict(result)
        row.pop("scenario")
        rows.append(row)
    return rows


def _finish(case: str, backend: str, results, mean: float, benchmark) -> None:
    count = len(results)
    rate = count / mean
    _RUNS.setdefault(case, {})[backend] = (results, mean)
    benchmark.extra_info["scenarios"] = count
    benchmark.extra_info["scenarios_per_second"] = round(rate, 2)
    metric = (
        f"{case}_scenarios_per_second"
        if backend == "batch"
        else f"{case}_flat_scenarios_per_second"
    )
    bench_metric("batch", metric, rate, unit="sc/s", meta={f"{case}_cells": count})
    report(
        "bench_batch",
        f"BATCH [{backend}] {case}: {count} cells in {mean:.2f} s "
        f"({rate:.1f} scenarios/s)",
    )
    seen = _RUNS[case]
    if len(seen) == 2:
        flat_results, flat_mean = seen["flat"]
        batch_results, batch_mean = seen["batch"]
        # lane-vs-flat parity over the whole pipeline: fusion, cohorts,
        # lock-step lanes, fan-out — invisible in every result field
        assert _strip_backend(batch_results) == _strip_backend(flat_results), (
            f"batch and flat executors disagree on {case}: "
            f"{[i for i, (a, b) in enumerate(zip(_strip_backend(batch_results), _strip_backend(flat_results))) if a != b]}"
        )
        speedup = flat_mean / batch_mean
        bench_metric("batch", f"{case}_batch_speedup", speedup, unit="x")
        report(
            "bench_batch",
            f"BATCH {case}: lane-fused executor is {speedup:.2f}x the scalar "
            f"flat path on the same matrix",
        )
        if case == "full":
            assert speedup >= SPEEDUP_FLOOR, (
                f"batch backend only {speedup:.2f}x flat on {case} "
                f"(floor {SPEEDUP_FLOOR}x): lane fusion, cohort dedup or "
                f"the burst scheduler have regressed"
            )


def _run_backend(benchmark, case: str, backend: str, rounds: int) -> None:
    scenarios = _scenarios(case, backend)
    clear_scenario_caches()
    run_campaign(scenarios, jobs=1)  # untimed warmup: steady-state caches

    def run():
        return run_campaign(scenarios, jobs=1).results

    results = benchmark.pedantic(run, rounds=rounds, iterations=1)
    _finish(case, backend, results, benchmark.stats.stats.mean, benchmark)


def test_batch_small_flat_throughput(benchmark):
    _run_backend(benchmark, "small", "flat", rounds=3)


def test_batch_small_batch_throughput(benchmark):
    _run_backend(benchmark, "small", "batch", rounds=3)


def test_batch_full_flat_throughput(benchmark):
    _run_backend(benchmark, "full", "flat", rounds=2)


def test_batch_full_batch_throughput(benchmark):
    _run_backend(benchmark, "full", "batch", rounds=2)
