"""E3 — Lemma 4.4: the full protocol runs in O(N * D).

With bounded degree, E = Theta(N), and the protocol runs ~2E RCAs and E
BCAs of O(D) each, so ticks should be proportional to E * D.  We sweep
three families that move (N, D) differently:

* bidirectional rings: D = N/2 (quadratic total),
* de Bruijn graphs:    D = log2 N (the protocol's sweet spot),
* directed tori:       D ~ 2*sqrt(N).

Expected shape: ticks / (E * D) lands in a narrow constant band across all
of them, and a line fit of ticks vs E * D explains the data.
"""

from __future__ import annotations

from repro import determine_topology
from repro.analysis.complexity import check_linear_scaling
from repro.topology import generators
from repro.util.tables import format_table

from _report import report


def workloads():
    yield "bidirectional_ring", [
        (f"bidirectional_ring({n})", generators.bidirectional_ring(n))
        for n in (4, 8, 12, 16, 24)
    ]
    yield "de_bruijn", [
        (f"de_bruijn(2,{length})", generators.de_bruijn(2, length))
        for length in (2, 3, 4, 5)
    ]
    yield "directed_torus", [
        (f"torus({rows}x{cols})", generators.directed_torus(rows, cols))
        for rows, cols in ((2, 3), (3, 4), (4, 5), (5, 6))
    ]


def run_sweep():
    table = []
    per_family: dict[str, tuple[list, list]] = {}
    all_ratios = []
    for family, cases in workloads():
        xs, ys = [], []
        for name, graph in cases:
            result = determine_topology(graph)
            d = max(1, result.diameter)
            work = graph.num_wires * d
            ratio = result.ticks / work
            table.append(
                (name, graph.num_nodes, graph.num_wires, d, result.ticks,
                 round(ratio, 2))
            )
            xs.append(work)
            ys.append(result.ticks)
            all_ratios.append(ratio)
        per_family[family] = (xs, ys)
    return table, per_family, all_ratios


def test_e3_gtd_scales_with_nd(benchmark):
    table, per_family, ratios = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Within each family ticks must be a clean line in E*D; the constant may
    # differ between families (reverse wires make backtracking cheap on
    # rings, expensive on de Bruijn graphs) but stays in one global band.
    verdicts = {
        family: check_linear_scaling(xs, ys)
        for family, (xs, ys) in per_family.items()
    }
    band = max(ratios) / min(ratios)
    slopes = {f: round(v.fit.slope, 1) for f, v in verdicts.items()}
    benchmark.extra_info["ticks_per_edge_diameter"] = slopes
    benchmark.extra_info["global_constant_band"] = round(band, 2)
    report(
        "e3_gtd_scaling",
        format_table(
            ["workload", "N", "E", "D", "ticks", "ticks/(E*D)"],
            table,
            title="E3 (Lemma 4.4): protocol time is Theta(E*D) — per-family "
            f"slopes {slopes} ticks per edge-diameter, per-family R^2 "
            f"{ {f: round(v.fit.r_squared, 4) for f, v in verdicts.items()} }, "
            f"global constant band {band:.2f}x",
        ),
    )
    for family, verdict in verdicts.items():
        assert verdict.is_linear, f"Lemma 4.4 violated on {family}"
        assert verdict.fit.r_squared > 0.99, family
    assert band < 4.0, "O(N*D) constant drifted beyond a constant band"
