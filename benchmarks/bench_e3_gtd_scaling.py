"""E3 — Lemma 4.4: the full protocol runs in O(N * D).

With bounded degree, E = Theta(N), and the protocol runs ~2E RCAs and E
BCAs of O(D) each, so ticks should be proportional to E * D.  We sweep
three families that move (N, D) differently:

* bidirectional rings: D = N/2 (quadratic total),
* de Bruijn graphs:    D = log2 N (the protocol's sweet spot),
* directed tori:       D ~ 2*sqrt(N).

The sweep itself is one campaign over the :mod:`repro.campaigns` scenario
machinery — the same matrix runner the CLI exposes.

Expected shape: ticks / (E * D) lands in a narrow constant band across all
of them, and a line fit of ticks vs E * D explains the data.
"""

from __future__ import annotations

from repro.analysis.complexity import check_linear_scaling
from repro.campaigns import Scenario, run_campaign
from repro.util.tables import format_table

from _report import bench_metric, report

#: family -> node counts; sizes resolve through the campaign registry to
#: exactly the networks the seed benchmark used (de Bruijn word lengths
#: 2..5, tori 2x3 .. 5x6).
WORKLOADS = {
    "bidirectional-ring": (4, 8, 12, 16, 24),
    "de-bruijn": (4, 8, 16, 32),
    "directed-torus": (6, 12, 20, 30),
}


def run_sweep():
    campaign = run_campaign(
        [
            Scenario(family=family, size=size)
            for family, sizes in WORKLOADS.items()
            for size in sizes
        ]
    )
    assert all(r.outcome == "exact" for r in campaign.results)
    table = [
        (
            f"{r.scenario.family}({r.num_nodes})",
            r.num_nodes,
            r.num_wires,
            max(1, r.diameter),
            r.ticks,
            round(r.ticks / r.work, 2),
        )
        for r in campaign.results
    ]
    per_family = campaign.series()
    ratios = [r.ticks / r.work for r in campaign.results]
    return table, per_family, ratios


def test_e3_gtd_scales_with_nd(benchmark):
    table, per_family, ratios = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Within each family ticks must be a clean line in E*D; the constant may
    # differ between families (reverse wires make backtracking cheap on
    # rings, expensive on de Bruijn graphs) but stays in one global band.
    verdicts = {
        family: check_linear_scaling(xs, ys)
        for family, (xs, ys) in per_family.items()
    }
    band = max(ratios) / min(ratios)
    slopes = {f: round(v.fit.slope, 1) for f, v in verdicts.items()}
    benchmark.extra_info["ticks_per_edge_diameter"] = slopes
    benchmark.extra_info["global_constant_band"] = round(band, 2)
    # Simulated-tick metrics are deterministic: any drift is a real change
    # in protocol work, so they gate with "lower is better".
    for family, slope in slopes.items():
        bench_metric(
            "e3",
            f"slope_{family}",
            slope,
            direction="lower",
            unit="ticks/(E*D)",
        )
    bench_metric("e3", "constant_band", round(band, 2), direction="lower")
    bench_metric(
        "e3",
        "total_ticks",
        sum(row[4] for row in table),
        direction="lower",
        unit="ticks",
    )
    report(
        "e3_gtd_scaling",
        format_table(
            ["workload", "N", "E", "D", "ticks", "ticks/(E*D)"],
            table,
            title="E3 (Lemma 4.4): protocol time is Theta(E*D) — per-family "
            f"slopes {slopes} ticks per edge-diameter, per-family R^2 "
            f"{ {f: round(v.fit.r_squared, 4) for f, v in verdicts.items()} }, "
            f"global constant band {band:.2f}x",
        ),
    )
    for family, verdict in verdicts.items():
        assert verdict.is_linear, f"Lemma 4.4 violated on {family}"
        assert verdict.fit.r_squared > 0.99, family
    assert band < 4.0, "O(N*D) constant drifted beyond a constant band"
