"""E13 — simulator throughput (wall-clock, the pytest-benchmark native mode).

E1–E12 study *simulated ticks* (the paper's complexity measure, independent
of the host machine).  This module benchmarks the simulator itself —
character-hops per wall-clock second — so regressions in the engine's hot
path (delivery, outbox draining, handler dispatch) are caught.  These are
the only benchmarks here where wall time is the object of study, so they
run with real repetitions instead of ``pedantic`` single shots.

Both engine backends are measured: the ``e13`` metrics gate the reference
object backend, the ``e13_flat`` metrics gate the compiled flat-core
backend (``benchmarks/baselines/BENCH_e13_flat.json``).  The flat cases
additionally assert hop-count equality with the object run — a wall-clock
number for a backend that diverged from the reference would be
meaningless.
"""

from __future__ import annotations

from repro import determine_topology
from repro.protocol.rca import run_single_rca
from repro.sim.run import EnginePool
from repro.topology import generators

from _report import bench_metric, report

#: hop counts per scenario, keyed by backend — filled as tests run, used
#: to cross-check that both backends moved exactly the same traffic
_HOPS: dict[str, dict[str, int]] = {}


def _note_hops(case: str, backend: str, hops: int) -> None:
    seen = _HOPS.setdefault(case, {})
    seen[backend] = hops
    if len(seen) == 2:
        assert seen["object"] == seen["flat"], (
            f"backend hop-count divergence on {case}: {seen}"
        )


def _run_full_protocol(benchmark, graph, *, backend, experiment, metric, case):
    def run():
        return determine_topology(graph, backend=backend)

    result = benchmark(run)
    assert result.matches(graph)
    hops = result.metrics.total_delivered
    _note_hops(case, backend, hops)
    rate = hops / benchmark.stats["mean"]
    benchmark.extra_info["character_hops"] = hops
    benchmark.extra_info["hops_per_second"] = int(rate)
    bench_metric(
        experiment,
        metric,
        rate,
        unit="hops/s",
        meta={f"{case}_character_hops": hops},
    )
    report(
        "e13_simperf",
        f"E13 [{backend}] full protocol, {case}: {hops} character-hops per "
        f"run, {rate:,.0f} hops/s wall-clock "
        f"(mean {benchmark.stats['mean'] * 1e3:.1f} ms/run)",
    )


def test_e13_full_protocol_throughput(benchmark):
    graph = generators.de_bruijn(2, 4)  # N=16, E=32, D=4
    _run_full_protocol(
        benchmark, graph,
        backend="object", experiment="e13",
        metric="full_protocol_hops_per_second", case="small",
    )


def test_e13_flat_full_protocol_throughput(benchmark):
    graph = generators.de_bruijn(2, 4)
    _run_full_protocol(
        benchmark, graph,
        backend="flat", experiment="e13_flat",
        metric="full_protocol_hops_per_second", case="small",
    )


def _run_large(benchmark, *, backend, experiment):
    """The scheduler-core acceptance case: a large de Bruijn network.

    ~760k character-hops per run; this is where per-tick dispatch overhead
    dominates and the data-plane refactors must show up.
    """
    graph = generators.de_bruijn(2, 6)  # N=64, E=128, D=6

    def run():
        return determine_topology(graph, backend=backend)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.matches(graph)
    hops = result.metrics.total_delivered
    _note_hops("large", backend, hops)
    rate = hops / benchmark.stats.stats.mean
    benchmark.extra_info["character_hops"] = hops
    benchmark.extra_info["hops_per_second"] = int(rate)
    bench_metric(
        experiment,
        "large_debruijn_hops_per_second",
        rate,
        unit="hops/s",
        meta={"large_character_hops": hops},
    )
    report(
        "e13_simperf",
        f"E13 [{backend}] full protocol on de_bruijn(2,6): {hops} "
        f"character-hops per run, {rate:,.0f} hops/s wall-clock "
        f"(mean {benchmark.stats.stats.mean * 1e3:.1f} ms/run)",
    )


def test_e13_large_debruijn_throughput(benchmark):
    _run_large(benchmark, backend="object", experiment="e13")


def test_e13_flat_large_debruijn_throughput(benchmark):
    _run_large(benchmark, backend="flat", experiment="e13_flat")


def _run_single_rca_case(benchmark, *, backend, experiment):
    graph = generators.bidirectional_line(24)
    # Steady-state measurement: an EnginePool reuses one engine (and its
    # compiled tables) across repetitions, so the row measures the run
    # loop, not per-iteration engine construction — the same way the
    # campaign executor drives this scenario shape in production.
    pool = EnginePool()

    def run():
        return run_single_rca(graph, initiator=23, backend=backend, pool=pool)

    result = benchmark(run)
    hops = result.engine.metrics.total_delivered
    _note_hops("single_rca", backend, hops)
    rate = hops / benchmark.stats["mean"]
    benchmark.extra_info["hops_per_second"] = int(rate)
    bench_metric(experiment, "single_rca_hops_per_second", rate, unit="hops/s")
    report(
        "e13_simperf",
        f"E13 [{backend}] one RCA across a 24-line: {hops} character-hops, "
        f"{rate:,.0f} hops/s wall-clock",
    )


def test_e13_single_rca_throughput(benchmark):
    _run_single_rca_case(benchmark, backend="object", experiment="e13")


def test_e13_flat_single_rca_throughput(benchmark):
    _run_single_rca_case(benchmark, backend="flat", experiment="e13_flat")
