"""E13 — simulator throughput (wall-clock, the pytest-benchmark native mode).

E1–E12 study *simulated ticks* (the paper's complexity measure, independent
of the host machine).  This module benchmarks the simulator itself —
character-hops per wall-clock second — so regressions in the engine's hot
path (delivery, outbox draining, handler dispatch) are caught.  These are
the only benchmarks here where wall time is the object of study, so they
run with real repetitions instead of ``pedantic`` single shots.
"""

from __future__ import annotations

from repro import determine_topology
from repro.protocol.rca import run_single_rca
from repro.topology import generators

from _report import bench_metric, report


def test_e13_full_protocol_throughput(benchmark):
    graph = generators.de_bruijn(2, 4)  # N=16, E=32, D=4

    def run():
        return determine_topology(graph)

    result = benchmark(run)
    assert result.matches(graph)
    hops = result.metrics.total_delivered
    rate = hops / benchmark.stats["mean"]
    benchmark.extra_info["character_hops"] = hops
    benchmark.extra_info["hops_per_second"] = int(rate)
    bench_metric(
        "e13",
        "full_protocol_hops_per_second",
        rate,
        unit="hops/s",
        meta={"small_character_hops": hops},
    )
    report(
        "e13_simperf",
        f"E13a: full protocol on de_bruijn(2,4): {hops} character-hops per "
        f"run, {rate:,.0f} hops/s wall-clock "
        f"(mean {benchmark.stats['mean'] * 1e3:.1f} ms/run)",
    )


def test_e13_large_debruijn_throughput(benchmark):
    """The scheduler-core acceptance case: a large de Bruijn network.

    ~760k character-hops per run; this is where per-tick dispatch overhead
    dominates and the event-wheel / dispatch-table refactor must show up.
    """
    graph = generators.de_bruijn(2, 6)  # N=64, E=128, D=6

    def run():
        return determine_topology(graph)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.matches(graph)
    hops = result.metrics.total_delivered
    rate = hops / benchmark.stats.stats.mean
    benchmark.extra_info["character_hops"] = hops
    benchmark.extra_info["hops_per_second"] = int(rate)
    bench_metric(
        "e13",
        "large_debruijn_hops_per_second",
        rate,
        unit="hops/s",
        meta={"large_character_hops": hops},
    )
    report(
        "e13_simperf",
        f"E13c: full protocol on de_bruijn(2,6): {hops} character-hops per "
        f"run, {rate:,.0f} hops/s wall-clock "
        f"(mean {benchmark.stats.stats.mean * 1e3:.1f} ms/run)",
    )


def test_e13_single_rca_throughput(benchmark):
    graph = generators.bidirectional_line(24)

    def run():
        return run_single_rca(graph, initiator=23)

    result = benchmark(run)
    hops = result.engine.metrics.total_delivered
    rate = hops / benchmark.stats["mean"]
    benchmark.extra_info["hops_per_second"] = int(rate)
    bench_metric("e13", "single_rca_hops_per_second", rate, unit="hops/s")
    report(
        "e13_simperf",
        f"E13b: one RCA across a 24-line: {hops} character-hops, "
        f"{rate:,.0f} hops/s wall-clock",
    )
