"""E2 — Lemma 4.3: a single RCA runs in O(D).

Sweep the initiator's distance to the root on a bidirectional line (loop
length = 2 * distance) and on a directed ring (loop length = N); the
completion tick must fit a line in the loop length with R^2 ~ 1.
"""

from __future__ import annotations

from repro.analysis.complexity import check_linear_scaling
from repro.protocol.rca import run_single_rca
from repro.topology import generators
from repro.util.tables import format_table

from _report import report

LINE_SIZES = (4, 8, 12, 16, 24, 32, 48)


def run_sweep():
    rows = []
    xs, ys = [], []
    for n in LINE_SIZES:
        graph = generators.bidirectional_line(n)
        result = run_single_rca(graph, initiator=n - 1)
        loop_len = 2 * (n - 1)
        rows.append(("bidirectional_line", n, loop_len, result.completed_at))
        xs.append(loop_len)
        ys.append(result.completed_at)
    for n in (4, 8, 16, 32):
        graph = generators.directed_ring(n)
        result = run_single_rca(graph, initiator=1)
        # A -> root is n-1 hops; root -> A is 1 hop: loop length n.
        rows.append(("directed_ring", n, n, result.completed_at))
    return rows, xs, ys


def test_e2_rca_linear_in_d(benchmark):
    rows, xs, ys = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    verdict = check_linear_scaling(xs, ys)
    benchmark.extra_info["slope_ticks_per_hop"] = round(verdict.fit.slope, 2)
    benchmark.extra_info["r_squared"] = round(verdict.fit.r_squared, 5)
    report(
        "e2_rca",
        format_table(
            ["network", "N", "loop length", "RCA ticks"],
            rows,
            title="E2 (Lemma 4.3): RCA completion vs marked-loop length — "
            f"fit: {verdict.fit.slope:.2f} ticks/hop + {verdict.fit.intercept:.1f}, "
            f"R^2={verdict.fit.r_squared:.4f}",
        ),
    )
    assert verdict.is_linear, "Lemma 4.3 violated: RCA not linear in D"
    assert verdict.fit.r_squared > 0.99
