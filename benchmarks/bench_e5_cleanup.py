"""E5 — Lemma 4.2: the network is left undisturbed, checked exhaustively.

Runs the full protocol with ``verify_cleanup=True``: after *every* completed
RCA and BCA the entire network (registers, resting characters, wires) is
swept for residue, and again after termination.  The expected shape is a
zeros column — any residue raises ``CleanupViolation`` and fails the bench.
"""

from __future__ import annotations

from repro import determine_topology
from repro.topology import generators
from repro.util.tables import format_table

from _report import report


def workloads():
    yield "directed_ring(9)", generators.directed_ring(9)
    yield "bidirectional_ring(8)", generators.bidirectional_ring(8)
    yield "de_bruijn(2,3)", generators.de_bruijn(2, 3)
    yield "kautz(2,2)", generators.kautz(2, 2)
    yield "torus(3x4)", generators.directed_torus(3, 4)
    yield "tree_with_loop(2)", generators.tree_with_loop(2, seed=5)
    yield "random(11, seed=3)", generators.random_strongly_connected(
        11, extra_edges=8, seed=3
    )


def run_sweep():
    rows = []
    for name, graph in workloads():
        result = determine_topology(graph, verify_cleanup=True)
        sweeps = result.rca_runs + result.bca_runs + 1  # + termination sweep
        rows.append(
            (name, result.rca_runs, result.bca_runs, sweeps, 0, "clean")
        )
        assert result.matches(graph)
    return rows


def test_e5_network_left_undisturbed(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    total_sweeps = sum(r[3] for r in rows)
    benchmark.extra_info["total_residue_sweeps"] = total_sweeps
    benchmark.extra_info["violations"] = 0
    report(
        "e5_cleanup",
        format_table(
            ["workload", "RCAs", "BCAs", "residue sweeps", "violations", "verdict"],
            rows,
            title=f"E5 (Lemma 4.2): {total_sweeps} whole-network residue sweeps, "
            "0 violations",
        ),
    )
