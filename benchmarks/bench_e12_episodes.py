"""E12 — Lemma 4.3 per episode, mined from a real protocol run.

E2 measured isolated, scripted RCAs; here we take one *full* GTD run and
extract every RCA episode from the root's own transcript (root-visible
information only).  Expected shape: episode duration is a clean line in the
episode's marked-loop length, with the same per-hop constant whichever
processor initiated it and whether the token was FORWARD or BACK.
"""

from __future__ import annotations

from repro import determine_topology
from repro.analysis.run_stats import episode_scaling, rca_episodes
from repro.topology import generators
from repro.util.tables import format_table

from _report import report


def run_analysis():
    graph = generators.directed_torus(4, 5)  # N=20, mixed loop lengths
    result = determine_topology(graph)
    assert result.matches(graph)
    episodes = rca_episodes(result.transcript)
    assert len(episodes) == result.rca_runs
    fit = episode_scaling(episodes)

    by_length: dict[int, list[int]] = {}
    for ep in episodes:
        by_length.setdefault(ep.loop_length, []).append(ep.duration)
    rows = [
        (
            length,
            len(durations),
            min(durations),
            max(durations),
            round(sum(durations) / len(durations), 1),
        )
        for length, durations in sorted(by_length.items())
    ]
    fwd = sum(1 for e in episodes if e.token == "FWD")
    back = sum(1 for e in episodes if e.token == "BACK")
    return rows, fit, len(episodes), fwd, back


def test_e12_episode_scaling(benchmark):
    rows, fit, count, fwd, back = benchmark.pedantic(
        run_analysis, rounds=1, iterations=1
    )
    benchmark.extra_info["episodes"] = count
    benchmark.extra_info["ticks_per_hop"] = round(fit.slope, 2)
    report(
        "e12_episodes",
        format_table(
            ["loop length", "episodes", "min ticks", "max ticks", "mean ticks"],
            rows,
            title=f"E12 (Lemma 4.3, in vivo): {count} RCA episodes "
            f"({fwd} FORWARD, {back} BACK) from one torus(4x5) run — "
            f"duration = {fit.slope:.2f}*loop + {fit.intercept:.2f}, "
            f"R^2={fit.r_squared:.4f}",
        ),
    )
    assert fit.r_squared > 0.999
    assert 5 < fit.slope < 15  # ~9 ticks/hop as seen from the root
    # FORWARD per non-root edge event, BACK per probe return: both present
    assert fwd > 0 and back > 0