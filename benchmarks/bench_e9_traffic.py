"""E9 — character-traffic profile of the protocol.

Which characters dominate the wire?  Expected shape: the growing-snake
floods (IG + OG + BG) carry the overwhelming majority of character-hops —
they flood the whole network once per RCA/BCA — while the dying snakes,
loop tokens and the DFS token are O(D) each.  Also checks the per-RCA
traffic is O(E * D) characters.
"""

from __future__ import annotations

from repro.campaigns import Scenario, run_scenario
from repro.protocol.rca import run_single_rca
from repro.topology import generators
from repro.util.tables import format_table

from _report import bench_metric, report


def run_profile():
    # one campaign scenario: de_bruijn(2,4), N=16, D=4
    result = run_scenario(Scenario(family="de-bruijn", size=16))
    assert result.outcome == "exact"
    fam = dict(result.by_family)
    total = result.hops
    rows = [
        (family, count, round(100.0 * count / total, 1))
        for family, count in sorted(fam.items(), key=lambda kv: -kv[1])
    ]
    growing_share = (fam.get("IG", 0) + fam.get("OG", 0) + fam.get("BG", 0)) / total
    return rows, total, growing_share


def run_per_rca_traffic():
    rows = []
    for n in (8, 16, 32):
        graph = generators.bidirectional_line(n)
        result = run_single_rca(graph, initiator=n - 1)
        chars = result.engine.metrics.total_delivered
        # one RCA floods every edge with a snake of O(D) characters
        rows.append((n, graph.num_wires, chars, round(chars / (graph.num_wires * n), 2)))
    return rows


def test_e9_traffic_profile(benchmark):
    (rows, total, growing_share) = benchmark.pedantic(
        run_profile, rounds=1, iterations=1
    )
    per_rca = run_per_rca_traffic()
    benchmark.extra_info["growing_share"] = round(growing_share, 3)
    bench_metric("e9", "growing_share", round(growing_share, 3))
    bench_metric(
        "e9",
        "total_character_hops",
        total,
        direction="lower",
        unit="hops",
    )
    report(
        "e9_traffic",
        format_table(
            ["family/kind", "character-hops", "share %"],
            rows,
            title=f"E9a: traffic profile of a full run on de_bruijn(2,4) "
            f"({total} character-hops)",
        )
        + "\n\n"
        + format_table(
            ["N (line)", "E", "chars per RCA", "chars/(E*D)"],
            per_rca,
            title="E9b: a single RCA moves O(E*D) characters",
        ),
    )
    assert growing_share > 0.5, "growing snakes must dominate traffic"
    ratios = [r[3] for r in per_rca]
    assert max(ratios) / min(ratios) < 3.0
