"""Dynamics throughput — the perturbation-timeline fast path, both backends.

E13 gates the *static* hot paths.  This module gates the **dynamic** ones:
a churn-heavy perturbation timeline (periodic cut + heal waves) runs the
full GTD protocol while the wiring changes under it, on the object backend
(emission overlay) and on the flat backend (incremental CSR patching, the
packed wheel kept hot).  Before PR 4 every flat dynamic run fell off the
compiled fast path onto a generic per-character overlay; the whole point of
the in-place patching is that it no longer does — so this benchmark asserts
hop-count parity *and* a flat/object speedup floor on top of recording the
absolute rates for the regression gate.

The small case is the CI tripwire; the large case is the local acceptance
benchmark (CI runs with ``-k "not large"`` and bench-compare skips the
metrics the smoke run does not produce).
"""

from __future__ import annotations

from repro.campaigns.spec import build_family
from repro.dynamics import compile_timeline, run_dynamic_gtd

from _report import bench_metric, report

#: The E-style dynamic workload: periodic churn with strong healing, which
#: keeps the network chattering (floods, RCAs, re-probes) across every
#: phase.  Runs are deterministic per (size, seed): the small case ends
#: stale, the large case eventually deadlocks — but only after moving the
#: bulk of its character-hops (the hops floor below guards against a
#: workload that degenerates into the empty idle crawl, which would
#: benchmark the clock loop instead of the data plane).
TIMELINE = "churn:rate=0.08,period=0.2,heal=0.9,until=0.8"

#: case -> (size, expected outcome, minimum delivered hops, wire-op floor).
#: The outcome and floors are tripwires: a semantic change that shifts
#: them should be a deliberate baseline re-record, never an accident.
CASES = {
    "small": (16, "stale", 20_000, 4),
    "large": (32, "deadlock", 60_000, 8),
}

#: Minimum flat/object speedup on the large dynamic workload.  Measured
#: ~2x on the reference machine; the floor is the acceptance criterion
#: with headroom for slower hosts.
SPEEDUP_FLOOR = 1.5

#: case -> (backend -> (hops, mean_seconds)); filled as tests run, used to
#: cross-check hop parity and compute the speedup once both backends ran.
_RUNS: dict[str, dict[str, tuple[int, float]]] = {}


def _case(case: str, seed: int = 0):
    size, expected_outcome, min_hops, min_ops = CASES[case]
    graph = build_family("spare-ring", size, seed)
    program = compile_timeline(TIMELINE, graph, seed=seed)
    assert len(program.ops) >= min_ops, (
        f"the {case} workload must actually churn the wiring "
        f"({len(program.ops)} ops < {min_ops})"
    )
    budget = program.horizon * 3 + 1000
    return graph, program, budget, size, expected_outcome, min_hops


def _run_dynamic(benchmark, *, case, backend, rounds):
    graph, program, budget, size, expected_outcome, min_hops = _case(case)

    def run():
        return run_dynamic_gtd(
            graph, program, max_ticks=budget, backend=backend
        )

    result = benchmark.pedantic(run, rounds=rounds, iterations=1)
    assert result.outcome.value == expected_outcome
    assert result.hops >= min_hops, (
        f"{case} moved only {result.hops} hops — the workload degenerated "
        f"into an idle crawl and no longer measures the data plane"
    )
    assert result.applied_ops == len(program.ops)
    hops = result.hops
    mean = benchmark.stats.stats.mean
    rate = hops / mean
    _RUNS.setdefault(case, {})[backend] = (hops, mean)
    benchmark.extra_info["character_hops"] = hops
    benchmark.extra_info["hops_per_second"] = int(rate)
    bench_metric(
        "dyn",
        f"{case}_{backend}_hops_per_second",
        rate,
        unit="hops/s",
        meta={f"{case}_character_hops": hops, f"{case}_outcome": result.outcome.value},
    )
    report(
        "bench_dynamics",
        f"DYN [{backend}] {case} spare-ring({size}) under "
        f"'{TIMELINE}': {hops} character-hops, "
        f"{len(program.ops)} wire ops, {rate:,.0f} hops/s wall-clock "
        f"(mean {mean * 1e3:.1f} ms/run)",
    )
    seen = _RUNS[case]
    if len(seen) == 2:
        assert seen["object"][0] == seen["flat"][0], (
            f"backend hop-count divergence on {case}: {seen}"
        )
        speedup = seen["object"][1] / seen["flat"][1]
        report(
            "bench_dynamics",
            f"DYN {case}: flat is {speedup:.2f}x the object backend "
            f"on the dynamic workload",
        )
        if case == "large":
            # recorded (and hence baseline-gated) for the large case only:
            # the small CI tripwire gates on absolute hops/s, not on a
            # noisy 3-round ratio from a shared runner
            bench_metric(
                "dyn",
                f"{case}_flat_speedup",
                speedup,
                unit="x",
                meta={"floor": SPEEDUP_FLOOR},
            )
            assert speedup >= SPEEDUP_FLOOR, (
                f"flat dynamic backend only {speedup:.2f}x object "
                f"(floor {SPEEDUP_FLOOR}x): the incremental CSR patching "
                f"fast path has regressed"
            )


def test_dyn_small_object_throughput(benchmark):
    _run_dynamic(benchmark, case="small", backend="object", rounds=3)


def test_dyn_small_flat_throughput(benchmark):
    _run_dynamic(benchmark, case="small", backend="flat", rounds=3)


def test_dyn_large_object_throughput(benchmark):
    _run_dynamic(benchmark, case="large", backend="object", rounds=2)


def test_dyn_large_flat_throughput(benchmark):
    _run_dynamic(benchmark, case="large", backend="flat", rounds=2)
