"""Kernel split bench — code-space dispatch vs the object-path fallback.

The flat engine serves most deliveries through the compile-time character
kernel: code-indexed handler lists, int fill rows, packed sink closures.
Cold characters, the root, parked nodes and traced ticks fall back to the
object path (kind-keyed handler tables over :class:`Char` objects).  This
bench measures both sides of that split on the *same engine class* — the
control engine disables the code-space tables so every hop takes the
fallback — and records the per-hop speedup the kernel buys.  In-bench
asserts pin hop-count equality and byte-identical root transcripts across
both paths *and* the object backend, so neither side can drift
semantically while getting faster.
"""

from __future__ import annotations

from repro import determine_topology
from repro.sim.flatcore import FlatEngine
from repro.sim.run import ENGINE_BACKENDS
from repro.topology import generators

from _report import bench_metric, report


class _ObjectPathFlatEngine(FlatEngine):
    """Flat engine with the code-space fast path disabled (bench control).

    Kernel fill and code-indexed dispatch are skipped on every delivery;
    the kind-keyed handler tables over ``Char`` objects serve each hop —
    exactly the fallback cold characters and special nodes use in the
    production engine, here promoted to 100% of traffic.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._chandlers_all = [None] * len(self.processors)
        self._chandlers[:] = self._chandlers_all
        self._pack_tick_locals()


#: bench-local backend name; registered so the production run pipeline
#: (pooling, budgets, reconstruction) drives the control engine unchanged
ENGINE_BACKENDS.setdefault("flat-objectpath", _ObjectPathFlatEngine)


def _transcript_bytes(result) -> bytes:
    return "\n".join(repr(e) for e in result.transcript.events()).encode()


#: metric name -> (hops, rate, transcript bytes), filled as tests run
_SIDES: dict[str, tuple[int, float, bytes]] = {}


def _measure_side(benchmark, *, backend: str, metric: str) -> None:
    graph = generators.de_bruijn(2, 4)
    reference = determine_topology(graph, backend="object")

    def run():
        return determine_topology(graph, backend=backend)

    result = benchmark(run)
    assert result.matches(graph)
    # parity gate: the measured path moved exactly the reference traffic
    assert result.ticks == reference.ticks
    assert result.metrics.total_delivered == reference.metrics.total_delivered
    assert _transcript_bytes(result) == _transcript_bytes(reference)
    hops = result.metrics.total_delivered
    rate = hops / benchmark.stats["mean"]
    benchmark.extra_info["character_hops"] = hops
    benchmark.extra_info["hops_per_second"] = int(rate)
    _SIDES[metric] = (hops, rate, _transcript_bytes(result))
    bench_metric(
        "kernel", metric, rate, unit="hops/s", meta={"character_hops": hops}
    )
    report(
        "kernel",
        f"KERNEL [{backend}] full protocol on de_bruijn(2,4): {hops} "
        f"character-hops, {rate:,.0f} hops/s wall-clock",
    )


def test_kernel_code_space_throughput(benchmark):
    """Production flat engine: kernel tables serve the hot loop."""
    _measure_side(
        benchmark, backend="flat", metric="code_space_hops_per_second"
    )


def test_kernel_object_path_throughput(benchmark):
    """Control: same engine, every hop through the object-path fallback.

    Runs after the code-space side (file order), so it also reports the
    per-hop split — the headline number of the kernel work — and asserts
    both paths moved identical traffic.
    """
    _measure_side(
        benchmark, backend="flat-objectpath", metric="object_path_hops_per_second"
    )
    code = _SIDES.get("code_space_hops_per_second")
    obj = _SIDES["object_path_hops_per_second"]
    if code is None:  # partial -k run; nothing to compare against
        return
    assert code[0] == obj[0], "hop-count divergence between kernel paths"
    assert code[2] == obj[2], "transcript divergence between kernel paths"
    ratio = code[1] / obj[1]
    bench_metric("kernel", "code_space_speedup", ratio, unit="x")
    report(
        "kernel",
        f"KERNEL split: code-space {code[1]:,.0f} hops/s vs object-path "
        f"{obj[1]:,.0f} hops/s = {ratio:.2f}x per-hop speedup",
    )
