"""Cold-start time-to-first-hop — warm artifact library vs empty library.

PR 5/6 made compiled topologies cheap to *reuse* inside one process; this
experiment gates what they cost to *acquire* in a fresh one.  The measured
unit is the campaign executor's actual cold-start critical path: starting
from fully cold process caches, acquire every distinct compiled artifact
of the matrix (exactly what the parent's prewarm pass does before
dispatching chunks), then build the first engine and step it to its first
delivered character — the moment the first scenario result starts
existing.  Two library states run the same function:

* **cold** — the library starts empty: every wiring pays a real compile
  plus a durable publish (fsync + atomic rename), the price any fleet
  pays exactly once per wiring, ever.
* **warm** — the library already holds every artifact: acquisition is one
  ``stat`` per wiring and the first engine's tables arrive via a
  zero-copy ``mmap`` load.  ``compile_calls()`` is asserted not to move —
  the compiler must never run on this path.

Both paths read through a configured library and share the same
first-hop code; the ratio isolates precisely what persistence buys.
Graphs are built outside the timed region (the graph is the scenario
*input*; the library covers artifacts derived from it).  The small case
is the CI tripwire (``-k "not full"``); the full case sweeps the whole
family registry at two sizes and carries the hard >=2x acceptance floor.
"""

from __future__ import annotations

import shutil

from repro.campaigns.executor import clear_scenario_caches
from repro.campaigns.spec import FAMILY_BUILDERS, build_family
from repro.protocol.gtd import GTDProcessor
from repro.sim.run import make_engine
from repro.store.artifacts import (
    ArtifactLibrary,
    artifact_key,
    configure_artifact_library,
)
from repro.topology.compile import compile_calls

from _report import bench_metric, report

#: case -> (families, sizes).  ``full`` is the whole family registry — the
#: "full campaign matrix" axis a real sweep would prewarm.
CASES = {
    "small": (("de-bruijn", "directed-ring", "hypercube", "spare-ring"), (8,)),
    "full": (tuple(sorted(FAMILY_BUILDERS)), (8, 13)),
}

#: Minimum cold/warm speedup on the full matrix — the PR's acceptance
#: criterion (a warm library must at least halve time-to-first-result).
SPEEDUP_FLOOR = 2.0

#: The small CI case's tripwire floor (same-host ratio, machine-relative).
SMALL_SPEEDUP_FLOOR = 1.5

#: case -> state -> (first_hop_tick, mean_seconds); filled as each state
#: finishes so the second one can assert parity and the speedup floor.
_RUNS: dict[str, dict[str, tuple[int, float]]] = {}


def _graphs(case: str):
    families, sizes = CASES[case]
    return [build_family(family, size, 0) for family in families for size in sizes]


def _first_hop(graph) -> int:
    """Build the first engine over the (just acquired) artifact and step it
    to its first delivered character; returns the tick that hop landed on."""
    engine = make_engine(
        "flat", graph, [GTDProcessor() for _ in graph.nodes()], root=0
    )
    engine.start()
    return engine.run(
        max_ticks=10_000, until=lambda: engine.metrics.total_delivered > 0
    )


def _time_to_first_hop(graphs, library_root) -> int:
    """The timed unit: prewarm every matrix artifact, then first hop."""
    library = ArtifactLibrary(library_root)
    configure_artifact_library(library)
    for graph in graphs:
        library.ensure(graph)
    return _first_hop(graphs[0])


def _run_case(benchmark, case: str, state: str, tmp_path, rounds: int) -> None:
    graphs = _graphs(case)
    distinct = len({artifact_key(graph) for graph in graphs})
    library_root = tmp_path / "library"

    if state == "warm":
        # populate once; every round then finds a fully warm library
        ArtifactLibrary(library_root)
        for graph in graphs:
            ArtifactLibrary(library_root).ensure(graph)

    def setup():
        # a fresh process, faithfully: cold in-memory caches, no library
        # configured — and for the cold state, an empty library directory
        configure_artifact_library(None)
        clear_scenario_caches()
        if state == "cold":
            shutil.rmtree(library_root, ignore_errors=True)
        return (graphs, library_root), {}

    if state == "warm":
        compiles_before = compile_calls()
    tick = benchmark.pedantic(_time_to_first_hop, setup=setup, rounds=rounds)
    if state == "warm":
        assert compile_calls() == compiles_before, (
            "warm-library cold start invoked the topology compiler — "
            "the mmap load path has regressed to compiling"
        )
    configure_artifact_library(None)
    clear_scenario_caches()

    mean = benchmark.stats.stats.mean
    benchmark.extra_info["distinct_artifacts"] = distinct
    benchmark.extra_info["first_hop_tick"] = tick
    bench_metric(
        "artifacts",
        f"{case}_{state}_start_ms",
        mean * 1e3,
        direction="lower",
        unit="ms",
        meta={f"{case}_artifacts": distinct},
    )
    report(
        "bench_artifacts",
        f"ARTIFACTS [{state}] {case}: {distinct} artifacts to first hop in "
        f"{mean * 1e3:.2f} ms",
    )

    seen = _RUNS.setdefault(case, {})
    seen[state] = (tick, mean)
    if len(seen) == 2:
        cold_tick, cold_mean = seen["cold"]
        warm_tick, warm_mean = seen["warm"]
        # the artifact tier must be invisible in the simulation itself
        assert warm_tick == cold_tick, (
            f"first hop landed on tick {warm_tick} warm vs {cold_tick} cold"
        )
        speedup = cold_mean / warm_mean
        bench_metric(
            "artifacts",
            f"{case}_cold_start_speedup",
            speedup,
            unit="x",
            meta={f"{case}_artifacts": distinct},
        )
        floor = SPEEDUP_FLOOR if case == "full" else SMALL_SPEEDUP_FLOOR
        report(
            "bench_artifacts",
            f"ARTIFACTS {case}: warm library reaches the first hop "
            f"{speedup:.2f}x faster than an empty one "
            f"({cold_mean * 1e3:.2f} ms -> {warm_mean * 1e3:.2f} ms, "
            f"floor {floor}x)",
        )
        assert speedup >= floor, (
            f"warm artifact library only {speedup:.2f}x on {case} "
            f"(floor {floor}x): the mmap load path costs too much relative "
            f"to compiling from scratch"
        )


def test_artifacts_small_cold_start(benchmark, tmp_path):
    _run_case(benchmark, "small", "cold", tmp_path, rounds=5)


def test_artifacts_small_warm_start(benchmark, tmp_path):
    _run_case(benchmark, "small", "warm", tmp_path, rounds=5)


def test_artifacts_full_cold_start(benchmark, tmp_path):
    _run_case(benchmark, "full", "cold", tmp_path, rounds=3)


def test_artifacts_full_warm_start(benchmark, tmp_path):
    _run_case(benchmark, "full", "warm", tmp_path, rounds=3)
