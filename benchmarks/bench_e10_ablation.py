"""E10 — ablation: why the KILL token must be strictly faster than snakes.

The paper's Lemma 4.2 rests on the speed separation of §2.1: the speed-3
KILL token gains two ticks per hop on the speed-1 growing snakes, so it
provably catches and erases them before the next RCA begins.  We ablate
that design choice two ways:

* **KILL at speed 1** — the cleanup wave never gains on the snake heads;
  the whole-network residue sweep after an RCA finds growing-snake traces
  (a ``CleanupViolation``);
* **KILL disabled** — growing marks survive forever; the *next* RCA's
  snakes find the network already claimed and the protocol wedges (tick
  budget exceeded) or trips the residue sweep.

Expected shape: the faithful configuration completes exactly; both ablated
configurations fail loudly.
"""

from __future__ import annotations

import repro.sim.processor as processor_module
from repro import determine_topology
from repro.errors import CleanupViolation, ProtocolViolation, TickBudgetExceeded
from repro.protocol.automaton import ProtocolProcessor
from repro.sim.characters import residence as real_residence
from repro.topology import generators
from repro.util.tables import format_table

from _report import report


def slow_kill_residence(char):
    """Ablation: KILL travels at snake speed (residence 3, not 1)."""
    if char.kind == "KILL":
        return 3
    return real_residence(char)


def run_ablation(monkeypatch) -> list[tuple]:
    graph = generators.bidirectional_line(12)
    rows = []

    # faithful configuration
    result = determine_topology(graph, verify_cleanup=True)
    rows.append(("KILL speed-3 (paper)", "completes", result.ticks,
                 "exact" if result.matches(graph) else "WRONG"))

    # ablation 1: slow KILL
    with monkeypatch.context() as m:
        m.setattr(processor_module, "residence", slow_kill_residence)
        try:
            determine_topology(graph, verify_cleanup=True)
            outcome, detail = "UNEXPECTED PASS", "-"
        except CleanupViolation:
            outcome, detail = "fails", "residue found after RCA"
        except (ProtocolViolation, TickBudgetExceeded) as exc:
            outcome, detail = "fails", type(exc).__name__
    rows.append(("KILL speed-1 (ablated)", outcome, "-", detail))

    # ablation 2: KILL disabled entirely
    with monkeypatch.context() as m:
        m.setattr(
            ProtocolProcessor, "_handle_kill", lambda self, char: None
        )
        try:
            determine_topology(graph, verify_cleanup=True)
            outcome, detail = "UNEXPECTED PASS", "-"
        except CleanupViolation:
            outcome, detail = "fails", "residue found after RCA"
        except (ProtocolViolation, TickBudgetExceeded) as exc:
            outcome, detail = "fails", type(exc).__name__
    rows.append(("KILL disabled (ablated)", outcome, "-", detail))
    return rows


def test_e10_speed_separation_ablation(benchmark, monkeypatch):
    rows = benchmark.pedantic(
        run_ablation, args=(monkeypatch,), rounds=1, iterations=1
    )
    report(
        "e10_ablation",
        format_table(
            ["configuration", "outcome", "ticks", "failure detail"],
            rows,
            title="E10: ablating the speed-3 KILL token (Lemma 4.2's "
            "speed-separation argument)",
        ),
    )
    assert rows[0][1] == "completes"
    assert rows[1][1] == "fails"
    assert rows[2][1] == "fails"
