"""E7 — Theorem 5.1: Omega(N log N), and asymptotic optimality.

For the Lemma 5.1 family (diameter O(log N)) we tabulate, per size N:

* the implied minimum ticks any algorithm needs (pigeonhole of Lemma 5.1's
  count against Lemma 5.2's transcript capacity, with our protocol's actual
  alphabet |I|);
* the measured ticks of our protocol on a family member.

Expected shape: measured >= implied everywhere; measured / (N * log2 N)
stays in a constant band (the protocol is Theta(N log N) here, matching the
lower bound up to constants — the paper's asymptotic-optimality claim).
"""

from __future__ import annotations

import math

from repro import determine_topology
from repro.analysis.transcripts import implied_lower_bound_ticks
from repro.topology import generators
from repro.util.tables import format_table

from _report import report

DELTA = 5  # the family's degree bound
DEPTHS = (1, 2, 3, 4)


def run_sweep():
    rows = []
    per_nlogn = []
    for depth in DEPTHS:
        graph = generators.tree_with_loop(depth, seed=depth)
        n = graph.num_nodes
        implied = implied_lower_bound_ticks(depth, DELTA)
        result = determine_topology(graph)
        assert result.matches(graph)
        ratio = result.ticks / (n * math.log2(n))
        per_nlogn.append(ratio)
        rows.append(
            (
                depth,
                n,
                result.diameter,
                implied,
                result.ticks,
                round(ratio, 1),
            )
        )
        assert result.ticks >= implied
    return rows, per_nlogn


def test_e7_lower_bound_vs_measured(benchmark):
    rows, per_nlogn = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    benchmark.extra_info["ticks_per_nlogn"] = [round(r, 1) for r in per_nlogn]
    report(
        "e7_lower_bound",
        format_table(
            ["depth", "N", "D", "Thm 5.1 floor (ticks)", "measured ticks",
             "measured/(N log2 N)"],
            rows,
            title="E7 (Theorem 5.1): analytic floor vs measured protocol time "
            "on the low-diameter family",
        ),
    )
    # Theta(N log N): the normalized column stays within a constant band.
    assert max(per_nlogn) / min(per_nlogn) < 4.0
