"""Shared reporting helper for the benchmark suite.

Every experiment prints its paper-style table and also appends it to
``benchmarks/out/<experiment>.txt`` so results survive pytest's output
capture (inspect them after a ``pytest benchmarks/ --benchmark-only`` run).
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def report(experiment: str, text: str) -> None:
    """Print ``text`` and persist it under ``benchmarks/out/``."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{experiment}.txt"
    with path.open("a") as fh:
        fh.write(text + "\n\n")
