"""Shared reporting helpers for the benchmark suite.

Every experiment prints its paper-style table and also appends it to
``benchmarks/out/<experiment>.txt`` so results survive pytest's output
capture (inspect them after a ``pytest benchmarks/ --benchmark-only`` run).

Experiments with gate-worthy headline numbers additionally record them via
:func:`bench_metric` into ``benchmarks/out/BENCH_<experiment>.json`` — the
fresh snapshot that ``repro-topology bench-compare`` diffs against the
committed ``benchmarks/baselines/BENCH_<experiment>.json``.  To re-record
a baseline after an intentional perf change, run the experiment and copy
the fresh snapshot over the committed one.
"""

from __future__ import annotations

import pathlib

from repro.bench.baseline import record_metric

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Experiments whose snapshot has been reset in this pytest session.  The
#: first metric of an experiment wipes its stale file so a partial run
#: (e.g. ``-k "not large"``) cannot inherit values from an earlier run of
#: different code — bench-compare then *skips* the missing metrics instead
#: of silently gating on stale ones.
_RESET_THIS_SESSION: set[str] = set()

#: Same idea for the human-readable ``<experiment>.txt`` logs.
_TXT_RESET_THIS_SESSION: set[str] = set()


def report(experiment: str, text: str) -> None:
    """Print ``text`` and persist it under ``benchmarks/out/``."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{experiment}.txt"
    if experiment not in _TXT_RESET_THIS_SESSION:
        path.unlink(missing_ok=True)
        _TXT_RESET_THIS_SESSION.add(experiment)
    with path.open("a") as fh:
        fh.write(text + "\n\n")


def bench_metric(
    experiment: str,
    name: str,
    value: float,
    *,
    direction: str = "higher",
    unit: str = "",
    meta: dict | None = None,
) -> None:
    """Record one headline metric into the experiment's fresh snapshot."""
    path = OUT_DIR / f"BENCH_{experiment}.json"
    if experiment not in _RESET_THIS_SESSION:
        path.unlink(missing_ok=True)
        _RESET_THIS_SESSION.add(experiment)
    record_metric(
        path,
        experiment,
        name,
        value,
        direction=direction,
        unit=unit,
        meta=meta,
    )
