"""Campaign throughput — the zero-rebuild pipeline against the pre-cache path.

E13 and the dynamics bench gate the *inner* hop loop; this module gates the
unit the ROADMAP's north star is actually measured in: **scenarios per
second** through the campaign executor.  Two execution paths run the same
mixed static+dynamic matrix and must produce scenario-for-scenario
identical results (asserted below, full dataclass equality — outcome,
hops, ticks, episodes, everything):

* **fresh** — ``run_scenario(..., fresh=True)`` with every cache cleared
  before each cell: the graph is rebuilt, the healthy baseline re-measured,
  the engine (CSR tables, interned alphabet, packed-wheel dictionaries)
  reconstructed from scratch.  This is the work a pre-cache worker performed
  the first time it saw a cell's key — the common case before this
  pipeline existed, because every ``run_campaign`` invocation forked a
  fresh pool (cold caches) and per-scenario unordered dispatch scattered
  cells sharing a baseline across workers.
* **cached** — the executor's real path: per-worker graph and healthy-run
  memos, engine pools reset instead of rebuilt, process-wide
  compiled-topology/interner caches, chunked dispatch.  Measured at steady
  state (one untimed warmup invocation first), which is what the
  persistent worker pool delivers to sweep drivers: the caches stay warm
  across ``run_campaign`` calls.

The benchmark runs serial (``jobs=1``) so it measures the per-worker
pipeline itself — multiprocessing would only add scheduling noise, and the
cached/fresh ratio carries over to any worker count (chunked dispatch
keys cells to the worker that holds their baseline).

The small case is the CI tripwire; the full case is the local acceptance
benchmark carrying the hard >=2x floor (CI runs with ``-k "not full"``
and bench-compare skips the metrics the smoke run does not produce).
"""

from __future__ import annotations

import time

from repro.campaigns.executor import (
    clear_scenario_caches,
    run_campaign,
    run_scenario,
)
from repro.campaigns.spec import CampaignSpec

from _report import bench_metric, report

#: The mixed matrix: healthy + shutdown statics, legacy cut/add dynamics,
#: and timeline programs (storms, churn, frontier waves, cut+heal
#: composites) — every fault class the executor knows, all sharing one
#: healthy-baseline key per (family, size, seed, backend).
FAULTS = (
    "none",
    "shutdown:0.15",
    "cut:0.4",
    "cut:1.5",
    "add:0.5",
    "storm:p=0.3@0.25",
    "storm:p=0.25@0.2",
    "churn:rate=0.08,period=0.25,heal=0.9,until=0.7",
    "churn:rate=0.1,period=0.2,until=0.6",
    "frontier:k=2@0.3",
    "frontier:k=3@0.25",
    "cut@0.3+heal@0.5",
)

#: case -> (sizes, seeds).  Both backends always run: the mixed matrix is
#: also a standing cache-correctness check across the engine registry.
CASES = {
    "small": ((10,), (0,)),
    "full": ((10, 13), (0, 1)),
}

#: Minimum cached/fresh speedup on the full matrix — the acceptance
#: criterion of the zero-rebuild pipeline (measured ~2.4-2.8x on the
#: reference machine; the floor leaves headroom for slower hosts).
SPEEDUP_FLOOR = 2.0

#: The small CI case still carries a tripwire floor: the ratio is
#: machine-relative (both paths run on the same host back to back), so a
#: drop below this means the cache layer itself regressed.
SMALL_SPEEDUP_FLOOR = 1.5

#: case -> path -> (scenarios, mean_seconds); used to assert parity and
#: compute the speedup once both paths of a case have run.
_RUNS: dict[str, dict[str, tuple[list, float]]] = {}


def _scenarios(case: str):
    sizes, seeds = CASES[case]
    return CampaignSpec(
        families=("spare-ring",),
        sizes=sizes,
        faults=FAULTS,
        seeds=seeds,
        backends=("object", "flat"),
    ).scenarios()


def _finish(case: str, path: str, results, mean: float, benchmark) -> None:
    count = len(results)
    rate = count / mean
    _RUNS.setdefault(case, {})[path] = (results, mean)
    benchmark.extra_info["scenarios"] = count
    benchmark.extra_info["scenarios_per_second"] = round(rate, 2)
    metric = (
        f"{case}_scenarios_per_second"
        if path == "cached"
        else f"{case}_fresh_scenarios_per_second"
    )
    bench_metric("camp", metric, rate, unit="sc/s", meta={f"{case}_cells": count})
    outcomes: dict[str, int] = {}
    for r in results:
        outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
    report(
        "bench_campaign",
        f"CAMP [{path}] {case}: {count} cells in {mean:.2f} s "
        f"({rate:.1f} scenarios/s), outcomes {outcomes}",
    )
    seen = _RUNS[case]
    if len(seen) == 2:
        fresh_results, fresh_mean = seen["fresh"]
        cached_results, cached_mean = seen["cached"]
        # scenario-for-scenario parity: the cache layer must be invisible
        assert cached_results == fresh_results, (
            f"cached and fresh executors disagree on {case}: "
            f"{[i for i, (a, b) in enumerate(zip(cached_results, fresh_results)) if a != b]}"
        )
        speedup = fresh_mean / cached_mean
        setup_share = 1.0 - cached_mean / fresh_mean
        bench_metric(
            "camp",
            f"{case}_cached_speedup",
            speedup,
            unit="x",
            meta={f"{case}_setup_share": round(setup_share, 3)},
        )
        report(
            "bench_campaign",
            f"CAMP {case}: cached executor is {speedup:.2f}x the pre-cache "
            f"path — {setup_share:.0%} of pre-cache wall-clock was "
            f"rebuildable setup (graphs, baselines, engine tables), "
            f"{1 - setup_share:.0%} was simulation",
        )
        floor = SPEEDUP_FLOOR if case == "full" else SMALL_SPEEDUP_FLOOR
        assert speedup >= floor, (
            f"zero-rebuild pipeline only {speedup:.2f}x on {case} "
            f"(floor {floor}x): the compiled-artifact caches, healthy-run "
            f"memo or engine pool have regressed"
        )


def _run_fresh(benchmark, case: str, rounds: int) -> None:
    scenarios = _scenarios(case)

    def run():
        # cold per cell: what every pre-cache worker paid on first sight
        # of a key (and, with per-invocation pools, on every invocation)
        results = []
        for scenario in scenarios:
            clear_scenario_caches()
            results.append(run_scenario(scenario, fresh=True))
        return results

    results = benchmark.pedantic(run, rounds=rounds, iterations=1)
    _finish(case, "fresh", results, benchmark.stats.stats.mean, benchmark)


def _run_cached(benchmark, case: str, rounds: int) -> None:
    scenarios = _scenarios(case)
    clear_scenario_caches()
    t0 = time.perf_counter()
    run_campaign(scenarios, jobs=1)  # untimed warmup: fill every cache
    warmup = time.perf_counter() - t0

    def run():
        return run_campaign(scenarios, jobs=1).results

    results = benchmark.pedantic(run, rounds=rounds, iterations=1)
    benchmark.extra_info["warmup_seconds"] = round(warmup, 3)
    _finish(case, "cached", results, benchmark.stats.stats.mean, benchmark)


def test_camp_small_fresh_throughput(benchmark):
    _run_fresh(benchmark, "small", rounds=2)


def test_camp_small_cached_throughput(benchmark):
    _run_cached(benchmark, "small", rounds=3)


def test_camp_full_fresh_throughput(benchmark):
    _run_fresh(benchmark, "full", rounds=2)


def test_camp_full_cached_throughput(benchmark):
    _run_cached(benchmark, "full", rounds=2)
