#!/usr/bin/env python
"""Satellite constellation crosslinks: a unidirectional torus in orbit.

The paper's third motivating scenario (§1.2.2): GPS-style constellations.
Satellites in several orbital planes carry unidirectional optical
crosslinks: each satellite transmits to the next satellite in its plane
(ring direction fixed by orbital mechanics) and to its counterpart in the
adjacent plane (fixed antenna pointing).  The result is exactly a directed
torus: strongly connected, degree 2, and *no* reverse channels.

Ground control talks to one satellite (the root) and needs the constellation
topology — which crosslinks actually locked — without any satellite storing
more than a constant-size protocol state.

Run:  python examples/satellite_constellation.py
"""

from repro import determine_topology
from repro.topology import generators
from repro.util.tables import format_table
from repro.viz.timeline import render_traffic_profile


def main() -> None:
    rows = []
    last = None
    for planes, per_plane in [(3, 4), (4, 6), (6, 6)]:
        constellation = generators.directed_torus(planes, per_plane)
        result = determine_topology(constellation)
        assert result.matches(constellation)
        n = constellation.num_nodes
        rows.append(
            (
                f"{planes}x{per_plane}",
                n,
                constellation.num_wires,
                result.diameter,
                result.ticks,
                round(result.ticks / (n * result.diameter), 2),
            )
        )
        last = result
    print(
        format_table(
            ["constellation", "satellites", "crosslinks", "D", "ticks", "ticks/(N*D)"],
            rows,
            title="Mapping satellite constellations (directed torus crosslinks)",
        )
    )
    print()
    print("ticks/(N*D) stays in a narrow band: Lemma 4.4's O(N*D) in action.")
    print()
    assert last is not None
    print(render_traffic_profile(last.metrics, title="character traffic, 6x6 constellation"))


if __name__ == "__main__":
    main()
