#!/usr/bin/env python
"""Degraded datacenter fabric: port-shutdown failures make it directed.

The paper's second motivating scenario (§1.2.2): a bidirectional network
whose individual in-ports/out-ports fail, leaving a *directed* network that
standard bidirectional discovery tools can no longer traverse.  A healthy
hypercube fabric degrades — a fraction of its links lose one direction —
and the operators need a fresh map of what still works.

The example degrades a 4-cube at increasing severity, re-maps it after each
level, and verifies the protocol recovers the surviving topology exactly
(as long as the fabric stays strongly connected, which the fault injector
guarantees by construction).

Run:  python examples/degraded_datacenter.py
"""

from repro import determine_topology
from repro.topology import generators
from repro.topology.faults import degrade_bidirectional
from repro.util.tables import format_table


def main() -> None:
    healthy = generators.hypercube(4)  # 16 switches, 64 directed wires
    rows = []
    for severity in (0.0, 0.25, 0.5, 0.75):
        fabric = (
            healthy
            if severity == 0.0
            else degrade_bidirectional(healthy, severity, seed=int(severity * 100))
        )
        result = determine_topology(fabric)
        assert result.matches(fabric)
        one_way = sum(
            1
            for w in fabric.wires()
            if not any(
                v.src == w.dst and v.dst == w.src for v in fabric.successors(w.dst)
            )
        )
        rows.append(
            (
                f"{severity:.0%}",
                fabric.num_wires,
                one_way,
                result.diameter,
                result.ticks,
                "yes" if result.matches(fabric) else "NO",
            )
        )
    print(
        format_table(
            ["links degraded", "live wires", "one-way wires", "D", "ticks", "exact map"],
            rows,
            title="Mapping a 16-switch hypercube fabric under port-shutdown faults",
        )
    )
    print()
    print("Losing reverse directions stretches the diameter and with it the")
    print("mapping time (Lemma 4.4: O(N*D)) — but recovery stays exact: the")
    print("protocol never assumed bidirectionality in the first place.")


if __name__ == "__main__":
    main()
