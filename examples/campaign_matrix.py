#!/usr/bin/env python
"""Campaign: a scenario matrix in one declaration, fanned out over workers.

Declares a family × size × fault-model × seed matrix, runs it over the
:mod:`repro.campaigns` executor (the same machinery behind
``repro-topology campaign`` and the E3/E9/E11 benchmark sweeps), and checks
the two properties campaigns exist for:

* every healthy scenario recovers its network exactly, and the Lemma 4.3
  episode scaling holds across the whole matrix;
* a parallel run equals the serial run result-for-result — per-scenario
  seeding makes worker count invisible to the outcome.

Run:  python examples/campaign_matrix.py
"""

from repro.campaigns import CampaignSpec, run_campaign


def main() -> None:
    spec = CampaignSpec(
        families=("de-bruijn", "bidirectional-ring"),
        sizes=(6, 8),
        faults=("none", "shutdown:0.15"),
        seeds=(0, 1),
    )
    print(f"matrix: {len(spec)} scenarios "
          f"({len(spec.families)} families x {len(spec.sizes)} sizes "
          f"x {len(spec.faults)} faults x {len(spec.seeds)} seeds)\n")

    campaign = run_campaign(spec, jobs=2)
    print(campaign.summary())

    fit = campaign.episode_fit()
    print(f"\nepisode scaling across the matrix (Lemma 4.3): "
          f"duration ~ {fit.slope:.2f} * loop_length + {fit.intercept:.2f} "
          f"(R^2 = {fit.r_squared:.4f})")

    serial = run_campaign(spec, jobs=1)
    identical = serial.results == campaign.results
    print(f"parallel == serial, result for result: {identical}")

    assert identical
    assert all(r.outcome == "exact" for r in campaign.results)
    assert fit.r_squared > 0.9

    # Backend parity at matrix scale: the same cells on the compiled
    # flat-core engine produce the same numbers, scenario for scenario
    # (only the scenario's backend tag differs).
    flat_spec = CampaignSpec(
        families=spec.families,
        sizes=spec.sizes,
        faults=spec.faults,
        seeds=spec.seeds,
        backends=("flat",),
    )
    flat = run_campaign(flat_spec, jobs=2)
    same = all(
        (a.outcome, a.ticks, a.hops) == (b.outcome, b.ticks, b.hops)
        for a, b in zip(campaign.results, flat.results)
    )
    print(f"flat backend == object backend, cell for cell: {same}")
    assert same


if __name__ == "__main__":
    main()
