#!/usr/bin/env python
"""Quickstart: map a small directed network from its root.

Builds an 8-processor binary de Bruijn network (degree 2, diameter 3 —
the bounded-degree/low-diameter regime the paper targets), runs the Global
Topology Determination protocol, and shows that the map the root's master
computer reconstructs is exactly the network, up to renaming the anonymous
processors.

Run:  python examples/quickstart.py
"""

from repro import determine_topology
from repro.topology import generators
from repro.viz.ascii_map import render_adjacency, render_recovered_map
from repro.viz.timeline import render_transcript_digest


def main() -> None:
    network = generators.de_bruijn(2, 3)
    print("ground truth (node ids exist only for the simulator — the")
    print("protocol's processors are anonymous finite-state automata):")
    print(render_adjacency(network, root=0))
    print()

    result = determine_topology(network, verify_cleanup=True)

    print(render_recovered_map(result.recovered))
    print()
    print("first mapping-relevant transcript events at the root:")
    print(render_transcript_digest(result.transcript, limit=12))
    print()
    print(f"global clock ticks : {result.ticks}")
    print(f"network (N, D)     : ({network.num_nodes}, {result.diameter})")
    print(f"RCAs / BCAs run    : {result.rca_runs} / {result.bca_runs}")
    print(f"exact recovery     : {result.matches(network)}")
    assert result.matches(network)


if __name__ == "__main__":
    main()
