#!/usr/bin/env python
"""The Section 5 lower bound, end to end.

Walks through the paper's counting argument with concrete numbers:

1. Lemma 5.1 — the tree-with-loop family: N processors, diameter
   <= 2 log N + 1, and at least (L-1)!/2^(L-1) distinct topologies
   (verified exactly for tiny depths by brute-force isomorphism
   classification);
2. Lemma 5.2 — the root's transcript after x ticks takes at most
   |I|^(delta*x) values, with |I| our protocol's actual alphabet;
3. Theorem 5.1 — pigeonhole the two counts to get the minimum ticks any
   correct algorithm needs, and compare with what our protocol *measures*
   on members of that very family.

Run:  python examples/lower_bound_demo.py
"""

from repro import determine_topology
from repro.analysis.counting import (
    exact_family_count,
    family_loop_arrangements,
    tree_family_description,
)
from repro.analysis.transcripts import implied_lower_bound_ticks
from repro.sim.characters import alphabet_size
from repro.topology import generators
from repro.util.tables import format_table

DELTA = 5  # the tree-with-loop family wires at most 5 ports per processor


def main() -> None:
    print(f"protocol alphabet size |I| at delta={DELTA}: {alphabet_size(DELTA)}")
    print()

    rows = []
    for depth in (1, 2):
        exact = exact_family_count(depth)
        point = tree_family_description(depth)
        rows.append(
            (
                depth,
                point.num_nodes,
                family_loop_arrangements(depth),
                round(2**point.log2_count_bound, 3),
                exact,
            )
        )
    print(
        format_table(
            ["depth", "N", "loop orders (L-1)!", "Lemma 5.1 bound", "exact count"],
            rows,
            title="Lemma 5.1, verified exactly at small depth",
        )
    )
    print()

    rows2 = []
    for depth in (1, 2, 3, 4):
        point = tree_family_description(depth)
        implied = implied_lower_bound_ticks(depth, DELTA)
        member = generators.tree_with_loop(depth, seed=depth)
        measured = determine_topology(member).ticks
        rows2.append(
            (
                point.num_nodes,
                point.diameter_bound,
                round(point.log2_count_bound, 1),
                implied,
                measured,
            )
        )
    print(
        format_table(
            [
                "N",
                "D bound",
                "log2 G(N)",
                "Thm 5.1 min ticks",
                "our protocol (measured)",
            ],
            rows2,
            title="Theorem 5.1: any algorithm's floor vs this protocol's measured time",
        )
    )
    print()
    print("The measured time sits far above the floor at these toy sizes —")
    print("constants are big — but both columns grow like N log N (the")
    print("family has D = O(log N), so O(N*D) meets the Omega(N log N) bar).")


if __name__ == "__main__":
    main()
