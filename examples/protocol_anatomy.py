#!/usr/bin/env python
"""Anatomy of one Root Communication Algorithm, drawn as a space-time diagram.

Attaches the omniscient tracer to a single RCA on a 7-processor line and
renders the classic picture: the in-growing flood spreading at speed 1 (one
hop per 3 ticks), the dying snakes marking the loop, the speed-3 KILL wave
visibly overtaking the flood (one hop per tick — the steeper diagonal), the
FORWARD token circling the marked loop, and the UNMARK sweep that leaves
the network in its quiescent state.

This is exactly the figure the FSSP literature (Minsky 1967, which the
paper credits for the speed concept) draws for multi-speed signal
constructions.

Run:  python examples/protocol_anatomy.py
"""

from repro.protocol.invariants import collect_residue
from repro.protocol.rca import ScriptedRCADriver
from repro.sim.characters import Char
from repro.sim.engine import Engine
from repro.sim.tracer import EventTrace
from repro.topology import generators
from repro.viz.spacetime import render_spacetime

LINE = 7
INITIATOR = LINE - 1  # the far end: the longest possible loop


def main() -> None:
    network = generators.bidirectional_line(LINE)
    processors = [ScriptedRCADriver() for _ in network.nodes()]
    engine = Engine(network, list(processors), root=0)
    engine.tracer = EventTrace()

    engine.start()
    driver = processors[INITIATOR]
    driver.begin_tick(engine.tick)
    driver.trigger(Char("FWD", out_port=1, in_port=1))
    engine.wake(INITIATOR)
    engine.run(
        max_ticks=10_000,
        until=lambda: driver.completed_at is not None,
        start=False,
    )
    engine.run_to_idle(max_ticks=12_000)

    print(
        f"one RCA: processor {INITIATOR} reports FORWARD(1,1) to the root "
        f"(processor 0) across a {LINE}-processor line\n"
    )
    print(render_spacetime(engine.tracer, LINE, max_rows=80))
    print()
    print(f"completed at tick {driver.completed_at}; network idle at "
          f"tick {engine.tick}")
    residue = collect_residue(engine)
    print(f"residue after completion: {len(residue)} findings "
          f"(Lemma 4.2 says 0)")
    assert not residue


if __name__ == "__main__":
    main()
