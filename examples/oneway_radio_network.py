#!/usr/bin/env python
"""One-way radio network: mapping a network that only transmits forward.

The paper motivates general directed networks with "encrypted one-way radio
military networks" (§1.2.2): each station can transmit to the stations whose
receivers are tuned to it, but there is no return channel on the same link —
the Backwards Communication Algorithm is the only way an acknowledgement can
travel "against" a link, by routing all the way around the strongly-
connected component.

This example builds a random one-way relay network (a covert relay ring
plus random extra one-way links), maps it with the protocol, and reports
how much of the running time the backwards communication costs: the same
network with every link made bidirectional maps much faster per edge.

Run:  python examples/oneway_radio_network.py
"""

from repro import determine_topology
from repro.topology import generators
from repro.topology.builder import PortGraphBuilder
from repro.util.tables import format_table


def bidirectionalize(graph):
    """The same stations with a return channel added to every link."""
    b = PortGraphBuilder(graph.num_nodes)
    seen = set()
    for w in graph.wires():
        key = (min(w.src, w.dst), max(w.src, w.dst))
        if key in seen:
            continue
        seen.add(key)
        if w.src == w.dst:
            b.connect(w.src, w.dst)
        else:
            b.connect_bidirectional(w.src, w.dst)
    return b.build()


def main() -> None:
    rows = []
    for stations, extra, seed in [(8, 4, 1), (12, 6, 2), (16, 8, 3)]:
        one_way = generators.random_strongly_connected(
            stations, extra_edges=extra, seed=seed
        )
        two_way = bidirectionalize(one_way)

        res_1 = determine_topology(one_way)
        res_2 = determine_topology(two_way)
        assert res_1.matches(one_way) and res_2.matches(two_way)

        rows.append(
            (
                stations,
                one_way.num_wires,
                res_1.diameter,
                res_1.ticks,
                round(res_1.ticks / one_way.num_wires, 1),
                two_way.num_wires,
                res_2.diameter,
                res_2.ticks,
                round(res_2.ticks / two_way.num_wires, 1),
            )
        )
    print(
        format_table(
            [
                "stations",
                "1-way links",
                "D",
                "ticks",
                "ticks/link",
                "2-way links",
                "D'",
                "ticks'",
                "ticks'/link",
            ],
            rows,
            title="One-way radio network vs the same stations with return channels",
        )
    )
    print()
    print("Every topology is recovered exactly in both cases; the one-way")
    print("network pays more per link because each backtrack of the DFS")
    print("token must circle the network via the BCA instead of hopping")
    print("back across a reverse wire.")


if __name__ == "__main__":
    main()
