"""Legacy shim so `pip install -e .` works on offline hosts without wheel.

All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
