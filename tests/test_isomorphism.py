"""Port-preserving isomorphism: the correctness criterion of Theorem 4.1."""

import pytest

from repro.topology import generators
from repro.topology.builder import PortGraphBuilder
from repro.topology.isomorphism import port_isomorphic, rooted_port_map
from repro.topology.portgraph import PortGraph


def relabel(graph: PortGraph, perm: list[int]) -> PortGraph:
    """Apply a node permutation, keeping all port labels."""
    out = PortGraph(graph.num_nodes, graph.delta)
    for w in graph.wires():
        out.add_wire(perm[w.src], w.out_port, perm[w.dst], w.in_port)
    return out.freeze()


class TestPositive:
    def test_identity(self, debruijn8):
        mapping = rooted_port_map(debruijn8, 0, debruijn8, 0)
        assert mapping == {u: u for u in debruijn8.nodes()}

    @pytest.mark.parametrize("seed", range(4))
    def test_relabeled_graphs_isomorphic(self, seed):
        import random

        g = generators.random_strongly_connected(9, extra_edges=5, seed=seed)
        perm = list(g.nodes())
        random.Random(seed).shuffle(perm)
        h = relabel(g, perm)
        mapping = rooted_port_map(g, 0, h, perm[0])
        assert mapping is not None
        assert mapping[0] == perm[0]
        assert all(mapping[u] == perm[u] for u in g.nodes())

    def test_single_self_loop(self, self_loop_single):
        assert port_isomorphic(self_loop_single, 0, self_loop_single, 0)


class TestNegative:
    def test_different_sizes(self):
        a = generators.directed_ring(4)
        b = generators.directed_ring(5)
        assert not port_isomorphic(a, 0, b, 0)

    def test_different_wire_counts(self, ring4):
        a = generators.directed_ring(4)
        assert not port_isomorphic(a, 0, ring4, 0)

    def test_swapped_ports_not_isomorphic(self):
        a = PortGraph(2, 2)
        a.add_wire(0, 1, 1, 1)
        a.add_wire(1, 1, 0, 1)
        a.freeze()
        b = PortGraph(2, 2)
        b.add_wire(0, 2, 1, 1)  # same shape, different out-port label
        b.add_wire(1, 1, 0, 1)
        b.freeze()
        assert not port_isomorphic(a, 0, b, 0)

    def test_different_in_port_label(self):
        a = PortGraph(2, 2)
        a.add_wire(0, 1, 1, 1)
        a.add_wire(1, 1, 0, 1)
        a.freeze()
        b = PortGraph(2, 2)
        b.add_wire(0, 1, 1, 2)
        b.add_wire(1, 1, 0, 1)
        b.freeze()
        assert not port_isomorphic(a, 0, b, 0)

    def test_wrong_root_anchor(self):
        # A directed 3-ring with distinct port labels at each node would be
        # root-sensitive; build an asymmetric graph.
        a = PortGraphBuilder(3)
        a.connect(0, 1).connect(1, 2).connect(2, 0).connect(0, 2).connect(2, 1)
        g = a.build()
        # anchored at structurally different nodes: node 1 has in-degree 2
        assert not port_isomorphic(g, 0, g, 1)

    def test_same_shape_different_mapping_conflict(self):
        # two disjoint... rather: a 4-ring vs two 2-cycles is size-equal but
        # not strongly matched from the root.
        ring = generators.directed_ring(4)
        b = PortGraphBuilder(4)
        b.connect(0, 1).connect(1, 0).connect(2, 3).connect(3, 2)
        pair = b.build()
        assert not port_isomorphic(ring, 0, pair, 0)


class TestRootedMapProperties:
    def test_mapping_is_bijection(self, debruijn8):
        mapping = rooted_port_map(debruijn8, 0, debruijn8, 0)
        assert mapping is not None
        assert len(set(mapping.values())) == debruijn8.num_nodes

    def test_mapping_preserves_wires(self):
        g = generators.directed_torus(3, 3)
        perm = [(u + 4) % 9 for u in range(9)]
        h = relabel(g, perm)
        mapping = rooted_port_map(g, 0, h, perm[0])
        assert mapping is not None
        for w in g.wires():
            target = h.out_wire(mapping[w.src], w.out_port)
            assert target is not None
            assert target.dst == mapping[w.dst]
            assert target.in_port == w.in_port
