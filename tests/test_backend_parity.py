"""Differential parity: the flat backend must equal the object backend.

The correctness contract of the compiled flat-core backend is *exact*
equivalence with the reference object engine — byte-identical root
transcripts, equal tick counts, equal traffic metrics — on every protocol
workload.  These tests enforce it differentially: each case runs twice,
once per backend, and the outputs are compared bit for bit.

The fuzz sweep covers the campaign axes (family × size × fault × seed),
including randomly generated strongly-connected topologies.  A deeper
sweep (more seeds, larger networks) runs when ``REPRO_PARITY_FUZZ=1`` —
the CI py3.12 matrix leg sets it.
"""

from __future__ import annotations

import os

import pytest

from repro.campaigns.executor import run_scenario
from repro.campaigns.spec import Scenario, build_family
from repro.protocol.bca import run_single_bca
from repro.protocol.rca import run_single_rca
from repro.protocol.runner import determine_topology
from repro.sim.batchcore import have_numpy
from repro.sim.transcript import Transcript
from repro.topology import generators


def transcript_bytes(transcript: Transcript) -> bytes:
    """A canonical byte serialization of a root transcript."""
    return "\n".join(repr(event) for event in transcript.events()).encode()


def assert_same_run(a, b) -> None:
    """Both TopologyResults must agree on every observable."""
    assert a.ticks == b.ticks
    assert a.drained_ticks == b.drained_ticks
    assert transcript_bytes(a.transcript) == transcript_bytes(b.transcript)
    assert a.metrics.delivered == b.metrics.delivered
    assert a.metrics.emitted == b.metrics.emitted
    assert a.rca_runs == b.rca_runs
    assert a.bca_runs == b.bca_runs
    assert a.recovered.to_portgraph(delta=a.graph.delta) == b.recovered.to_portgraph(
        delta=b.graph.delta
    )


# ----------------------------------------------------------------------
# full-protocol parity on healthy networks
# ----------------------------------------------------------------------
GTD_CASES = [
    ("de-bruijn", 16, 0),
    ("bidirectional-ring", 9, 0),
    ("hypercube", 8, 0),
    ("directed-torus", 9, 0),
    ("tree-with-loop", 7, 1),
    ("manhattan", 9, 0),
    ("random", 10, 3),
    ("random", 14, 7),
]


@pytest.mark.parametrize("family,size,seed", GTD_CASES)
def test_gtd_transcript_parity(family, size, seed):
    graph = build_family(family, size, seed)
    obj = determine_topology(graph, backend="object")
    flat = determine_topology(graph, backend="flat")
    assert_same_run(obj, flat)
    assert flat.matches(graph)


def test_gtd_parity_with_cleanup_verification():
    """The after_tick single-step path must also be tick-exact."""
    graph = generators.de_bruijn(2, 3)
    obj = determine_topology(graph, backend="object", verify_cleanup=True)
    flat = determine_topology(graph, backend="flat", verify_cleanup=True)
    assert_same_run(obj, flat)


def test_gtd_parity_nondefault_root():
    graph = generators.de_bruijn(2, 4)
    obj = determine_topology(graph, backend="object", root=5)
    flat = determine_topology(graph, backend="flat", root=5)
    assert_same_run(obj, flat)


# ----------------------------------------------------------------------
# scripted drivers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("initiator", [1, 11, 23])
def test_single_rca_parity(initiator):
    graph = generators.bidirectional_line(24)
    obj = run_single_rca(graph, initiator=initiator, backend="object")
    flat = run_single_rca(graph, initiator=initiator, backend="flat")
    assert obj.ticks == flat.ticks
    assert obj.completed_at == flat.completed_at
    assert transcript_bytes(obj.transcript) == transcript_bytes(flat.transcript)
    assert obj.engine.metrics.delivered == flat.engine.metrics.delivered


def test_single_bca_parity():
    graph = generators.bidirectional_ring(8)
    obj = run_single_bca(graph, 3, 1, backend="object")
    flat = run_single_bca(graph, 3, 1, backend="flat")
    assert obj.delivered_at == flat.delivered_at
    assert obj.initiator_done_at == flat.initiator_done_at
    assert obj.target_resumed_at == flat.target_resumed_at
    assert obj.ticks == flat.ticks


# ----------------------------------------------------------------------
# the campaign-axes fuzz sweep (family × size × fault × seed)
# ----------------------------------------------------------------------
def _fuzz_matrix():
    families = ["random", "de-bruijn", "spare-ring"]
    sizes = [8, 12]
    faults = ["none", "shutdown:0.15", "cut:0.4"]
    seeds = [0, 1]
    if os.environ.get("REPRO_PARITY_FUZZ") == "1":
        families += ["tree-with-loop", "ring-of-rings", "bidirectional-line"]
        sizes += [18, 24]
        faults += ["shutdown:0.3", "cut:0.8", "add:0.5"]
        seeds += [2, 3, 4]
    for family in families:
        for size in sizes:
            for fault in faults:
                # 'add' needs free ports; restrict it to the spare-ring
                if fault.startswith("add") and family != "spare-ring":
                    continue
                for seed in seeds:
                    yield family, size, fault, seed


@pytest.mark.parametrize("family,size,fault,seed", list(_fuzz_matrix()))
def test_campaign_cell_parity(family, size, fault, seed):
    """run_scenario is a pure function of the scenario modulo the backend."""
    obj = run_scenario(
        Scenario(family=family, size=size, fault=fault, seed=seed, backend="object")
    )
    flat = run_scenario(
        Scenario(family=family, size=size, fault=fault, seed=seed, backend="flat")
    )
    assert obj.outcome == flat.outcome
    assert obj.ticks == flat.ticks
    assert obj.drained_ticks == flat.drained_ticks
    assert obj.hops == flat.hops
    assert obj.rca_runs == flat.rca_runs
    assert obj.bca_runs == flat.bca_runs
    assert obj.by_family == flat.by_family
    assert obj.episodes == flat.episodes
    assert obj.lost_characters == flat.lost_characters


# ----------------------------------------------------------------------
# perturbation timelines: the dynamic fast path must stay tick-exact
# ----------------------------------------------------------------------
def _timeline_matrix():
    families = ["spare-ring", "bidirectional-ring", "random"]
    timelines = [
        "storm:p=0.25@0.3",
        "storm:p=0.3@0.2+heal@0.6",
        "churn:rate=0.15,period=0.25,heal=0.5,until=1.5",
        "frontier:k=2@0.4",
        "cut@0.2+heal@0.25",         # heal racing the residence window
        "cut:n=2@0.3+add@0.5",
    ]
    seeds = [0, 1]
    if os.environ.get("REPRO_PARITY_FUZZ") == "1":
        families += ["de-bruijn", "ring-of-rings", "hypercube"]
        timelines += [
            "flap:wire=2:1,on=0.1,off=0.5,cycles=2",
            "storm:p=0.5@0.5+heal@0.7+storm:p=0.5@0.9",
            "churn:rate=0.3,period=0.15,until=2",
        ]
        seeds += [2, 3, 4]
    for family in families:
        for timeline in timelines:
            # adds need free ports; restrict them to the spare-ring
            if "add" in timeline and family != "spare-ring":
                continue
            for seed in seeds:
                yield family, timeline, seed


@pytest.mark.parametrize("family,timeline,seed", list(_timeline_matrix()))
def test_timeline_transcript_parity(family, timeline, seed):
    """Flat incremental CSR patching must equal the object overlay bit-for-bit."""
    from repro.dynamics import compile_timeline, run_dynamic_gtd
    from repro.errors import TopologyError

    graph = build_family(family, 10, seed)
    try:
        program = compile_timeline(timeline, graph, seed=seed)
    except TopologyError:
        # infeasible on this family — lowering is backend-independent, so
        # both backends are identically infeasible; nothing to compare
        pytest.skip(f"{timeline} infeasible on {family}")
    budget = program.horizon * 3 + 1000
    obj = run_dynamic_gtd(graph, program, max_ticks=budget, backend="object")
    flat = run_dynamic_gtd(graph, program, max_ticks=budget, backend="flat")
    assert obj.outcome == flat.outcome
    assert obj.ticks == flat.ticks
    assert obj.phase == flat.phase
    assert obj.applied_ops == flat.applied_ops
    assert obj.lost_characters == flat.lost_characters
    assert obj.hops == flat.hops
    assert transcript_bytes(obj.transcript) == transcript_bytes(flat.transcript)
    assert obj.metrics.delivered == flat.metrics.delivered
    assert obj.final_topology == flat.final_topology


@pytest.mark.parametrize(
    "fault",
    ["frontier:k=2@0.4", "churn:rate=0.15,period=0.3", "storm:p=0.3@0.2+heal@0.6"],
)
@pytest.mark.parametrize("seed", [0, 1])
def test_timeline_campaign_cell_parity(fault, seed):
    """Timeline cells behave like every other cell of the matrix."""
    obj = run_scenario(
        Scenario(family="spare-ring", size=10, fault=fault, seed=seed)
    )
    flat = run_scenario(
        Scenario(family="spare-ring", size=10, fault=fault, seed=seed, backend="flat")
    )
    assert obj.outcome == flat.outcome
    assert obj.ticks == flat.ticks
    assert obj.hops == flat.hops
    assert obj.phase == flat.phase
    assert obj.lost_characters == flat.lost_characters


# ----------------------------------------------------------------------
# the batch backend: every decoded lane must equal the flat backend
# ----------------------------------------------------------------------
needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="numpy not installed (the [batch] extra)"
)

FUZZ = os.environ.get("REPRO_PARITY_FUZZ") == "1"


@needs_numpy
@pytest.mark.parametrize("family,size,seed", GTD_CASES)
def test_gtd_batch_single_lane_parity(family, size, seed):
    """A scalar batch engine (lanes=1) is a flat engine, byte for byte."""
    graph = build_family(family, size, seed)
    flat = determine_topology(graph, backend="flat")
    batch = determine_topology(graph, backend="batch")
    assert_same_run(flat, batch)
    assert batch.matches(graph)


@needs_numpy
def test_multi_lane_run_equals_solo_flat_runs():
    """Each lane of one lock-step batched run == its solo flat run."""
    from repro.dynamics import compile_timeline, run_dynamic_gtd
    from repro.dynamics.experiment import run_dynamic_gtd_lanes

    graph = build_family("spare-ring", 10, 0)
    timelines = [
        compile_timeline("storm:p=0.25@0.3", graph, seed=1),
        compile_timeline("cut@0.2+heal@0.25", graph, seed=2),
        (),  # a healthy lane riding along
        compile_timeline("churn:rate=0.15,period=0.25,heal=0.5,until=1.5",
                         graph, seed=3),
    ]
    budgets = [
        (program.horizon if program else 100) * 3 + 1000
        for program in timelines
    ]
    lanes = run_dynamic_gtd_lanes(graph, timelines, budgets)
    assert len(lanes) == len(timelines)
    for program, budget, lane in zip(timelines, budgets, lanes):
        solo = run_dynamic_gtd(graph, program, max_ticks=budget, backend="flat")
        assert lane.outcome == solo.outcome
        assert lane.ticks == solo.ticks
        assert lane.phase == solo.phase
        assert lane.applied_ops == solo.applied_ops
        assert lane.lost_characters == solo.lost_characters
        assert lane.hops == solo.hops
        assert transcript_bytes(lane.transcript) == transcript_bytes(
            solo.transcript
        )
        assert lane.metrics.delivered == solo.metrics.delivered
        assert lane.final_topology == solo.final_topology


def _batch_campaign_matrix():
    families = ["spare-ring", "random"]
    faults = [
        "none", "shutdown:0.15", "cut:0.4", "cut:1.5",
        "storm:p=0.25@0.3", "frontier:k=2@0.4",
    ]
    sizes = [10]
    seeds = [0, 1]
    if FUZZ:
        families += ["tree-with-loop", "de-bruijn"]
        faults += [
            "add:0.5", "cut@0.2+heal@0.25",
            "churn:rate=0.15,period=0.25,heal=0.5,until=1.5",
            "storm:p=0.3@0.2+heal@0.6",
        ]
        sizes += [13]
        seeds += [2, 3]
    return [
        Scenario(family, size, fault, seed, "batch")
        for family in families
        for size in sizes
        for fault in faults
        for seed in seeds
        # adds need free ports; restrict them to the spare-ring
        if not ("add" in fault and family != "spare-ring")
    ]


@needs_numpy
def test_batched_campaign_fanout_equals_flat_cells():
    """The fused batch executor fans out cells identical to solo flat runs.

    This is the lane-vs-flat byte-parity leg over the whole campaign
    pipeline: chunk fusion, cohort dedup, lock-step lanes, per-lane
    result fan-out — every cell must equal its solo ``flat``
    :func:`run_scenario` in every field except the backend tag
    (the extended matrix runs under ``REPRO_PARITY_FUZZ=1``).
    """
    from dataclasses import asdict, replace

    from repro.campaigns.executor import run_campaign

    scenarios = _batch_campaign_matrix()
    campaign = run_campaign(scenarios, jobs=1)
    for scenario, result in zip(scenarios, campaign.results):
        flat = run_scenario(replace(scenario, backend="flat"))
        got, want = asdict(result), asdict(flat)
        got.pop("scenario"), want.pop("scenario")
        assert got == want, f"batch != flat on {scenario.label}"


@needs_numpy
def test_batched_campaign_invariant_in_jobs_and_lanes():
    """jobs=1 == jobs=N and any --lanes cap, cell for cell."""
    from repro.campaigns.executor import (
        clear_scenario_caches,
        run_campaign,
        shutdown_worker_pool,
    )

    scenarios = _batch_campaign_matrix()[:24]
    base = run_campaign(scenarios, jobs=1)
    try:
        for kwargs in ({"jobs": 2}, {"jobs": 1, "lanes": 2}):
            clear_scenario_caches()
            assert run_campaign(scenarios, **kwargs).results == base.results
    finally:
        shutdown_worker_pool()


def test_backend_cells_hash_distinctly_but_default_is_stable():
    """The store must keep per-backend cells apart — and old keys intact."""
    base = Scenario("de-bruijn", 8)
    flat = Scenario("de-bruijn", 8, backend="flat")
    explicit = Scenario("de-bruijn", 8, backend="object")
    assert base.spec_hash() != flat.spec_hash()
    # the default backend hashes exactly as scenarios did before the axis
    assert base.spec_hash() == explicit.spec_hash()
    assert "backend" not in base.canonical()
    assert flat.canonical()["backend"] == "flat"
