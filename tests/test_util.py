"""Unit tests for repro.util: rng, validation, tables, fitting."""

import math
import random

import pytest

from repro.errors import AnalysisError
from repro.util.fitting import linear_fit, power_fit
from repro.util.rng import make_rng, spawn_seeds
from repro.util.tables import format_table
from repro.util.validation import check_index, check_positive, check_type


class TestRng:
    def test_int_seed_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_distinct_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_of_random_instance(self):
        rng = random.Random(7)
        assert make_rng(rng) is rng

    def test_none_gives_fresh_rng(self):
        assert isinstance(make_rng(None), random.Random)

    def test_spawn_seeds_reproducible(self):
        assert spawn_seeds(5, 4) == spawn_seeds(5, 4)

    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(5, 7)) == 7
        assert spawn_seeds(5, 0) == []

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(9, 16)
        assert len(set(seeds)) == 16

    def test_spawn_seeds_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 3) == 3

    def test_check_positive_minimum(self):
        assert check_positive("x", 2, minimum=2) == 2
        with pytest.raises(ValueError):
            check_positive("x", 1, minimum=2)

    def test_check_positive_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_check_positive_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive("x", 3.0)

    def test_check_index_range(self):
        assert check_index("i", 0, 5) == 0
        assert check_index("i", 4, 5) == 4
        with pytest.raises(ValueError):
            check_index("i", 5, 5)
        with pytest.raises(ValueError):
            check_index("i", -1, 5)

    def test_check_type_single(self):
        assert check_type("v", "s", str) == "s"
        with pytest.raises(TypeError):
            check_type("v", 1, str)

    def test_check_type_tuple(self):
        assert check_type("v", 1, (int, str)) == 1
        with pytest.raises(TypeError):
            check_type("v", 1.5, (int, str))


class TestTables:
    def test_simple_table(self):
        out = format_table(["a", "b"], [[1, "x"], [23, "yy"]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| a" in lines[1] or "|  a" in lines[1]
        assert out.count("+") >= 6

    def test_title(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_numeric_right_alignment(self):
        out = format_table(["n"], [[1], [100]])
        rows = [row for row in out.splitlines() if row.startswith("|")][1:]
        assert rows[0] == "|   1 |"
        assert rows[1] == "| 100 |"

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.235" in out

    def test_large_float_scientific(self):
        out = format_table(["x"], [[1.5e7]])
        assert "e+07" in out

    def test_zero(self):
        assert "| 0 |" in format_table(["x"], [[0.0]])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["only", "headers"], [])
        assert "only" in out


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [1, 3])
        assert fit.predict(10) == pytest.approx(21.0)

    def test_constant_ys(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_r2_below_one(self):
        fit = linear_fit([1, 2, 3, 4], [2, 5, 5.5, 9])
        assert 0 < fit.r_squared < 1

    def test_too_few_points(self):
        with pytest.raises(AnalysisError):
            linear_fit([1], [1])

    def test_constant_xs(self):
        with pytest.raises(AnalysisError):
            linear_fit([2, 2, 2], [1, 2, 3])

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            linear_fit([1, 2], [1])

    def test_matches_numpy_polyfit(self):
        numpy = pytest.importorskip("numpy")
        xs = [1.0, 2.5, 4.0, 7.5, 9.0]
        ys = [2.2, 4.9, 8.1, 15.2, 17.9]
        fit = linear_fit(xs, ys)
        slope, intercept = numpy.polyfit(xs, ys, 1)
        assert fit.slope == pytest.approx(slope)
        assert fit.intercept == pytest.approx(intercept)


class TestPowerFit:
    def test_exact_power(self):
        xs = [1, 2, 4, 8]
        ys = [3 * x**2 for x in xs]
        fit = power_fit(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(3.0)

    def test_linear_data_has_exponent_one(self):
        xs = [1, 2, 3, 4, 5]
        fit = power_fit(xs, [7 * x for x in xs])
        assert fit.slope == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            power_fit([0, 1], [1, 2])
        with pytest.raises(AnalysisError):
            power_fit([1, 2], [-1, 2])

    def test_nlogn_exponent_between_1_and_2(self):
        xs = [8, 16, 32, 64, 128]
        ys = [x * math.log2(x) for x in xs]
        fit = power_fit(xs, ys)
        assert 1.0 < fit.slope < 1.5
