"""Networks with non-contiguous port numbering.

Every generator wires the lowest free ports, but nothing in the model says
ports are contiguous: a processor may have wires on out-ports 2 and 5 with
1, 3, 4 dark.  The protocol only ever consults its *connected* port sets
(port awareness), so scattered numbering must work — these tests pin that
down, including the DFS's "lowest-numbered connected out-port" rule.
"""

from repro import determine_topology
from repro.protocol.bca import run_single_bca
from repro.protocol.rca import run_single_rca
from repro.topology.portgraph import PortGraph


def scattered_two_cycle() -> PortGraph:
    g = PortGraph(2, 5)
    g.add_wire(0, 4, 1, 3)
    g.add_wire(1, 5, 0, 2)
    return g.freeze()


def scattered_triangle() -> PortGraph:
    g = PortGraph(3, 7)
    g.add_wire(0, 6, 1, 2)
    g.add_wire(1, 3, 2, 7)
    g.add_wire(2, 5, 0, 4)
    g.add_wire(0, 2, 2, 1)   # chord, also scattered
    g.add_wire(2, 1, 1, 5)
    g.add_wire(1, 7, 0, 7)
    return g.freeze()


class TestScatteredRecovery:
    def test_two_cycle(self):
        g = scattered_two_cycle()
        result = determine_topology(g, verify_cleanup=True)
        assert result.matches(g)
        # the recovered map reports the *actual* odd port numbers
        ports = {(w.out_port, w.in_port) for w in result.recovered.wires}
        assert ports == {(4, 3), (5, 2)}

    def test_triangle_with_chords(self):
        g = scattered_triangle()
        result = determine_topology(g, verify_cleanup=True)
        assert result.matches(g)

    def test_dfs_probes_lowest_connected_port_first(self):
        g = scattered_triangle()
        result = determine_topology(g)
        first_dfs_send = next(
            e for e in result.transcript.events()
            if e.kind == "send" and e.char is not None and e.char.kind == "DFS"
        )
        assert first_dfs_send.port == min(
            p for p in range(1, g.delta + 1) if g.out_wire(0, p)
        )

    def test_single_rca_on_scattered_ports(self):
        g = scattered_triangle()
        result = run_single_rca(g, initiator=2)
        assert result.completed_at > 0

    def test_single_bca_on_scattered_ports(self):
        g = scattered_two_cycle()
        result = run_single_bca(g, node=1, in_port=3)
        assert result.target == 0

    def test_port_labels_distinguish_topologies(self):
        """Same shape, different port labels: maps must differ."""
        a = scattered_two_cycle()
        b = PortGraph(2, 5)
        b.add_wire(0, 4, 1, 3)
        b.add_wire(1, 5, 0, 1)  # in-port 1 instead of 2
        b.freeze()
        res_a = determine_topology(a)
        res_b = determine_topology(b)
        assert res_a.matches(a) and res_b.matches(b)
        assert not res_a.matches(b) and not res_b.matches(a)
