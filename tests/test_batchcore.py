"""Unit tests for the lane-parallel batch backend's moving parts.

The byte-parity contract (every decoded lane == a solo flat run) lives in
``test_backend_parity.py``; this module tests the batch machinery itself:
the numpy gate of the optional ``[batch]`` extra, lane register packing,
the lock-step scheduler's per-lane error capture and drain phase, the
per-lane emission-matrix flush, and the strict post-terminal wire-op
semantics the campaign executor's cohort reduction relies on.
"""

from __future__ import annotations

import pytest

from repro.campaigns.spec import build_family
from repro.errors import ReproError
from repro.protocol.gtd import GTDProcessor
from repro.protocol.runner import determine_topology
from repro.sim import batchcore
from repro.sim.batchcore import (
    BatchEngine,
    LaneRun,
    LaneTimelines,
    have_numpy,
    lane_timelines,
)
from repro.sim.run import RunConfig, check_backend

needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="numpy not installed (the [batch] extra)"
)


# ----------------------------------------------------------------------
# the numpy gate: module imports always, construction degrades gracefully
# ----------------------------------------------------------------------
class TestNumpyGate:
    def test_module_is_importable_and_reports_absence(self, monkeypatch):
        monkeypatch.setattr(batchcore, "_np", None)
        assert not have_numpy()
        with pytest.raises(ReproError, match=r"repro-topology\[batch\]"):
            batchcore.require_numpy()

    def test_check_backend_names_the_missing_extra(self, monkeypatch):
        monkeypatch.setattr(batchcore, "_np", None)
        with pytest.raises(ReproError, match=r"pip install 'repro-topology\[batch\]'"):
            check_backend("batch")
        # the scalar backends never depend on numpy
        assert check_backend("flat") == "flat"
        assert check_backend("object") == "object"

    def test_runconfig_validation_names_the_missing_extra(self, monkeypatch):
        monkeypatch.setattr(batchcore, "_np", None)
        with pytest.raises(ReproError, match=r"\[batch\]"):
            RunConfig(max_ticks=10, backend="batch")

    def test_engine_construction_requires_numpy(self, monkeypatch):
        graph = build_family("de-bruijn", 8, 0)
        monkeypatch.setattr(batchcore, "_np", None)
        with pytest.raises(ReproError, match=r"\[batch\]"):
            BatchEngine(graph, [GTDProcessor() for _ in graph.nodes()])


class TestRunConfigLanes:
    def test_scalar_backends_reject_lanes(self):
        with pytest.raises(ReproError, match="lane-parallel"):
            RunConfig(max_ticks=10, backend="flat", lanes=2)
        with pytest.raises(ReproError, match=">= 1"):
            RunConfig(max_ticks=10, lanes=0)

    @needs_numpy
    def test_batch_backend_accepts_lanes(self):
        assert RunConfig(max_ticks=10, backend="batch", lanes=4).lanes == 4


def test_lane_timelines_normalizer():
    assert lane_timelines((), 1) == ((),)
    assert lane_timelines(LaneTimelines(((), ())), 2) == ((), ())
    with pytest.raises(ReproError, match="2 lane timelines for 3 lanes"):
        lane_timelines(LaneTimelines(((), ())), 3)
    with pytest.raises(ReproError, match="LaneTimelines"):
        lane_timelines((), 2)


# ----------------------------------------------------------------------
# lane register packing
# ----------------------------------------------------------------------
@needs_numpy
def test_lane_register_layout():
    import numpy as np

    graph = build_family("de-bruijn", 8, 0)
    eng = BatchEngine(graph, [GTDProcessor() for _ in graph.nodes()], lanes=4)
    assert eng.lanes == 4
    assert len(eng.lane_engines) == 4
    assert eng.lane_engines[0] is eng, "lane 0 is the batch engine itself"
    assert len({id(e) for e in eng.lane_engines}) == 4
    for reg in (eng._lane_state, eng._lane_clock, eng._lane_error):
        assert reg.shape == (4,) and reg.dtype == np.int64
    assert eng._lane_emitted.shape == (4, 0)
    with pytest.raises(ReproError, match="1 lane configs for 4 lanes"):
        eng.run_lanes([LaneRun(max_ticks=10)])


@needs_numpy
def test_lane_count_must_be_positive():
    graph = build_family("de-bruijn", 8, 0)
    with pytest.raises(ReproError, match=">= 1"):
        BatchEngine(graph, [GTDProcessor() for _ in graph.nodes()], lanes=0)


# ----------------------------------------------------------------------
# the lock-step scheduler
# ----------------------------------------------------------------------
def _gtd_lane_runs(eng, budget=5000, drain=False):
    return [
        LaneRun(
            max_ticks=budget,
            until=(lambda p=eng.lane_engines[i].processors[eng.root]: p.terminal),
            drain=drain,
        )
        for i in range(eng.lanes)
    ]


@needs_numpy
def test_identical_lanes_agree_with_the_scalar_run():
    graph = build_family("de-bruijn", 8, 0)
    eng = BatchEngine(graph, [GTDProcessor() for _ in graph.nodes()], lanes=3)
    outs = eng.run_lanes(_gtd_lane_runs(eng, drain=True))
    solo = determine_topology(graph, backend="flat")
    for out in outs:
        assert out.error is None
        assert out.ticks == solo.ticks
        assert out.drained_ticks == solo.drained_ticks


@needs_numpy
def test_budget_lane_is_captured_without_aborting_siblings():
    graph = build_family("de-bruijn", 8, 0)
    eng = BatchEngine(graph, [GTDProcessor() for _ in graph.nodes()], lanes=2)
    runs = [
        LaneRun(max_ticks=3, until=lambda: False),
        LaneRun(
            max_ticks=5000,
            until=(lambda p=eng.lane_engines[1].processors[0]: p.terminal),
        ),
    ]
    outs = eng.run_lanes(runs)
    assert outs[0].error == "budget" and outs[0].ticks == 3
    assert outs[1].error is None
    assert outs[1].ticks == determine_topology(graph, backend="flat").ticks


@needs_numpy
def test_lane_emitted_matrix_flushes_per_lane_counters():
    graph = build_family("de-bruijn", 8, 0)
    eng = BatchEngine(graph, [GTDProcessor() for _ in graph.nodes()], lanes=3)
    outs = eng.run_lanes(_gtd_lane_runs(eng, drain=True))
    matrix = eng.lane_emitted_matrix()
    assert matrix.shape[0] == 3
    for i, out in enumerate(outs):
        row = eng.lane_engines[i]._emitted_by_code
        assert list(matrix[i, : len(row)]) == list(row)
        assert int(matrix[i].sum()) == sum(out.engine.metrics.emitted.values())
    # identical lanes produce identical emission rows
    assert (matrix[0] == matrix[1]).all() and (matrix[0] == matrix[2]).all()
    # the run snapshots the same matrix onto the lane registers
    assert (eng._lane_emitted == matrix).all()


@needs_numpy
def test_reset_restores_power_on_lanes():
    graph = build_family("de-bruijn", 8, 0)
    eng = BatchEngine(graph, [GTDProcessor() for _ in graph.nodes()], lanes=2)
    first = eng.run_lanes(_gtd_lane_runs(eng))
    eng.reset()
    assert eng._lane_emitted.shape == (2, 0)
    assert all(e.tick == 0 and e.is_idle() for e in eng.lane_engines)
    again = eng.run_lanes(_gtd_lane_runs(eng))
    assert [o.ticks for o in again] == [o.ticks for o in first]


# ----------------------------------------------------------------------
# strict post-terminal semantics (the executor's cohort reduction)
# ----------------------------------------------------------------------
@needs_numpy
def test_op_at_terminal_tick_fires_op_after_does_not():
    """The cohort reduction drops ops strictly *after* the terminal tick.

    An op scheduled at exactly the tick the protocol terminates on still
    fires (ops apply after that tick's deliveries, before the until check
    concludes the run is over at the next iteration) — so the executor
    may only reduce a program to a healthy run when every op lands
    strictly later.  This pins the boundary the reduction relies on.
    """
    from repro.dynamics.engine import WireMutation
    from repro.dynamics.experiment import run_dynamic_gtd
    from repro.topology.faults import pick_cut_victim
    from repro.util.rng import make_rng

    graph = build_family("spare-ring", 10, 0)
    terminal = run_dynamic_gtd(graph, (), backend="flat").ticks
    wire = pick_cut_victim(graph, make_rng(0))

    def run_with_cut_at(tick):
        return run_dynamic_gtd(
            graph,
            (WireMutation(tick=tick, kind="cut", wire=wire),),
            max_ticks=terminal * 3 + 1000,
            backend="batch",
        )

    assert run_with_cut_at(terminal).applied_ops == 1
    after = run_with_cut_at(terminal + 1)
    assert after.applied_ops == 0
    assert after.ticks == terminal, "an unfired op must not disturb the run"
