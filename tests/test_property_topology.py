"""Property-based tests for the topology layer itself."""

from hypothesis import given, settings, strategies as st

from repro.topology import generators
from repro.topology.isomorphism import port_isomorphic, rooted_port_map
from repro.topology.portgraph import PortGraph
from repro.topology.properties import bfs_distances, diameter, is_strongly_connected
from repro.topology.serialize import from_json, to_json

_SETTINGS = dict(max_examples=30, deadline=None)


@st.composite
def graphs(draw) -> PortGraph:
    n = draw(st.integers(min_value=1, max_value=12))
    extra = draw(st.integers(min_value=0, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return generators.random_strongly_connected(n, extra_edges=extra, seed=seed)


class TestSerializationProperty:
    @given(graph=graphs())
    @settings(**_SETTINGS)
    def test_json_roundtrip(self, graph):
        assert from_json(to_json(graph)) == graph

    @given(graph=graphs())
    @settings(**_SETTINGS)
    def test_roundtrip_preserves_isomorphism(self, graph):
        again = from_json(to_json(graph))
        assert port_isomorphic(graph, 0, again, 0)


class TestIsomorphismProperty:
    @given(graph=graphs(), seed=st.integers(min_value=0, max_value=999))
    @settings(**_SETTINGS)
    def test_relabeling_always_isomorphic(self, graph, seed):
        import random

        perm = list(graph.nodes())
        random.Random(seed).shuffle(perm)
        relabeled = PortGraph(graph.num_nodes, graph.delta)
        for w in graph.wires():
            relabeled.add_wire(perm[w.src], w.out_port, perm[w.dst], w.in_port)
        relabeled.freeze()
        mapping = rooted_port_map(graph, 0, relabeled, perm[0])
        assert mapping is not None
        assert all(mapping[u] == perm[u] for u in graph.nodes())

    @given(graph=graphs())
    @settings(**_SETTINGS)
    def test_isomorphism_reflexive(self, graph):
        assert port_isomorphic(graph, 0, graph, 0)


class TestPropertiesProperty:
    @given(graph=graphs())
    @settings(**_SETTINGS)
    def test_distances_consistent_with_diameter(self, graph):
        d = diameter(graph)
        assert all(
            max(bfs_distances(graph, u)) <= d for u in graph.nodes()
        )

    @given(graph=graphs())
    @settings(**_SETTINGS)
    def test_generated_always_strong(self, graph):
        assert is_strongly_connected(graph)

    @given(graph=graphs())
    @settings(**_SETTINGS)
    def test_triangle_inequality_via_root(self, graph):
        # d(u, v) <= d(u, 0) + d(0, v)
        from_root = bfs_distances(graph, 0)
        for u in list(graph.nodes())[:4]:
            du = bfs_distances(graph, u)
            for v in list(graph.nodes())[:4]:
                assert du[v] <= du[0] + from_root[v]
