"""The synchronous engine: delivery timing, ordering, speeds, watchdogs."""

from typing import Any

import pytest

from repro.errors import SimulationError, TickBudgetExceeded
from repro.sim.characters import Char, make_body, make_head
from repro.sim.engine import Engine
from repro.sim.processor import Processor
from repro.topology import generators
from repro.topology.builder import PortGraphBuilder


class Recorder(Processor):
    """Logs every arrival; forwards nothing unless told."""

    def __init__(self) -> None:
        super().__init__()
        self.log: list[tuple[int, int, Char]] = []

    def handle(self, in_port: int, char: Char) -> None:
        self.log.append((self.tick, in_port, char))

    def state_snapshot(self) -> dict[str, Any]:
        return {"log_len": len(self.log)}  # not protocol state; test double


class Forwarder(Recorder):
    """Re-emits every arrival through all out-ports (residence applies)."""

    def handle(self, in_port: int, char: Char) -> None:
        super().handle(in_port, char)
        self.broadcast(char)


class StarterRoot(Recorder):
    """Emits a configured character on start."""

    def __init__(self, char: Char, out_port: int = 1) -> None:
        super().__init__()
        self.char = char
        self.out_port = out_port

    def on_start(self) -> None:
        self.send(self.out_port, self.char)


def two_node_engine(root_proc, other_proc):
    b = PortGraphBuilder(2)
    g = b.connect(0, 1).connect(1, 0).build()
    return Engine(g, [root_proc, other_proc], root=0)


class TestDeliveryTiming:
    def test_speed1_hop_takes_3_ticks(self):
        recorder = Recorder()
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), recorder)
        engine.start()
        for _ in range(5):
            engine.step_tick()
        assert recorder.log and recorder.log[0][0] == 3

    def test_speed3_hop_takes_1_tick(self):
        recorder = Recorder()
        engine = two_node_engine(StarterRoot(Char("KILL", payload="RCA")), recorder)
        engine.start()
        engine.step_tick()
        assert recorder.log and recorder.log[0][0] == 1

    def test_extra_delay_shifts_arrival(self):
        class DelayRoot(Recorder):
            def on_start(self) -> None:
                self.send(1, make_head("IG", 1), extra_delay=2)

        recorder = Recorder()
        engine = two_node_engine(DelayRoot(), recorder)
        engine.start()
        for _ in range(7):
            engine.step_tick()
        assert recorder.log[0][0] == 5

    def test_forwarding_chain_timing(self):
        # 0 -> 1 -> 2 -> 0 directed ring, speed-1 char: arrives node 2 at 6.
        g = generators.directed_ring(3)
        procs = [StarterRoot(make_head("IG", 1)), Forwarder(), Recorder()]
        engine = Engine(g, procs, root=0)
        engine.start()
        for _ in range(8):
            engine.step_tick()
        assert procs[2].log[0][0] == 6


class TestOrderingWithinTick:
    def test_kill_handled_before_growing(self):
        # Both a KILL and a growing head arrive at tick 1 (KILL is speed-3
        # and sent one tick later so they coincide): KILL must come first.
        class DoubleRoot(Recorder):
            def on_start(self) -> None:
                self.send(1, make_head("IG", 1), extra_delay=-2)  # due now
                self.send(1, Char("KILL", payload="RCA"))

        recorder = Recorder()
        engine = two_node_engine(DoubleRoot(), recorder)
        engine.start()
        engine.step_tick()
        kinds = [c.kind for _, _, c in recorder.log]
        assert kinds == ["KILL", "IGH"]

    def test_lowest_in_port_first_for_same_priority(self):
        # Two heads arrive the same tick through ports 1 and 2.
        b = PortGraphBuilder(3)
        g = (
            b.connect(0, 2)  # 0 out1 -> 2 in1
            .connect(1, 2)   # 1 out1 -> 2 in2
            .connect(2, 0)
            .connect(2, 1)
            .connect(0, 1)
            .connect(1, 0)
            .build()
        )

        class R0(Recorder):
            def on_start(self) -> None:
                self.send(1, make_head("IG", 1))

        procs = [R0(), R0(), Recorder()]
        engine = Engine(g, procs, root=0)
        engine.start()
        procs[1].begin_tick(0)
        procs[1].on_start()
        engine.wake(1)
        for _ in range(4):
            engine.step_tick()
        ports = [p for _, p, _ in procs[2].log]
        assert ports == [1, 2]


class TestEngineGuards:
    def test_requires_frozen_graph(self):
        g = PortGraphBuilder(2).connect(0, 1).connect(1, 0).build()
        assert g.frozen  # builder freezes; construct unfrozen manually
        from repro.topology.portgraph import PortGraph

        raw = PortGraph(2, 2)
        raw.add_wire(0, 1, 1, 1)
        raw.add_wire(1, 1, 0, 1)
        with pytest.raises(SimulationError):
            Engine(raw, [Recorder(), Recorder()])

    def test_processor_count_mismatch(self, two_node_cycle):
        with pytest.raises(SimulationError):
            Engine(two_node_cycle, [Recorder()])

    def test_root_out_of_range(self, two_node_cycle):
        with pytest.raises(SimulationError):
            Engine(two_node_cycle, [Recorder(), Recorder()], root=5)

    def test_emit_through_unconnected_port(self):
        class BadRoot(Recorder):
            def on_start(self) -> None:
                self.send(2, make_head("IG", 2))  # port 2 not wired

        engine = two_node_engine(BadRoot(), Recorder())
        with pytest.raises(SimulationError):
            engine.start()
            for _ in range(4):
                engine.step_tick()

    def test_tick_budget_raises(self):
        class Bouncer(Forwarder):
            def on_start(self) -> None:
                self.send(1, make_body("IG", 1))

        engine = two_node_engine(Bouncer(), Forwarder())
        with pytest.raises(TickBudgetExceeded):
            engine.run(max_ticks=50, until=lambda: False)


class TestIdleTracking:
    def test_idle_after_char_absorbed(self):
        recorder = Recorder()  # absorbs everything
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), recorder)
        ticks = engine.run(max_ticks=100)
        assert engine.is_idle()
        assert ticks <= 5

    def test_run_until_condition(self):
        recorder = Recorder()
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), recorder)
        t = engine.run(max_ticks=100, until=lambda: bool(recorder.log))
        assert t == 3

    def test_run_to_idle(self):
        recorder = Recorder()
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), recorder)
        engine.start()
        engine.run_to_idle(max_ticks=50)
        assert engine.is_idle()


class TestTranscriptRecording:
    def test_root_recv_and_send_recorded(self):
        fwd = Forwarder()
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), fwd)
        engine.run(max_ticks=20)
        sends = [e for e in engine.transcript.events() if e.kind == "send"]
        recvs = [e for e in engine.transcript.events() if e.kind == "recv"]
        assert len(sends) == 1  # root's own emission
        assert len(recvs) == 1  # the forwarded copy coming back

    def test_metrics_count_hops(self):
        fwd = Forwarder()
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), fwd)
        engine.run(max_ticks=20)
        assert engine.metrics.delivered["IGH"] == 2
        assert engine.metrics.emitted["IGH"] == 2


class TestInFlightChars:
    def test_reports_resting_and_on_wire(self):
        fwd = Forwarder()
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), fwd)
        engine.start()
        engine.step_tick()
        chars = list(engine.in_flight_chars())
        assert chars, "character should be resting in the root"
