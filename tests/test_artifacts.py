"""The on-disk compiled-artifact library (:mod:`repro.store.artifacts`).

Covers the tentpole contracts end to end: byte-identical round trips
(compile → publish → mmap-load → identical tables *and* identical
protocol transcripts), torn/truncated-file recovery, version-mismatch
rejection, concurrent publisher races, copy-on-write forking over
read-only mappings, GC, the campaign/CLI threading, and the cold-start
guarantee itself — a fresh subprocess with a warm library reaches its
first simulation hop with zero compiler invocations.
"""

from __future__ import annotations

import multiprocessing
import os
import struct
import subprocess
import sys
import zlib
from array import array
from pathlib import Path

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.campaigns.executor import clear_scenario_caches, shutdown_worker_pool
from repro.campaigns.spec import build_family
from repro.cli import main
from repro.errors import SimulationError, StoreError
from repro.protocol.runner import determine_topology
from repro.store.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactLibrary,
    artifact_key,
    configure_artifact_library,
    dump_artifact,
    load_artifact,
)
from repro.topology.compile import (
    TABLE_NAMES,
    TopologyPatcher,
    clear_compiled_cache,
    compile_calls,
    compile_topology,
    compiled_topology,
)


@pytest.fixture(autouse=True)
def _isolated_library():
    """Every test starts and ends with no configured library and cold caches."""
    configure_artifact_library(None)
    clear_scenario_caches()
    yield
    configure_artifact_library(None)
    clear_scenario_caches()


@pytest.fixture
def library(tmp_path) -> ArtifactLibrary:
    return ArtifactLibrary(tmp_path / "artifacts")


def _graph(family: str = "de-bruijn", size: int = 8, seed: int = 0):
    return build_family(family, size, seed)


# ----------------------------------------------------------------------
# round trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_tables_byte_identical(self, library):
        graph = _graph()
        topo = compile_topology(graph)
        library.publish(graph, topo)
        loaded = library.load(graph)
        assert loaded is not None
        for name in TABLE_NAMES:
            assert list(getattr(loaded, name)) == list(getattr(topo, name)), name
        assert (loaded.num_nodes, loaded.delta, loaded.stride) == (
            topo.num_nodes,
            topo.delta,
            topo.stride,
        )

    def test_loaded_tables_are_zero_copy_views(self, library):
        graph = _graph()
        library.ensure(graph)
        loaded = library.load(graph)
        assert isinstance(loaded.wire_dst, memoryview)
        assert loaded.wire_dst.format == "q"
        assert not isinstance(loaded.out_ports, array)
        # provenance: the mmap is pinned on the object
        assert hasattr(loaded, "_mmap")

    @pytest.mark.parametrize("family,size", [("directed-ring", 5), ("spare-ring", 7)])
    def test_transcripts_identical_over_mmap(self, library, family, size):
        graph = _graph(family, size)
        reference = list(determine_topology(graph, backend="flat").transcript)
        library.ensure(graph)
        clear_scenario_caches()
        configure_artifact_library(library)
        before = compile_calls()
        result = determine_topology(graph, backend="flat")
        assert list(result.transcript) == reference
        assert compile_calls() == before  # served from mmap, never compiled
        assert result.matches(graph)

    def test_dynamic_run_over_mmap_matches(self, library):
        """Fork + patch over a read-only mapping equals the in-memory run."""
        from repro.dynamics.experiment import run_dynamic_gtd
        from repro.dynamics.engine import WireMutation
        from repro.topology.faults import pick_cut_victim
        from repro.util.rng import make_rng

        graph = _graph("bidirectional-ring", 6)
        baseline = determine_topology(graph, backend="flat")
        wire = pick_cut_victim(graph, make_rng(7))
        ops = [WireMutation(tick=baseline.ticks // 2, kind="cut", wire=wire)]
        budget = baseline.ticks * 3 + 1000
        reference = run_dynamic_gtd(graph, ops, max_ticks=budget, backend="flat")

        library.ensure(graph)
        clear_scenario_caches()
        configure_artifact_library(library)
        got = run_dynamic_gtd(graph, ops, max_ticks=budget, backend="flat")
        assert (got.outcome, got.ticks, got.lost_characters) == (
            reference.outcome,
            reference.ticks,
            reference.lost_characters,
        )

    def test_key_is_stable_and_spec_sensitive(self):
        a = artifact_key(_graph("de-bruijn", 8))
        assert a == artifact_key(_graph("de-bruijn", 8))
        assert a != artifact_key(_graph("de-bruijn", 16))
        assert a != artifact_key(_graph("directed-ring", 8))

    def test_compiled_topology_publishes_on_miss(self, library):
        graph = _graph("directed-ring", 9)
        configure_artifact_library(library)
        assert graph not in library
        compiled_topology(graph)
        assert graph in library
        # a fresh in-memory cache now loads instead of compiling
        clear_compiled_cache()
        before = compile_calls()
        topo = compiled_topology(graph)
        assert compile_calls() == before
        assert isinstance(topo.wire_dst, memoryview)


# ----------------------------------------------------------------------
# corruption, truncation, versioning
# ----------------------------------------------------------------------
class TestValidation:
    def _published(self, library) -> Path:
        graph = _graph("directed-ring", 6)
        key, _ = library.ensure(graph)
        return library.path_for(key)

    def test_truncated_header_rejected(self, library):
        path = self._published(library)
        blob = path.read_bytes()
        path.write_bytes(blob[:40])
        with pytest.raises(ArtifactError, match="truncated"):
            load_artifact(path)

    def test_truncated_payload_is_a_miss_not_a_crash(self, library):
        graph = _graph("directed-ring", 6)
        path = self._published(library)
        blob = path.read_bytes()
        path.write_bytes(blob[:-16])  # torn mid-payload
        assert library.load(graph) is None
        assert library.load_failures == 1
        # republish heals the library in place
        library.publish(graph, compile_topology(graph))
        assert library.load(graph) is not None

    def test_flipped_payload_byte_rejected_by_checksum(self, library):
        path = self._published(library)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="payload checksum"):
            load_artifact(path)

    def test_flipped_header_byte_rejected_by_checksum(self, library):
        path = self._published(library)
        blob = bytearray(path.read_bytes())
        blob[12] ^= 0xFF  # inside the dimension fields
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="header checksum"):
            load_artifact(path)

    def test_version_mismatch_rejected(self, library):
        # rewrite the header with a bumped format version and valid checksums:
        # the version check itself must reject it, not the crc
        path = self._published(library)
        blob = bytearray(path.read_bytes())
        struct.pack_into("<I", blob, 8, ARTIFACT_FORMAT_VERSION + 1)
        head_size = struct.calcsize("<8sII5Q13QII")
        struct.pack_into(
            "<I", blob, head_size - 4, zlib.crc32(bytes(blob[: head_size - 4]))
        )
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="format version"):
            load_artifact(path)

    def test_bad_magic_rejected(self, library):
        path = self._published(library)
        blob = bytearray(path.read_bytes())
        blob[:8] = b"NOTATOPO"
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="bad magic"):
            load_artifact(path)

    def test_empty_file_rejected(self, library):
        path = self._published(library)
        path.write_bytes(b"")
        with pytest.raises(ArtifactError, match="empty"):
            load_artifact(path)

    def test_foreign_directory_rejected(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text('{"format": "something-else"}')
        with pytest.raises(StoreError, match="not a"):
            ArtifactLibrary(tmp_path)

    def test_mutable_fork_refuses_to_serialize(self):
        topo = compile_topology(_graph("directed-ring", 5))
        with pytest.raises(ArtifactError, match="fork"):
            dump_artifact(topo.fork())


# ----------------------------------------------------------------------
# mutation safety over read-only mappings
# ----------------------------------------------------------------------
class TestCopyOnWrite:
    def test_fork_materializes_wire_tables_only(self, library):
        graph = _graph()
        library.ensure(graph)
        loaded = library.load(graph)
        fork = loaded.fork()
        assert isinstance(fork.wire_dst, array)
        assert isinstance(fork.wire_in_port, array)
        # the CSR census never materializes: same shared mapping
        assert fork.out_ports is loaded.out_ports
        assert fork.pristine is loaded

    def test_patcher_refuses_raw_mmap_topology(self, library):
        graph = _graph()
        library.ensure(graph)
        loaded = library.load(graph)
        with pytest.raises(SimulationError, match="read-only"):
            TopologyPatcher(loaded)

    def test_patch_and_reset_on_fork(self, library):
        graph = _graph()
        library.ensure(graph)
        loaded = library.load(graph)
        fork = loaded.fork()
        patcher = TopologyPatcher(fork)
        slot = patcher.slot(1, 1)
        original = (fork.wire_dst[slot], fork.wire_in_port[slot])
        patcher.cut(slot)
        assert fork.wire_dst[slot] != original[0]
        assert loaded.wire_dst[slot] == original[0]  # mapping untouched
        patcher.reset()
        assert (fork.wire_dst[slot], fork.wire_in_port[slot]) == original


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
def _publish_worker(args) -> str:
    root, family, size = args
    library = ArtifactLibrary(root)
    graph = build_family(family, size, 0)
    return library.publish(graph, compile_topology(graph))


class TestConcurrency:
    def test_concurrent_publishers_agree(self, tmp_path):
        """N processes racing to publish one wiring leave one valid artifact."""
        root = str(tmp_path / "racelib")
        ArtifactLibrary(root)  # settle the manifest before the race
        with multiprocessing.get_context("fork").Pool(4) as pool:
            keys = pool.map(_publish_worker, [(root, "de-bruijn", 8)] * 8)
        assert len(set(keys)) == 1
        library = ArtifactLibrary(root)
        assert len(library) == 1
        graph = _graph("de-bruijn", 8)
        loaded = library.load(graph)
        reference = compile_topology(graph)
        for name in TABLE_NAMES:
            assert list(getattr(loaded, name)) == list(getattr(reference, name))

    def test_publish_leaves_no_temp_files(self, library):
        library.ensure(_graph("directed-ring", 6))
        leftovers = [
            p
            for p in library.root.rglob("*")
            if p.is_file() and p.suffix not in (".rtopo", ".json")
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# gc and inspection
# ----------------------------------------------------------------------
class TestMaintenance:
    def test_gc_removes_invalid_keeps_valid(self, library):
        good = _graph("directed-ring", 6)
        bad = _graph("directed-ring", 7)
        library.ensure(good)
        bad_key, _ = library.ensure(bad)
        path = library.path_for(bad_key)
        path.write_bytes(path.read_bytes()[:-8])
        removed = library.gc()
        assert [e.key for e in removed] == [bad_key]
        assert good in library
        assert bad not in library or library.load(bad) is None

    def test_gc_byte_budget_evicts_oldest(self, library):
        graphs = [_graph("directed-ring", n) for n in (5, 6, 7)]
        keys = [library.ensure(g)[0] for g in graphs]
        sizes = {e.key: e.size for e in library.entries()}
        os.utime(library.path_for(keys[0]), (1, 1))  # make the first oldest
        budget = sum(sizes.values()) - 1  # must evict exactly one
        removed = library.gc(max_bytes=budget)
        assert [e.key for e in removed] == [keys[0]]
        assert len(library) == 2

    def test_stats_counts_bytes(self, library):
        assert library.stats()["artifacts"] == 0
        library.ensure(_graph("directed-ring", 6))
        stats = library.stats()
        assert stats["artifacts"] == 1
        assert stats["bytes"] > 0


# ----------------------------------------------------------------------
# campaign + CLI threading
# ----------------------------------------------------------------------
def _small_spec() -> CampaignSpec:
    return CampaignSpec(
        families=("directed-ring", "de-bruijn"),
        sizes=(6,),
        faults=("none", "cut:0.4"),
        seeds=(0, 1),
        backends=("flat",),
    )


class TestCampaignThreading:
    def test_run_campaign_with_artifacts_is_value_identical(self, tmp_path):
        spec = _small_spec()
        reference = run_campaign(spec)
        clear_scenario_caches()
        configure_artifact_library(None)
        got = run_campaign(spec, artifacts=tmp_path / "lib")
        assert got.results == reference.results
        assert len(ArtifactLibrary(tmp_path / "lib")) == 2  # one per wiring

    def test_parallel_campaign_with_artifacts(self, tmp_path):
        spec = _small_spec()
        reference = run_campaign(spec)
        clear_scenario_caches()
        configure_artifact_library(None)
        try:
            got = run_campaign(spec, jobs=2, artifacts=tmp_path / "lib")
        finally:
            shutdown_worker_pool()
        assert got.results == reference.results

    def test_cli_campaign_and_store_artifacts(self, tmp_path, capsys):
        lib_dir = str(tmp_path / "artlib")
        assert (
            main(
                [
                    "campaign",
                    "--families",
                    "directed-ring",
                    "--sizes",
                    "6",
                    "--faults",
                    "none",
                    "--artifacts",
                    lib_dir,
                ]
            )
            == 0
        )
        assert main(["store", lib_dir, "--artifacts"]) == 0
        out = capsys.readouterr().out
        assert "artifact library" in out
        assert "1 artifact(s)" in out
        assert main(["store", lib_dir, "--artifacts", "--verify"]) == 0
        # corrupt it: verify now fails, gc repairs, verify passes again
        entry = ArtifactLibrary(lib_dir).entries()[0]
        entry.path.write_bytes(entry.path.read_bytes()[:-8])
        assert main(["store", lib_dir, "--artifacts", "--verify"]) == 1
        assert main(["store", lib_dir, "--artifacts", "--gc"]) == 0
        assert main(["store", lib_dir, "--artifacts", "--verify"]) == 0

    def test_cli_guard_rails(self, tmp_path):
        assert main(["store", str(tmp_path / "nope"), "--artifacts"]) == 2
        # --verify now scans result stores too; a directory that is not a
        # store reports a missing manifest and fails the scan
        assert main(["store", str(tmp_path), "--verify"]) == 1
        assert main(["store", str(tmp_path), "--gc"]) == 2  # still artifacts-only


# ----------------------------------------------------------------------
# the cold-start guarantee
# ----------------------------------------------------------------------
_COLD_START_SCRIPT = """\
import sys
from repro.campaigns.spec import build_family
from repro.protocol.runner import determine_topology
from repro.topology.compile import compile_calls

graph = build_family("de-bruijn", 8, 0)
result = determine_topology(graph, backend="flat")
assert result.matches(graph)
assert len(list(result.transcript)) > 0  # the run really simulated hops
sys.stdout.write(str(compile_calls()))
"""


class TestColdStart:
    def test_fresh_process_with_warm_library_never_compiles(self, library):
        """The acceptance criterion: warm library, fresh process, 0 compiles.

        The subprocess knows the library only through ``REPRO_ARTIFACTS``
        (the implicit-resolution path campaign workers and CLIs use), runs
        the full protocol to completion, and reports how often the topology
        compiler actually ran.
        """
        library.ensure(_graph("de-bruijn", 8))
        env = dict(os.environ)
        env["REPRO_ARTIFACTS"] = str(library.root)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parent.parent / "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-c", _COLD_START_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == "0"

    def test_empty_library_compiles_exactly_once(self, library):
        env = dict(os.environ)
        env["REPRO_ARTIFACTS"] = str(library.root)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parent.parent / "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-c", _COLD_START_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == "1"
        # ... and it published: the wiring is now in the library
        assert _graph("de-bruijn", 8) in library
