"""Failure-path integration tests for the supervised campaign executor.

Every test drives a *real* fault through the deterministic injection hook
(:mod:`repro.campaigns.faultinject`): workers genuinely SIGKILL themselves,
genuinely hang, genuinely return corrupted payloads — and the supervisor
must complete the campaign with the poison cell quarantined and every
other cell value-identical to a fault-free run.

``REPRO_ROBUSTNESS_START_METHOD`` selects the pool start method (the CI
robustness job runs this module under both ``fork`` and ``spawn``); the
default is ``fork``, matching the executor's own default where available.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.campaigns import CampaignSpec, SupervisionPolicy, run_campaign
from repro.campaigns.executor import shutdown_worker_pool
from repro.campaigns.faultinject import ENV_VAR, active_injection, maybe_inject
from repro.errors import ReproError, ScenarioExecutionError
from repro.store import ResultStore, verify_result_store

START_METHOD = os.environ.get("REPRO_ROBUSTNESS_START_METHOD", "fork")

#: A small matrix with several cells per setup key, so chunks really do
#: carry innocent neighbours alongside the poison cell.
SPEC = CampaignSpec(
    families=("directed-ring",),
    sizes=(6,),
    faults=("none", "cut:0.3", "cut:0.5"),
    seeds=(0, 1),
)
#: The injection target: a label substring unique to one cell.
POISON = "cut:0.5/s1"

#: Policy knobs shared by the fast failure tests: near-zero backoff so a
#: rebuild costs milliseconds, frequent liveness polls, generous rebuild
#: budget (each attributed crash costs one rebuild on the way to
#: isolation and these tests crash several times on purpose).
FAST = dict(backoff_base=0.01, liveness_interval=0.05, max_pool_rebuilds=20)


def _run(jobs, **policy_kwargs):
    return run_campaign(
        SPEC,
        jobs=jobs,
        start_method=START_METHOD if jobs > 1 else None,
        policy=SupervisionPolicy(**policy_kwargs),
    )


@pytest.fixture(scope="module")
def clean_results():
    """The fault-free reference run every survivor is compared against."""
    return run_campaign(SPEC, jobs=1).results


@pytest.fixture
def inject(monkeypatch):
    """Arm a fault spec, recycling the pool so workers inherit the env."""

    def arm(spec: str) -> None:
        shutdown_worker_pool()
        monkeypatch.setenv(ENV_VAR, spec)

    yield arm
    # Drop any pool whose workers still carry the armed environment.
    shutdown_worker_pool()


def _assert_poison_quarantined(results, clean, kind):
    bad = [r for r in results if r.outcome == "error"]
    assert len(bad) == 1
    assert POISON in bad[0].scenario.label
    assert bad[0].error == kind
    assert len(bad[0].error_digest) == 16
    survivors = [
        (a, b)
        for a, b in zip(results, clean)
        if POISON not in a.scenario.label
    ]
    assert survivors and all(a == b for a, b in survivors)


# ----------------------------------------------------------------------
# the injection hook itself
# ----------------------------------------------------------------------
class TestFaultInjectionSpec:
    def test_disabled_values(self, monkeypatch):
        for value in ("", "0", "1"):
            monkeypatch.setenv(ENV_VAR, value)
            assert active_injection() is None
        monkeypatch.delenv(ENV_VAR)
        assert active_injection() is None

    def test_bad_specs_raise(self, monkeypatch):
        for bad in ("kind=bogus;match=x", "kind=crash", "justwords", "k=v;match=x"):
            monkeypatch.setenv(ENV_VAR, bad)
            with pytest.raises(ReproError):
                active_injection()

    def test_non_matching_cell_is_untouched(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "kind=error;match=no-such-label")
        maybe_inject(SPEC.scenarios()[0])  # must not raise

    def test_once_marker_fires_exactly_once(self, monkeypatch, tmp_path):
        marker = tmp_path / "armed"
        scenario = next(s for s in SPEC.scenarios() if POISON in s.label)
        monkeypatch.setenv(ENV_VAR, f"kind=error;match={POISON};once={marker}")
        with pytest.raises(RuntimeError):
            maybe_inject(scenario)
        assert marker.exists()
        maybe_inject(scenario)  # second touch: marker exists, no fault


# ----------------------------------------------------------------------
# per-cell error capture (serial and parallel agree)
# ----------------------------------------------------------------------
class TestErrorQuarantine:
    def test_serial_error_becomes_structured_result(self, inject, clean_results):
        inject(f"kind=error;match={POISON}")
        result = _run(jobs=1)
        _assert_poison_quarantined(result.results, clean_results, "RuntimeError")

    def test_parallel_equals_serial_including_quarantine(self, inject):
        inject(f"kind=error;match={POISON}")
        serial = _run(jobs=1)
        shutdown_worker_pool()  # fresh pool under the armed env
        parallel = _run(jobs=2, **FAST)
        # digest and kind are deterministic across processes, so the
        # quarantined record itself is value-identical too
        assert serial.results == parallel.results

    def test_strict_mode_restores_the_abort(self, inject):
        inject(f"kind=error;match={POISON}")
        with pytest.raises(ScenarioExecutionError) as excinfo:
            _run(jobs=1, on_error="raise")
        assert POISON in excinfo.value.label
        assert excinfo.value.kind == "RuntimeError"

    def test_error_record_round_trips_through_store(
        self, inject, tmp_path, clean_results
    ):
        inject(f"kind=error;match={POISON}")
        store_dir = tmp_path / "run"
        live = run_campaign(SPEC, jobs=1, store=store_dir)
        reloaded = ResultStore(store_dir)
        assert reloaded.results_for(SPEC) == live.results
        stats = reloaded.stats(SPEC)
        assert stats.error_kinds == (("RuntimeError", 1),)
        assert stats.to_json() == live.stats().to_json()
        report = verify_result_store(store_dir)
        assert report.ok and report.records == len(SPEC)


# ----------------------------------------------------------------------
# worker death, hangs, and lies (the parallel-only failure domain)
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_sigkilled_worker_is_isolated(self, inject, clean_results):
        inject(f"kind=crash;match={POISON}")
        result = _run(jobs=2, max_retries=0, **FAST)
        _assert_poison_quarantined(result.results, clean_results, "worker-crash")

    def test_hung_worker_trips_the_deadline(self, inject, clean_results):
        inject(f"kind=hang;match={POISON};secs=120")
        start = time.monotonic()
        result = _run(
            jobs=2, max_retries=0, cell_timeout=0.5, chunk_grace=0.3, **FAST
        )
        elapsed = time.monotonic() - start
        # the old executor blocked on imap_unordered forever here
        assert elapsed < 60.0
        _assert_poison_quarantined(result.results, clean_results, "deadline")

    def test_corrupt_payload_is_rejected_and_quarantined(
        self, inject, clean_results
    ):
        inject(f"kind=corrupt;match={POISON}")
        result = _run(jobs=2, max_retries=0, **FAST)
        _assert_poison_quarantined(
            result.results, clean_results, "corrupt-result"
        )

    def test_transient_crash_recovers_on_retry(
        self, inject, tmp_path, clean_results
    ):
        # `once=` makes the crash transient: the retry after the pool
        # rebuild succeeds, so no cell is quarantined at all
        marker = tmp_path / "fired"
        inject(f"kind=crash;match={POISON};once={marker}")
        result = _run(jobs=2, max_retries=1, **FAST)
        assert marker.exists()
        assert result.results == clean_results

    def test_degrades_to_serial_after_rebuild_budget(
        self, inject, tmp_path, clean_results
    ):
        # rebuild budget 0: the first breakage exhausts it and the rest of
        # the campaign runs guarded in-parent — where the marker left by
        # the worker's one crash keeps the injection quiet (max_retries=1
        # keeps the crashed chunk retryable instead of quarantining it
        # at the moment of attribution)
        marker = tmp_path / "fired"
        inject(f"kind=crash;match={POISON};once={marker}")
        result = _run(
            jobs=2, max_retries=1, max_pool_rebuilds=0,
            backoff_base=0.01, liveness_interval=0.05,
        )
        assert marker.exists()
        assert result.results == clean_results

    def test_shutdown_is_idempotent(self):
        shutdown_worker_pool()
        shutdown_worker_pool()  # no pool: must be a no-op, not an error


# ----------------------------------------------------------------------
# policy validation
# ----------------------------------------------------------------------
class TestSupervisionPolicy:
    def test_defaults_are_valid(self):
        SupervisionPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cell_timeout": -1.0},
            {"cell_timeout": 0},
            {"chunk_grace": -0.1},
            {"max_retries": -1},
            {"on_error": "explode"},
            {"backoff_base": -1.0},
            {"max_pool_rebuilds": -1},
            {"liveness_interval": 0.0},
        ],
    )
    def test_bad_values_raise(self, kwargs):
        with pytest.raises(ReproError):
            SupervisionPolicy(**kwargs)

    def test_deadline_arithmetic(self):
        policy = SupervisionPolicy(cell_timeout=2.0, chunk_grace=1.0)
        assert policy.chunk_deadline_seconds(3) == 7.0
        assert SupervisionPolicy(cell_timeout=None).chunk_deadline_seconds(3) is None
        assert SupervisionPolicy(backoff_base=0.5, backoff_cap=2.0).rebuild_backoff(
            10
        ) == 2.0


# ----------------------------------------------------------------------
# store write-through salvage across a parent kill
# ----------------------------------------------------------------------
_PARENT_KILL_SCRIPT = """\
from repro.campaigns import CampaignSpec, run_campaign

spec = CampaignSpec(
    families=("directed-ring",),
    sizes=(6,),
    faults=("none", "cut:0.3", "cut:0.5"),
    seeds=(0, 1),
)
# serial + store write-through; the injected crash SIGKILLs *this*
# process at the poison cell, after earlier chunks were fsynced
run_campaign(spec, jobs=1, store={store!r})
raise SystemExit("unreachable: the injection must have killed us")
"""


class TestParentKillSalvage:
    def test_completed_chunks_survive_and_resume(self, tmp_path, clean_results):
        store_dir = str(tmp_path / "run")
        env = dict(
            os.environ,
            PYTHONPATH="src",
            **{ENV_VAR: f"kind=crash;match={POISON}"},
        )
        proc = subprocess.run(
            [sys.executable, "-c", _PARENT_KILL_SCRIPT.format(store=store_dir)],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == -9, proc.stderr.decode()
        # write-through salvaged every chunk completed before the kill
        salvaged = ResultStore(store_dir)
        assert 0 < len(salvaged) < len(SPEC)
        assert verify_result_store(store_dir).ok
        # resuming against the same store (injection disarmed) completes
        # the matrix, and the merged result equals a fault-free run
        resumed = run_campaign(SPEC, jobs=1, store=store_dir)
        assert resumed.results == clean_results
