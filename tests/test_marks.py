"""Register bundles: growing marks, loop slots, BCA slot, dying relays."""

from repro.protocol.marks import BcaSlot, DyingRelay, GrowingMarks, LoopSlots


class TestGrowingMarks:
    def test_initially_clear(self):
        m = GrowingMarks()
        assert not m.visited
        assert m.parent_in is None

    def test_mark_and_clear(self):
        m = GrowingMarks()
        m.mark(3)
        assert m.visited and m.parent_in == 3
        m.clear()
        assert not m.visited and m.parent_in is None

    def test_origin_mark(self):
        m = GrowingMarks()
        m.mark(None)  # flood origin: visited but no parent
        assert m.visited and m.parent_in is None

    def test_snapshot(self):
        m = GrowingMarks()
        m.mark(2)
        assert m.snapshot() == {"visited": True, "parent_in": 2}


class TestLoopSlotsSingle:
    def test_slot1_routing(self):
        s = LoopSlots()
        s.set_slot(1, pred=2, succ=4)
        assert s.any_set()
        assert s.expected_pred() == 2
        assert s.route(2) == 4

    def test_slot2_routing(self):
        s = LoopSlots()
        s.set_slot(2, pred=1, succ=3)
        assert s.route(1) == 3

    def test_wrong_port_rejected(self):
        s = LoopSlots()
        s.set_slot(1, pred=2, succ=4)
        assert s.route(3) is None

    def test_unmark_forgets(self):
        s = LoopSlots()
        s.set_slot(1, pred=2, succ=4)
        assert s.unmark(2) == 4
        assert not s.any_set()

    def test_route_on_empty(self):
        assert LoopSlots().route(1) is None
        assert LoopSlots().unmark(1) is None


class TestLoopSlotsAlternation:
    """A processor appearing twice on the loop (paper §2.4)."""

    def make_double(self) -> LoopSlots:
        s = LoopSlots()
        s.set_slot(1, pred=1, succ=2)
        s.set_slot(2, pred=3, succ=4)
        return s

    def test_loop_token_alternates_1_2_1(self):
        s = self.make_double()
        assert s.route(1) == 2  # first pass: slot 1
        assert s.route(3) == 4  # second pass: slot 2
        assert s.route(1) == 2  # back to slot 1

    def test_out_of_order_rejected(self):
        s = self.make_double()
        assert s.route(3) is None  # slot 2 before slot 1: inappropriate

    def test_unmark_first_pass_keeps_slot2(self):
        s = self.make_double()
        assert s.unmark(1) == 2
        assert s.pred1 is None and s.pred2 == 3
        assert s.any_set()

    def test_unmark_both_passes_clears(self):
        s = self.make_double()
        s.unmark(1)
        assert s.unmark(3) == 4
        assert not s.any_set()

    def test_unmark_wrong_order_rejected(self):
        s = self.make_double()
        assert s.unmark(3) is None

    def test_full_token_round_then_unmark_round(self):
        # The protocol sends FORWARD/BACK around once, then UNMARK once.
        s = self.make_double()
        assert s.route(1) == 2 and s.route(3) == 4
        assert s.unmark(1) == 2 and s.unmark(3) == 4
        assert not s.any_set()

    def test_clear(self):
        s = self.make_double()
        s.clear()
        assert not s.any_set()
        assert s.expect == 1


class TestBcaSlot:
    def test_set_active_clear(self):
        b = BcaSlot()
        assert not b.active()
        b.set(pred=1, succ=2)
        assert b.active()
        b.is_target = True
        b.clear()
        assert not b.active() and not b.is_target

    def test_snapshot(self):
        b = BcaSlot()
        b.set(2, 3)
        assert b.snapshot() == {"pred": 2, "succ": 3, "is_target": False}


class TestDyingRelay:
    def test_lifecycle(self):
        r = DyingRelay()
        assert not r.active
        r.start(pred=1, succ=2)
        assert r.active and r.promote_next
        r.promote_next = False
        r.finish()
        assert not r.active and r.pred is None

    def test_snapshot(self):
        r = DyingRelay()
        r.start(1, 2)
        snap = r.snapshot()
        assert snap["active"] and snap["promote_next"]
