"""The compile-time character kernel (:class:`repro.sim.characters.CharKernel`).

Exhaustive parity between the dense code-space tables and the object-path
character functions they replace: every code of the Lemma 5.2 census
(plus the filled-tail closure), every in-port of the fill table, every
family column of the convert table, every predicate bit — checked against
``is_snake``/``is_growing``/``is_dying``/``snake_family``/``snake_role``/
``fill_in_port``/``convert``/``speed_of`` directly.  Also pins the
externally visible automaton phase labels (now IntEnum-backed) and the
format-v1 → v2 artifact-library migration story.
"""

from __future__ import annotations

import hashlib
import struct
import sys
import zlib
from array import array

import pytest

from repro.campaigns.spec import build_family
from repro.protocol.automaton import ProtocolProcessor, _BcaPhase, _RcaPhase, _RootPhase
from repro.sim.characters import (
    DYING_FAMILIES,
    GROWING_FAMILIES,
    KFLAG_BODY,
    KFLAG_DYING,
    KFLAG_FILLS,
    KFLAG_GROWING,
    KFLAG_HEAD,
    KFLAG_SCOPE_BCA,
    KFLAG_SCOPE_RCA,
    KFLAG_SNAKE,
    KFLAG_SPEED3,
    KFLAG_TAIL,
    KPRIO_MASK,
    KPRIO_SHIFT,
    SCOPE_BCA,
    SCOPE_RCA,
    SNAKE_FAMILIES,
    STAR,
    Char,
    alphabet_size,
    convert,
    enumerate_alphabet,
    fill_in_port,
    is_dying,
    is_growing,
    is_snake,
    kernel_alphabet,
    kernel_for,
    kernel_size,
    snake_family,
    snake_role,
    speed_of,
)
from repro.sim.scheduler import KIND_PRIORITY
from repro.store.artifacts import (
    ARTIFACT_MAGIC,
    ArtifactLibrary,
    artifact_key,
    configure_artifact_library,
)
from repro.topology.compile import (
    COMPILER_VERSION,
    TABLE_NAMES,
    clear_compiled_cache,
    compile_topology,
)

DELTAS = (2, 3)


# ----------------------------------------------------------------------
# satellite: external phase labels survive the IntEnum migration
# ----------------------------------------------------------------------
class TestPhaseLabels:
    """The string labels ``state_snapshot`` reports are an external API."""

    def test_rca_phase_labels_pinned(self):
        assert {p.name.lower(): int(p) for p in _RcaPhase} == {
            "idle": 0,
            "wait_og": 1,
            "convert": 2,
            "wait_odt": 3,
            "wait_loop": 4,
            "wait_unmark": 5,
        }

    def test_root_phase_labels_pinned(self):
        assert {p.name.lower(): int(p) for p in _RootPhase} == {
            "open": 0,
            "ig_stream": 1,
            "await_id": 2,
            "id_stream": 3,
            "loop": 4,
        }

    def test_bca_phase_labels_pinned(self):
        assert {p.name.lower(): int(p) for p in _BcaPhase} == {
            "idle": 0,
            "search": 1,
            "convert": 2,
            "wait_tail": 3,
            "wait_done": 4,
            "wait_unmark": 5,
        }

    def test_quiescent_members_are_falsy(self):
        # the hot loop relies on plain truthiness for the idle checks
        assert not _RcaPhase.IDLE and not _RootPhase.OPEN and not _BcaPhase.IDLE

    def test_snapshot_reports_lowercase_names(self):
        proc = ProtocolProcessor()
        snap = proc.state_snapshot()
        assert snap["rca"]["phase"] == "idle"
        assert snap["root"]["phase"] == "open"
        assert snap["bca"]["phase"] == "idle"


# ----------------------------------------------------------------------
# satellite: exhaustive kernel ↔ object-path parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("delta", DELTAS)
class TestKernelParity:
    def test_census_prefix_and_closure(self, delta):
        kernel = kernel_for(delta)
        census = enumerate_alphabet(delta)
        assert kernel.n_codes == kernel_size(delta)
        assert kernel.n_codes == len(kernel.chars)
        # census codes come first, unchanged, so interner codes line up
        assert list(kernel.chars[: len(census)]) == census
        # the closure adds exactly the filled growing tails
        extra = kernel.chars[len(census):]
        assert len(extra) == 3 * delta
        for char in extra:
            assert snake_role(char) == "T"
            assert snake_family(char) in GROWING_FAMILIES
            assert char.in_port != STAR
        # every table entry is a valid code (the closure property)
        for table in (kernel.char_fill, kernel.char_convert):
            for value in table:
                assert -1 <= value < kernel.n_codes
        assert len(kernel.char_fill) == kernel.n_codes * (delta + 1)
        assert len(kernel.char_convert) == kernel.n_codes * 6

    def test_predicate_flags_match_object_predicates(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            flags = kernel.char_flags[code]
            assert bool(flags & KFLAG_SNAKE) == is_snake(char), char
            assert bool(flags & KFLAG_GROWING) == is_growing(char), char
            assert bool(flags & KFLAG_DYING) == is_dying(char), char
            assert bool(flags & KFLAG_HEAD) == (
                is_snake(char) and snake_role(char) == "H"
            ), char
            assert bool(flags & KFLAG_BODY) == (
                is_snake(char) and snake_role(char) == "B"
            ), char
            assert bool(flags & KFLAG_TAIL) == (
                is_snake(char) and snake_role(char) == "T"
            ), char
            assert bool(flags & KFLAG_SPEED3) == (speed_of(char) == 3), char
            assert bool(flags & KFLAG_SCOPE_RCA) == (
                speed_of(char) == 3 and char.payload == SCOPE_RCA
            ), char
            assert bool(flags & KFLAG_SCOPE_BCA) == (
                speed_of(char) == 3 and char.payload == SCOPE_BCA
            ), char

    def test_priority_bits_match_scheduler(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            prio = (kernel.char_flags[code] >> KPRIO_SHIFT) & KPRIO_MASK
            assert prio == KIND_PRIORITY[char.kind], char
            assert kernel.prio_list[code] == prio

    def test_family_role_and_port_tables(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            if is_snake(char):
                assert (
                    SNAKE_FAMILIES[kernel.char_family[code]]
                    == snake_family(char)
                ), char
                assert (
                    "HBT"[kernel.char_role[code]] == snake_role(char)
                ), char
            else:
                assert kernel.char_family[code] == -1, char
                assert kernel.char_role[code] == -1, char
            assert kernel.char_out_port[code] == char.out_port
            assert kernel.char_in_port[code] == char.in_port

    def test_fill_table_every_code_every_in_port(self, delta):
        """``(code, in_port) -> code`` fill-in vs §2.3.2 engine semantics.

        The engine fills growing snakes and DFS tokens whose second entry
        is ``*``; everything else — including ``*``-ported *dying* codes,
        which both backends deliver verbatim — maps to itself.
        """
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            engine_fills = char.in_port == STAR and (
                is_growing(char) or char.kind == "DFS"
            )
            assert bool(kernel.char_flags[code] & KFLAG_FILLS) == engine_fills
            row = kernel.fill_rows[code]
            assert list(row) == [
                kernel.char_fill[code * (delta + 1) + j]
                for j in range(delta + 1)
            ]
            assert row[STAR] == code  # row 0 is always the identity
            for j in range(1, delta + 1):
                if engine_fills:
                    expected = kernel.codes[fill_in_port(char, j)]
                else:
                    expected = code
                assert row[j] == expected, (char, j)

    def test_convert_table_every_code_every_family(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            for fi, family in enumerate(SNAKE_FAMILIES):
                got = kernel.char_convert[code * 6 + fi]
                if not is_snake(char):
                    assert got == -1, (char, family)
                    continue
                target = convert(char, family)
                expected = kernel.codes.get(target, -1)
                assert got == expected, (char, family)
                if got >= 0:
                    assert kernel.chars[got] == target

    def test_convert_covers_the_protocol_rebrandings(self, delta):
        """The wirings the automaton actually uses never fall to -1."""
        kernel = kernel_for(delta)
        pairs = [("IG", "OG"), ("OG", "ID"), ("ID", "OD"), ("BG", "BD")]
        for src, dst in pairs:
            fi = SNAKE_FAMILIES.index(dst)
            for code, char in enumerate(kernel.chars):
                if is_snake(char) and snake_family(char) == src:
                    if snake_role(char) == "T" and (
                        char.payload is not None or char.in_port != STAR
                    ):
                        # payloaded and engine-filled tails convert to
                        # characters outside the code space; those
                        # conversions run on the object path, so -1 is
                        # the correct entry
                        continue
                    assert kernel.char_convert[code * 6 + fi] >= 0, (char, dst)

    def test_handler_plan_classification(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            slot = kernel.handler_plan[code]
            if is_snake(char):
                assert slot == SNAKE_FAMILIES.index(snake_family(char))
            elif char.kind in ("FWD", "BACK"):
                assert slot == 6
            elif char.kind == "KILL":
                scope = char.payload or SCOPE_RCA
                assert slot == (7 if scope == SCOPE_RCA else 8)
            elif char.kind == "UNMARK" and char.payload == SCOPE_RCA:
                assert slot == 9
            else:
                assert slot == -1, char

    def test_as_head_and_body_codes(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            promoted = kernel.as_head_list[code]
            if is_snake(char) and snake_role(char) == "B":
                head = Char(
                    snake_family(char) + "H",
                    char.out_port,
                    char.in_port,
                    char.payload,
                )
                assert promoted == kernel.codes.get(head, -1)
            else:
                assert promoted == -1
        for fi, family in enumerate(SNAKE_FAMILIES):
            row = kernel.body_codes[fi]
            assert row[0] == -1
            for port in range(1, delta + 1):
                body = kernel.chars[row[port]]
                assert snake_family(body) == family
                assert snake_role(body) == "B"
                assert body.out_port == port
                assert body.in_port == STAR

    def test_tables_roundtrip_to_kernel_alphabet(self, delta):
        # the serialized tuple is exactly the seven artifact tables
        kernel = kernel_for(delta)
        tables = kernel.tables()
        assert [len(t) for t in tables] == [
            kernel.n_codes,
            kernel.n_codes,
            kernel.n_codes,
            kernel.n_codes,
            kernel.n_codes,
            kernel.n_codes * (delta + 1),
            kernel.n_codes * 6,
        ]
        assert kernel_alphabet(delta) == list(kernel.chars)
        assert alphabet_size(delta) - 1 + 3 * delta == kernel.n_codes


# ----------------------------------------------------------------------
# satellite: v1 → v2 artifact-library migration
# ----------------------------------------------------------------------
_V1_HEADER = struct.Struct("<8sII4Q6QII")


def _le_bytes(table) -> bytes:
    data = array("q", table)
    if sys.byteorder != "little":  # pragma: no cover
        data = array("q", data)
        data.byteswap()
    return data.tobytes()


def _v1_key(graph) -> str:
    """The content address a format-v1 library computed for ``graph``."""
    h = hashlib.sha256()
    h.update(ARTIFACT_MAGIC)
    h.update(_le_bytes([1, COMPILER_VERSION, graph.num_nodes, graph.delta]))
    wires = array("q")
    for wire in sorted(graph.wires()):
        wires.extend(wire)
    h.update(_le_bytes(wires))
    return h.hexdigest()


def _dump_v1(topo) -> bytes:
    """Serialize ``topo`` in the retired six-table v1 layout."""
    names = TABLE_NAMES[:6]
    payload = b"".join(_le_bytes(getattr(topo, name)) for name in names)
    census = alphabet_size(topo.delta) - 1
    head = _V1_HEADER.pack(
        ARTIFACT_MAGIC,
        1,
        COMPILER_VERSION,
        topo.num_nodes,
        topo.delta,
        topo.stride,
        census,
        *(len(getattr(topo, name)) for name in names),
        zlib.crc32(payload),
        0,
    )
    head = head[:-4] + struct.pack("<I", zlib.crc32(head[:-4]))
    return head + payload


class TestV1Migration:
    @pytest.fixture(autouse=True)
    def _cold(self):
        configure_artifact_library(None)
        clear_compiled_cache()
        yield
        configure_artifact_library(None)
        clear_compiled_cache()

    def _library_with_v1(self, tmp_path):
        library = ArtifactLibrary(tmp_path / "artifacts")
        graph = build_family("de-bruijn", 8, 0)
        topo = compile_topology(graph)
        v1_path = library.path_for(_v1_key(graph))
        v1_path.parent.mkdir(parents=True, exist_ok=True)
        v1_path.write_bytes(_dump_v1(topo))
        return library, graph, v1_path

    def test_v1_artifact_is_a_clean_load_miss(self, tmp_path):
        library, graph, v1_path = self._library_with_v1(tmp_path)
        # the v2 key differs (format version joins the hash), so the v1
        # file is simply not found — a miss, not a validation failure
        assert artifact_key(graph) != _v1_key(graph)
        assert library.load(graph) is None
        assert library.load_failures == 0

    def test_v1_bytes_at_v2_key_fail_with_version_not_crc(self, tmp_path):
        # a tampered/copied file in v1 layout under the v2 key must
        # report the version mismatch (checked before the layout-dependent
        # header crc), and count as a miss
        library, graph, v1_path = self._library_with_v1(tmp_path)
        v2_path = library.path_for(artifact_key(graph))
        v2_path.parent.mkdir(parents=True, exist_ok=True)
        v2_path.write_bytes(v1_path.read_bytes())
        assert library.load(graph) is None
        assert library.load_failures == 1
        bad = [e for e in library.entries(validate=True) if not e.ok]
        assert any("format version 1" in e.error for e in bad)

    def test_republish_heals_the_library(self, tmp_path):
        library, graph, _ = self._library_with_v1(tmp_path)
        key, fresh = library.ensure(graph)
        assert fresh == 1
        assert key == artifact_key(graph)
        topo = library.load(graph)
        assert topo is not None
        # the healed artifact carries the kernel tables (format v2)
        kernel = kernel_for(graph.delta)
        assert list(topo.char_flags) == list(kernel.char_flags)

    def test_cli_verify_reports_the_v1_file(self, tmp_path, capsys):
        from repro.cli import main

        library, graph, _ = self._library_with_v1(tmp_path)
        library.ensure(graph)
        code = main(["store", str(library.root), "--artifacts", "--verify"])
        out = capsys.readouterr().out
        assert code == 1
        assert "INVALID" in out
        assert "format version 1" in out
        assert "verify: 1 invalid artifact(s)" in out

    def test_gc_reclaims_the_v1_file_keeps_v2(self, tmp_path):
        library, graph, v1_path = self._library_with_v1(tmp_path)
        library.ensure(graph)
        removed = library.gc()
        assert [e.path for e in removed] == [v1_path]
        assert not v1_path.exists()
        assert library.load(graph) is not None
