"""The compile-time character kernel (:class:`repro.sim.characters.CharKernel`).

Exhaustive parity between the dense code-space tables and the object-path
character functions they replace: every code of the Lemma 5.2 census
(plus the filled-tail closure), every in-port of the fill table, every
family column of the convert table, every predicate bit — checked against
``is_snake``/``is_growing``/``is_dying``/``snake_family``/``snake_role``/
``fill_in_port``/``convert``/``speed_of`` directly.  Also pins the
externally visible automaton phase labels (now IntEnum-backed) and the
format-v1 → v2 artifact-library migration story.
"""

from __future__ import annotations

import hashlib
import struct
import sys
import zlib
from array import array

import pytest

from repro.campaigns.spec import build_family
from repro.protocol.automaton import ProtocolProcessor, _BcaPhase, _RcaPhase, _RootPhase
from repro.sim.engine import NodeContext
from repro.sim.characters import (
    DYING_FAMILIES,
    GROWING_FAMILIES,
    KFLAG_BODY,
    KFLAG_DYING,
    KFLAG_FILLS,
    KFLAG_GROWING,
    KFLAG_HEAD,
    KFLAG_SCOPE_BCA,
    KFLAG_SCOPE_RCA,
    KFLAG_SNAKE,
    KFLAG_SPEED3,
    KFLAG_TAIL,
    KPRIO_MASK,
    KPRIO_SHIFT,
    SCOPE_BCA,
    SCOPE_RCA,
    SNAKE_FAMILIES,
    STAR,
    TRANS_CODE_SHIFT,
    TRANS_OP_BCAST,
    TRANS_OP_MARK,
    TRANS_OP_MASK,
    TRANS_OP_SEND,
    TRANS_OP_TAIL,
    TRANS_PHASE_MASK,
    TRANS_PHASE_SHIFT,
    TRANS_PORT_MASK,
    TRANS_PORT_SHIFT,
    Char,
    alphabet_size,
    convert,
    dying_phase,
    enumerate_alphabet,
    fill_in_port,
    growing_esc_phase,
    is_dying,
    is_growing,
    is_snake,
    kernel_alphabet,
    kernel_for,
    kernel_size,
    n_phases,
    snake_family,
    snake_role,
    speed_of,
)
from repro.sim.scheduler import KIND_PRIORITY
from repro.store.artifacts import (
    ARTIFACT_MAGIC,
    ArtifactLibrary,
    artifact_key,
    configure_artifact_library,
)
from repro.topology.compile import (
    COMPILER_VERSION,
    TABLE_NAMES,
    clear_compiled_cache,
    compile_calls,
    compile_topology,
)

DELTAS = (2, 3)


# ----------------------------------------------------------------------
# satellite: external phase labels survive the IntEnum migration
# ----------------------------------------------------------------------
class TestPhaseLabels:
    """The string labels ``state_snapshot`` reports are an external API."""

    def test_rca_phase_labels_pinned(self):
        assert {p.name.lower(): int(p) for p in _RcaPhase} == {
            "idle": 0,
            "wait_og": 1,
            "convert": 2,
            "wait_odt": 3,
            "wait_loop": 4,
            "wait_unmark": 5,
        }

    def test_root_phase_labels_pinned(self):
        assert {p.name.lower(): int(p) for p in _RootPhase} == {
            "open": 0,
            "ig_stream": 1,
            "await_id": 2,
            "id_stream": 3,
            "loop": 4,
        }

    def test_bca_phase_labels_pinned(self):
        assert {p.name.lower(): int(p) for p in _BcaPhase} == {
            "idle": 0,
            "search": 1,
            "convert": 2,
            "wait_tail": 3,
            "wait_done": 4,
            "wait_unmark": 5,
        }

    def test_quiescent_members_are_falsy(self):
        # the hot loop relies on plain truthiness for the idle checks
        assert not _RcaPhase.IDLE and not _RootPhase.OPEN and not _BcaPhase.IDLE

    def test_snapshot_reports_lowercase_names(self):
        proc = ProtocolProcessor()
        snap = proc.state_snapshot()
        assert snap["rca"]["phase"] == "idle"
        assert snap["root"]["phase"] == "open"
        assert snap["bca"]["phase"] == "idle"


# ----------------------------------------------------------------------
# satellite: exhaustive kernel ↔ object-path parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("delta", DELTAS)
class TestKernelParity:
    def test_census_prefix_and_closure(self, delta):
        kernel = kernel_for(delta)
        census = enumerate_alphabet(delta)
        assert kernel.n_codes == kernel_size(delta)
        assert kernel.n_codes == len(kernel.chars)
        # census codes come first, unchanged, so interner codes line up
        assert list(kernel.chars[: len(census)]) == census
        # the closure adds exactly the filled growing tails
        extra = kernel.chars[len(census):]
        assert len(extra) == 3 * delta
        for char in extra:
            assert snake_role(char) == "T"
            assert snake_family(char) in GROWING_FAMILIES
            assert char.in_port != STAR
        # every table entry is a valid code (the closure property)
        for table in (kernel.char_fill, kernel.char_convert):
            for value in table:
                assert -1 <= value < kernel.n_codes
        assert len(kernel.char_fill) == kernel.n_codes * (delta + 1)
        assert len(kernel.char_convert) == kernel.n_codes * 6

    def test_predicate_flags_match_object_predicates(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            flags = kernel.char_flags[code]
            assert bool(flags & KFLAG_SNAKE) == is_snake(char), char
            assert bool(flags & KFLAG_GROWING) == is_growing(char), char
            assert bool(flags & KFLAG_DYING) == is_dying(char), char
            assert bool(flags & KFLAG_HEAD) == (
                is_snake(char) and snake_role(char) == "H"
            ), char
            assert bool(flags & KFLAG_BODY) == (
                is_snake(char) and snake_role(char) == "B"
            ), char
            assert bool(flags & KFLAG_TAIL) == (
                is_snake(char) and snake_role(char) == "T"
            ), char
            assert bool(flags & KFLAG_SPEED3) == (speed_of(char) == 3), char
            assert bool(flags & KFLAG_SCOPE_RCA) == (
                speed_of(char) == 3 and char.payload == SCOPE_RCA
            ), char
            assert bool(flags & KFLAG_SCOPE_BCA) == (
                speed_of(char) == 3 and char.payload == SCOPE_BCA
            ), char

    def test_priority_bits_match_scheduler(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            prio = (kernel.char_flags[code] >> KPRIO_SHIFT) & KPRIO_MASK
            assert prio == KIND_PRIORITY[char.kind], char
            assert kernel.prio_list[code] == prio

    def test_family_role_and_port_tables(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            if is_snake(char):
                assert (
                    SNAKE_FAMILIES[kernel.char_family[code]]
                    == snake_family(char)
                ), char
                assert (
                    "HBT"[kernel.char_role[code]] == snake_role(char)
                ), char
            else:
                assert kernel.char_family[code] == -1, char
                assert kernel.char_role[code] == -1, char
            assert kernel.char_out_port[code] == char.out_port
            assert kernel.char_in_port[code] == char.in_port

    def test_fill_table_every_code_every_in_port(self, delta):
        """``(code, in_port) -> code`` fill-in vs §2.3.2 engine semantics.

        The engine fills growing snakes and DFS tokens whose second entry
        is ``*``; everything else — including ``*``-ported *dying* codes,
        which both backends deliver verbatim — maps to itself.
        """
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            engine_fills = char.in_port == STAR and (
                is_growing(char) or char.kind == "DFS"
            )
            assert bool(kernel.char_flags[code] & KFLAG_FILLS) == engine_fills
            row = kernel.fill_rows[code]
            assert list(row) == [
                kernel.char_fill[code * (delta + 1) + j]
                for j in range(delta + 1)
            ]
            assert row[STAR] == code  # row 0 is always the identity
            for j in range(1, delta + 1):
                if engine_fills:
                    expected = kernel.codes[fill_in_port(char, j)]
                else:
                    expected = code
                assert row[j] == expected, (char, j)

    def test_convert_table_every_code_every_family(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            for fi, family in enumerate(SNAKE_FAMILIES):
                got = kernel.char_convert[code * 6 + fi]
                if not is_snake(char):
                    assert got == -1, (char, family)
                    continue
                target = convert(char, family)
                expected = kernel.codes.get(target, -1)
                assert got == expected, (char, family)
                if got >= 0:
                    assert kernel.chars[got] == target

    def test_convert_covers_the_protocol_rebrandings(self, delta):
        """The wirings the automaton actually uses never fall to -1."""
        kernel = kernel_for(delta)
        pairs = [("IG", "OG"), ("OG", "ID"), ("ID", "OD"), ("BG", "BD")]
        for src, dst in pairs:
            fi = SNAKE_FAMILIES.index(dst)
            for code, char in enumerate(kernel.chars):
                if is_snake(char) and snake_family(char) == src:
                    if snake_role(char) == "T" and (
                        char.payload is not None or char.in_port != STAR
                    ):
                        # payloaded and engine-filled tails convert to
                        # characters outside the code space; those
                        # conversions run on the object path, so -1 is
                        # the correct entry
                        continue
                    assert kernel.char_convert[code * 6 + fi] >= 0, (char, dst)

    def test_handler_plan_classification(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            slot = kernel.handler_plan[code]
            if is_snake(char):
                assert slot == SNAKE_FAMILIES.index(snake_family(char))
            elif char.kind in ("FWD", "BACK"):
                assert slot == 6
            elif char.kind == "KILL":
                scope = char.payload or SCOPE_RCA
                assert slot == (7 if scope == SCOPE_RCA else 8)
            elif char.kind == "UNMARK" and char.payload == SCOPE_RCA:
                assert slot == 9
            else:
                assert slot == -1, char

    def test_as_head_and_body_codes(self, delta):
        kernel = kernel_for(delta)
        for code, char in enumerate(kernel.chars):
            promoted = kernel.as_head_list[code]
            if is_snake(char) and snake_role(char) == "B":
                head = Char(
                    snake_family(char) + "H",
                    char.out_port,
                    char.in_port,
                    char.payload,
                )
                assert promoted == kernel.codes.get(head, -1)
            else:
                assert promoted == -1
        for fi, family in enumerate(SNAKE_FAMILIES):
            row = kernel.body_codes[fi]
            assert row[0] == -1
            for port in range(1, delta + 1):
                body = kernel.chars[row[port]]
                assert snake_family(body) == family
                assert snake_role(body) == "B"
                assert body.out_port == port
                assert body.in_port == STAR

    def test_tables_roundtrip_to_kernel_alphabet(self, delta):
        # the serialized tuple is exactly the eight artifact tables
        kernel = kernel_for(delta)
        tables = kernel.tables()
        assert [len(t) for t in tables] == [
            kernel.n_codes,
            kernel.n_codes,
            kernel.n_codes,
            kernel.n_codes,
            kernel.n_codes,
            kernel.n_codes * (delta + 1),
            kernel.n_codes * 6,
            kernel.n_codes * (delta + 1) * n_phases(delta),
        ]
        assert kernel_alphabet(delta) == list(kernel.chars)
        assert alphabet_size(delta) - 1 + 3 * delta == kernel.n_codes


# ----------------------------------------------------------------------
# tentpole: transition-table rows vs the object-path automaton
# ----------------------------------------------------------------------
#: code -> (growing-marks attr, dying-relay attr) per family bank index
_BANK_MARKS = {0: "_marks_ig", 1: "_marks_og", 4: "_marks_bg"}
_BANK_RELAY = {2: "_relay_id", 3: "_relay_od", 5: "_relay_bd"}

_TICK = 100


def _fresh_processor(delta: int) -> ProtocolProcessor:
    """A non-root processor on a fully-wired node, mid-simulation."""
    ports = tuple(range(1, delta + 1))
    proc = ProtocolProcessor()
    proc.attach(NodeContext(1, False, ports, ports, lambda label, data: None))
    proc.begin_tick(_TICK)
    return proc


def _load_phase(proc: ProtocolProcessor, bank: int, phase: int, delta: int) -> None:
    """Put ``proc``'s bank registers into the state ``phase`` encodes."""
    if bank in _BANK_MARKS:
        marks = getattr(proc, _BANK_MARKS[bank])
        if phase == 0:
            return  # unvisited: the power-on state
        assert phase <= delta + 1, "only register-backed phases are drivable"
        marks.mark(None if phase == 1 else phase - 1)
        return
    relay = getattr(proc, _BANK_RELAY[bank])
    if phase == 0:
        return  # inactive relay: the power-on state
    pair, promote = divmod(phase - 1, 2)
    pred, succ = divmod(pair, delta)
    relay.start(pred + 1, succ + 1)
    relay.promote_next = bool(promote)


def _read_phase(proc: ProtocolProcessor, bank: int, delta: int) -> int:
    """The phase a flat engine would re-derive from ``proc``'s registers.

    The same mapping as ``FlatEngine._tw_sync`` — recomputed here from
    first principles so the test does not trust the code under test.
    """
    if bank in _BANK_MARKS:
        if bank == 1 and proc.rca_phase:
            return growing_esc_phase(delta)
        if bank == 4 and proc.bca_phase:
            return growing_esc_phase(delta)
        marks = getattr(proc, _BANK_MARKS[bank])
        if not marks.visited:
            return 0
        return 1 + (marks.parent_in or 0)
    relay = getattr(proc, _BANK_RELAY[bank])
    if not (relay.active and relay.pred is not None and relay.succ is not None):
        return 0
    return dying_phase(delta, relay.pred, relay.succ, int(relay.promote_next))


@pytest.mark.parametrize("delta", DELTAS)
class TestTransitionTableParity:
    """Every non-escape transition row, checked against the object path.

    For each ``(code, in_port, phase)`` the row is *executed twice*: once
    by decoding it the way the flat-core stepper does, once by loading a
    fresh :class:`ProtocolProcessor`'s registers with the state the phase
    encodes and delivering the character through the object-path
    ``handle``.  Emissions (ports, characters, departure ticks) and the
    resulting register state must agree exactly.  Escape rows are pinned
    to carry the fused fill-in, and the escape lane's coverage — every
    configuration the tables do not lower — is asserted structurally.
    """

    def test_every_nonescape_row_matches_the_object_path(self, delta):
        kernel = kernel_for(delta)
        driven = {TRANS_OP_BCAST: 0, TRANS_OP_MARK: 0, TRANS_OP_TAIL: 0,
                  TRANS_OP_SEND: 0, 0: 0}
        out_ports = tuple(range(1, delta + 1))
        for code in range(kernel.n_codes):
            bank = kernel.bank_list[code]
            for in_port in range(1, delta + 1):
                fc = kernel.fill_rows[code][in_port]
                for phase, row in enumerate(kernel.trans_rows[code][in_port]):
                    if row < 0:
                        # escape rows carry the fused fill-in so the cold
                        # path never consults the fill table again
                        assert -row - 1 == fc, (code, in_port, phase)
                        continue
                    proc = _fresh_processor(delta)
                    _load_phase(proc, bank, phase, delta)
                    assert _read_phase(proc, bank, delta) == phase
                    proc.handle(in_port, kernel.chars[code])
                    outbox = sorted(
                        (e.due_tick, e.out_port, e.char) for e in proc._outbox
                    )
                    if row == 0:
                        # DROP: the object path emitted and changed nothing
                        assert outbox == [], (code, in_port, phase)
                        assert _read_phase(proc, bank, delta) == phase
                        driven[0] += 1
                        continue
                    op = row & TRANS_OP_MASK
                    next_phase = (row >> TRANS_PHASE_SHIFT) & TRANS_PHASE_MASK
                    emit_code = row >> TRANS_CODE_SHIFT
                    assert emit_code == fc, (code, in_port, phase)
                    assert _read_phase(proc, bank, delta) == next_phase
                    emit = kernel.chars[emit_code]
                    # outbox due ticks are arrival - 1 (the wire's tick)
                    if op == TRANS_OP_SEND:
                        port = (row >> TRANS_PORT_SHIFT) & TRANS_PORT_MASK
                        expected = [(_TICK + 2, port, emit)]
                    elif op == TRANS_OP_TAIL:
                        expected = sorted(
                            [
                                (_TICK + 2, p, kernel.chars[kernel.body_codes[bank][p]])
                                for p in out_ports
                            ]
                            + [(_TICK + 3, p, emit) for p in out_ports]
                        )
                    else:  # MARK and BCAST both flood the filled character
                        expected = [(_TICK + 2, p, emit) for p in out_ports]
                    assert outbox == expected, (code, in_port, phase)
                    driven[op] += 1
        # the lowering is not vacuous: every op fired, for every delta
        assert min(driven.values()) > 0, driven

    def test_escape_lane_coverage(self, delta):
        """Exactly the configurations the stepper cannot own escape."""
        kernel = kernel_for(delta)
        P = n_phases(delta)
        esc = growing_esc_phase(delta)
        escapes = 0
        for code in range(kernel.n_codes):
            fam = kernel.char_family[code]
            for in_port in range(delta + 1):
                rows = kernel.trans_rows[code][in_port]
                assert len(rows) == P
                escapes += sum(1 for r in rows if r < 0)
                if fam < 0:
                    # tokens (KILL, UNMARK, DFS, FWD/BACK, BDONE) always
                    # take the cold path: purges, loop slots and subclass
                    # hooks live outside the phase encoding
                    assert all(r < 0 for r in rows), code
                    continue
                if in_port == STAR:
                    # in-port 0 never occurs as a delivery port
                    assert all(r < 0 for r in rows), code
                    continue
                filled_role = kernel.char_role[kernel.fill_rows[code][in_port]]
                if fam in _BANK_MARKS:
                    # interception (root / active RCA / active BCA) escapes,
                    # as does everything past the growing phase range
                    assert all(r < 0 for r in rows[esc:]), code
                else:
                    # dying banks lower only the promotion-free body
                    # stream through the relay's predecessor port; heads,
                    # tails, pending promotions and off-pred arrivals escape
                    assert rows[0] < 0, code
                    for phase in range(1, 2 * delta * delta + 1):
                        pair, promote = divmod(phase - 1, 2)
                        pred = pair // delta + 1
                        lowered = (
                            filled_role == 1
                            and promote == 0
                            and pred == in_port
                        )
                        assert (rows[phase] >= 0) == lowered, (code, phase)
        assert escapes > 0

    def test_walkable_bitmap_matches_a_full_table_scan(self, delta):
        """``trans_walkable`` (set while the rows are written) is exactly
        "this code's plane holds at least one non-escape row" — the
        stepper uses it to route all-escape codes straight to the closure
        dispatch, so a mismatch would either skip lowered rows or walk
        planes that cannot pay off."""
        kernel = kernel_for(delta)
        for code in range(kernel.n_codes):
            scanned = any(
                row >= 0
                for in_port in range(delta + 1)
                for row in kernel.trans_rows[code][in_port]
            )
            assert bool(kernel.trans_walkable[code]) == scanned, code


# ----------------------------------------------------------------------
# satellite: v1 → v2 artifact-library migration
# ----------------------------------------------------------------------
_V1_HEADER = struct.Struct("<8sII4Q6QII")


def _le_bytes(table) -> bytes:
    data = array("q", table)
    if sys.byteorder != "little":  # pragma: no cover
        data = array("q", data)
        data.byteswap()
    return data.tobytes()


def _v1_key(graph) -> str:
    """The content address a format-v1 library computed for ``graph``."""
    h = hashlib.sha256()
    h.update(ARTIFACT_MAGIC)
    h.update(_le_bytes([1, COMPILER_VERSION, graph.num_nodes, graph.delta]))
    wires = array("q")
    for wire in sorted(graph.wires()):
        wires.extend(wire)
    h.update(_le_bytes(wires))
    return h.hexdigest()


def _dump_v1(topo) -> bytes:
    """Serialize ``topo`` in the retired six-table v1 layout."""
    names = TABLE_NAMES[:6]
    payload = b"".join(_le_bytes(getattr(topo, name)) for name in names)
    census = alphabet_size(topo.delta) - 1
    head = _V1_HEADER.pack(
        ARTIFACT_MAGIC,
        1,
        COMPILER_VERSION,
        topo.num_nodes,
        topo.delta,
        topo.stride,
        census,
        *(len(getattr(topo, name)) for name in names),
        zlib.crc32(payload),
        0,
    )
    head = head[:-4] + struct.pack("<I", zlib.crc32(head[:-4]))
    return head + payload


class TestV1Migration:
    @pytest.fixture(autouse=True)
    def _cold(self):
        configure_artifact_library(None)
        clear_compiled_cache()
        yield
        configure_artifact_library(None)
        clear_compiled_cache()

    def _library_with_v1(self, tmp_path):
        library = ArtifactLibrary(tmp_path / "artifacts")
        graph = build_family("de-bruijn", 8, 0)
        topo = compile_topology(graph)
        v1_path = library.path_for(_v1_key(graph))
        v1_path.parent.mkdir(parents=True, exist_ok=True)
        v1_path.write_bytes(_dump_v1(topo))
        return library, graph, v1_path

    def test_v1_artifact_is_a_clean_load_miss(self, tmp_path):
        library, graph, v1_path = self._library_with_v1(tmp_path)
        # the v2 key differs (format version joins the hash), so the v1
        # file is simply not found — a miss, not a validation failure
        assert artifact_key(graph) != _v1_key(graph)
        assert library.load(graph) is None
        assert library.load_failures == 0

    def test_v1_bytes_at_v2_key_fail_with_version_not_crc(self, tmp_path):
        # a tampered/copied file in v1 layout under the v2 key must
        # report the version mismatch (checked before the layout-dependent
        # header crc), and count as a miss
        library, graph, v1_path = self._library_with_v1(tmp_path)
        v2_path = library.path_for(artifact_key(graph))
        v2_path.parent.mkdir(parents=True, exist_ok=True)
        v2_path.write_bytes(v1_path.read_bytes())
        assert library.load(graph) is None
        assert library.load_failures == 1
        bad = [e for e in library.entries(validate=True) if not e.ok]
        assert any("format version 1" in e.error for e in bad)

    def test_republish_heals_the_library(self, tmp_path):
        library, graph, _ = self._library_with_v1(tmp_path)
        key, fresh = library.ensure(graph)
        assert fresh == 1
        assert key == artifact_key(graph)
        topo = library.load(graph)
        assert topo is not None
        # the healed artifact carries the kernel tables (format v2)
        kernel = kernel_for(graph.delta)
        assert list(topo.char_flags) == list(kernel.char_flags)

    def test_cli_verify_reports_the_v1_file(self, tmp_path, capsys):
        from repro.cli import main

        library, graph, _ = self._library_with_v1(tmp_path)
        library.ensure(graph)
        code = main(["store", str(library.root), "--artifacts", "--verify"])
        out = capsys.readouterr().out
        assert code == 1
        assert "INVALID" in out
        assert "format version 1" in out
        assert "verify: 1 invalid artifact(s)" in out

    def test_gc_reclaims_the_v1_file_keeps_v2(self, tmp_path):
        library, graph, v1_path = self._library_with_v1(tmp_path)
        library.ensure(graph)
        removed = library.gc()
        assert [e.path for e in removed] == [v1_path]
        assert not v1_path.exists()
        assert library.load(graph) is not None


# ----------------------------------------------------------------------
# satellite: v2 → v3 artifact-library migration
# ----------------------------------------------------------------------
_V2_HEADER = struct.Struct("<8sII5Q13QII")


def _v2_key(graph) -> str:
    """The content address a format-v2 library computed for ``graph``."""
    h = hashlib.sha256()
    h.update(ARTIFACT_MAGIC)
    h.update(_le_bytes([2, COMPILER_VERSION, graph.num_nodes, graph.delta]))
    wires = array("q")
    for wire in sorted(graph.wires()):
        wires.extend(wire)
    h.update(_le_bytes(wires))
    return h.hexdigest()


def _dump_v2(topo) -> bytes:
    """Serialize ``topo`` in the superseded thirteen-table v2 layout."""
    names = TABLE_NAMES[:13]
    payload = b"".join(_le_bytes(getattr(topo, name)) for name in names)
    census = alphabet_size(topo.delta)
    head = _V2_HEADER.pack(
        ARTIFACT_MAGIC,
        2,
        COMPILER_VERSION,
        topo.num_nodes,
        topo.delta,
        topo.stride,
        census,
        kernel_size(topo.delta),
        *(len(getattr(topo, name)) for name in names),
        zlib.crc32(payload),
        0,
    )
    head = head[:-4] + struct.pack("<I", zlib.crc32(head[:-4]))
    return head + payload


class TestV2Migration:
    """v3 (the transition-table format) against a library of v2 files."""

    @pytest.fixture(autouse=True)
    def _cold(self):
        configure_artifact_library(None)
        clear_compiled_cache()
        yield
        configure_artifact_library(None)
        clear_compiled_cache()

    def _library_with_v2(self, tmp_path):
        library = ArtifactLibrary(tmp_path / "artifacts")
        graph = build_family("de-bruijn", 8, 0)
        topo = compile_topology(graph)
        v2_path = library.path_for(_v2_key(graph))
        v2_path.parent.mkdir(parents=True, exist_ok=True)
        v2_path.write_bytes(_dump_v2(topo))
        return library, graph, v2_path

    def test_v2_artifact_is_a_clean_load_miss(self, tmp_path):
        library, graph, v2_path = self._library_with_v2(tmp_path)
        # the format version joins the content address, so the v2 file is
        # simply not found under the v3 key — a miss, not a failure
        assert artifact_key(graph) != _v2_key(graph)
        assert library.load(graph) is None
        assert library.load_failures == 0

    def test_v2_bytes_at_v3_key_fail_with_version_not_crc(self, tmp_path):
        library, graph, v2_path = self._library_with_v2(tmp_path)
        v3_path = library.path_for(artifact_key(graph))
        v3_path.parent.mkdir(parents=True, exist_ok=True)
        v3_path.write_bytes(v2_path.read_bytes())
        assert library.load(graph) is None
        assert library.load_failures == 1
        bad = [e for e in library.entries(validate=True) if not e.ok]
        assert any("format version 2" in e.error for e in bad)

    def test_republish_heals_and_warm_loads_skip_the_compiler(self, tmp_path):
        library, graph, _ = self._library_with_v2(tmp_path)
        key, fresh = library.ensure(graph)
        assert fresh == 1
        assert key == artifact_key(graph)
        # a cold process over the healed library never compiles: the v3
        # artifact carries the full transition program
        clear_compiled_cache()
        before = compile_calls()
        topo = library.load(graph)
        assert topo is not None
        assert compile_calls() == before
        kernel = kernel_for(graph.delta)
        assert list(topo.char_trans) == list(kernel.char_trans)

    def test_cli_verify_names_the_version_mismatch(self, tmp_path, capsys):
        from repro.cli import main

        library, graph, v2_path = self._library_with_v2(tmp_path)
        v3_path = library.path_for(artifact_key(graph))
        v3_path.parent.mkdir(parents=True, exist_ok=True)
        v3_path.write_bytes(v2_path.read_bytes())
        code = main(["store", str(library.root), "--artifacts", "--verify"])
        out = capsys.readouterr().out
        assert code == 1
        assert "INVALID" in out
        assert "format version 2" in out

    def test_gc_reclaims_the_stale_v2_blob(self, tmp_path):
        library, graph, v2_path = self._library_with_v2(tmp_path)
        library.ensure(graph)
        removed = library.gc()
        assert [e.path for e in removed] == [v2_path]
        assert not v2_path.exists()
        assert library.load(graph) is not None
