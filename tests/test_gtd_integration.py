"""End-to-end Global Topology Determination: Theorem 4.1 and Lemma 4.4."""

import pytest

from repro import determine_topology
from repro.errors import NotStronglyConnectedError
from repro.protocol.gtd import GTDProcessor
from repro.sim.audit import state_atom_count
from repro.topology import generators
from repro.topology.builder import PortGraphBuilder
from repro.topology.faults import degrade_bidirectional
from repro.topology.portgraph import PortGraph


class TestExactRecoveryEverywhere:
    @pytest.mark.parametrize("name", sorted(generators.all_families()))
    def test_family(self, name):
        graph = generators.all_families()[name]
        result = determine_topology(graph, verify_cleanup=True)
        assert result.matches(graph), name
        assert result.recovered.num_nodes == graph.num_nodes
        assert len(result.recovered.wires) == graph.num_wires

    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_any_root(self, root, debruijn8):
        result = determine_topology(debruijn8, root=root)
        assert result.matches(debruijn8, root=root)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        graph = generators.random_strongly_connected(
            10, extra_edges=2 + seed, seed=seed
        )
        result = determine_topology(graph)
        assert result.matches(graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_degraded_fabrics(self, seed):
        fabric = degrade_bidirectional(generators.hypercube(3), 0.5, seed=seed)
        result = determine_topology(fabric)
        assert result.matches(fabric)

    def test_single_node_self_loop(self, self_loop_single):
        result = determine_topology(self_loop_single)
        assert result.matches(self_loop_single)
        assert result.rca_runs == 0  # deviation D2: root-local events only
        assert result.bca_runs == 1

    def test_two_node_cycle(self, two_node_cycle):
        result = determine_topology(two_node_cycle, verify_cleanup=True)
        assert result.matches(two_node_cycle)

    def test_parallel_edges(self):
        b = PortGraphBuilder(2)
        b.connect(0, 1).connect(0, 1).connect(1, 0)
        g = b.build()
        result = determine_topology(g)
        assert result.matches(g)

    def test_self_loops_at_non_root(self):
        b = PortGraphBuilder(3)
        b.connect(0, 1).connect(1, 1).connect(1, 2).connect(2, 0)
        g = b.build()
        result = determine_topology(g, verify_cleanup=True)
        assert result.matches(g)


class TestProtocolAccounting:
    """Structural invariants of the DFS: every edge probed exactly once."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: generators.directed_ring(6),
            lambda: generators.bidirectional_ring(5),
            lambda: generators.de_bruijn(2, 3),
            lambda: generators.directed_torus(3, 3),
            lambda: generators.tree_with_loop(2, seed=1),
        ],
    )
    def test_rca_bca_counts(self, factory):
        graph = factory()
        result = determine_topology(graph)
        edges = graph.num_wires
        # Every probe is answered by exactly one BCA (bounce or parent
        # return): BCAs == E.  Every edge event is reported by an RCA except
        # the root's own (deviation D2): FORWARD RCAs = E - indeg(root),
        # BACK RCAs = E - outdeg(root).
        assert result.bca_runs == edges
        expected_rca = 2 * edges - graph.in_degree(0) - graph.out_degree(0)
        assert result.rca_runs == expected_rca

    def test_dfs_token_crosses_each_wire_once(self, debruijn8):
        result = determine_topology(debruijn8)
        assert result.metrics.delivered["DFS"] == debruijn8.num_wires


class TestLemma44TimeBound:
    def test_ticks_scale_with_nd(self):
        ratios = []
        for n in (4, 8, 16):
            g = generators.bidirectional_ring(n)
            r = determine_topology(g)
            d = max(1, r.diameter)
            ratios.append(r.ticks / (g.num_wires * d))
        # ticks per (edge * diameter) stays within a constant band
        assert max(ratios) / min(ratios) < 3.0

    def test_termination_well_before_watchdog(self, debruijn8):
        from repro.protocol.runner import default_tick_budget

        r = determine_topology(debruijn8)
        assert r.ticks < default_tick_budget(debruijn8, r.diameter) / 10


class TestModelRequirements:
    def test_rejects_weakly_connected(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 0, 1)
        g.add_wire(1, 1, 1, 1)
        g.freeze()
        with pytest.raises(NotStronglyConnectedError):
            determine_topology(g)

    def test_finite_state_across_sizes(self):
        """Processor memory does not grow with N (the paper's FSM claim)."""
        atom_counts = []
        for n in (4, 8, 16, 32):
            g = generators.bidirectional_ring(n)
            result = determine_topology(g, audit_finite_state=True)
            assert result.matches(g)
            atom_counts.append(n)
        # audit_finite_state already asserted the bound; additionally run
        # one sweep manually and compare biggest-vs-smallest network.
        sizes = []
        for n in (4, 32):
            g = generators.bidirectional_ring(n)
            procs = [GTDProcessor() for _ in g.nodes()]
            from repro.sim.engine import Engine

            engine = Engine(g, list(procs), root=0)
            engine.run(max_ticks=200_000, until=lambda: procs[0].terminal)
            sizes.append(max(state_atom_count(p) for p in procs))
        assert sizes[1] <= sizes[0] + 2  # no growth with N


class TestTranscriptHonesty:
    def test_reconstruction_uses_only_transcript(self, debruijn8):
        from repro.protocol.root_computer import MasterComputer

        result = determine_topology(debruijn8)
        rebuilt = MasterComputer().reconstruct(result.transcript)
        assert rebuilt.num_nodes == result.recovered.num_nodes
        assert set(map(tuple.__call__, [])) == set()  # no extra state
        assert {
            (w.src, w.out_port, w.dst, w.in_port) for w in rebuilt.wires
        } == {(w.src, w.out_port, w.dst, w.in_port) for w in result.recovered.wires}

    def test_signatures_unique(self, debruijn8):
        result = determine_topology(debruijn8)
        sigs = list(result.recovered.signatures.values())
        assert len(set(sigs)) == len(sigs)

    def test_root_signature_empty(self, debruijn8):
        result = determine_topology(debruijn8)
        assert result.recovered.signatures[0] == ((), ())
