"""The CLI and the ASCII renderers."""

import pytest

from repro import determine_topology
from repro.cli import build_parser, main
from repro.viz.ascii_map import render_adjacency, render_recovered_map
from repro.viz.timeline import render_traffic_profile, render_transcript_digest


class TestCli:
    def test_families_lists_everything(self, capsys):
        """The listing shows exactly the names map/campaign accept."""
        from repro.campaigns.spec import FAMILY_BUILDERS

        assert main(["families"]) == 0
        out = capsys.readouterr().out
        for name in FAMILY_BUILDERS:
            assert name in out

    def test_map_runs_and_reports_exact(self, capsys):
        assert main(["map", "--family", "bidirectional-ring", "--size", "5"]) == 0
        out = capsys.readouterr().out
        assert "exact=True" in out
        assert "recovered map" in out

    def test_map_traffic_flag(self, capsys):
        assert main(["map", "--family", "directed-ring", "--size", "4", "--traffic"]) == 0
        assert "deliveries" in capsys.readouterr().out

    def test_map_verify_cleanup_flag(self, capsys):
        assert (
            main(["map", "--family", "directed-ring", "--size", "4",
                  "--verify-cleanup"]) == 0
        )
        assert "exact=True" in capsys.readouterr().out

    def test_map_random_seeded(self, capsys):
        assert main(["map", "--family", "random", "--size", "6", "--seed", "3"]) == 0
        assert "exact=True" in capsys.readouterr().out

    def test_lower_bound_table(self, capsys):
        assert main(["lower-bound", "--delta", "5", "--max-depth", "4"]) == 0
        out = capsys.readouterr().out
        assert "min ticks" in out

    def test_parser_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--family", "nope"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestViz:
    def test_adjacency_lists_every_node(self, debruijn8):
        out = render_adjacency(debruijn8, root=0)
        assert out.count("\n") == debruijn8.num_nodes - 1
        assert "*" in out  # root marker

    def test_recovered_map_rendering(self, ring4):
        result = determine_topology(ring4)
        out = render_recovered_map(result.recovered)
        assert "name 0 = root" in out
        assert f"{ring4.num_wires} wires" in out

    def test_traffic_profile_shares_sum(self, ring4):
        result = determine_topology(ring4)
        out = render_traffic_profile(result.metrics)
        assert "%" in out and "deliveries" in out

    def test_transcript_digest(self, ring4):
        result = determine_topology(ring4)
        out = render_transcript_digest(result.transcript, limit=5)
        assert "pipe" in out
        assert "TERMINAL" in out or "shown" in out


class TestResultJson:
    def test_to_json_roundtrips_map(self, debruijn8):
        import json

        from repro.topology.serialize import from_json
        from repro.topology.isomorphism import port_isomorphic

        result = determine_topology(debruijn8)
        doc = json.loads(result.to_json())
        assert doc["format"] == "repro.topology-result/v1"
        assert doc["root"] == 0
        assert doc["stats"]["ticks"] == result.ticks
        graph = from_json(json.dumps(doc["map"]))
        assert port_isomorphic(debruijn8, 0, graph, 0)

    def test_cli_json_flag(self, tmp_path, capsys):
        import json

        out = tmp_path / "map.json"
        assert main(
            ["map", "--family", "directed-ring", "--size", "5",
             "--json", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["map"]["num_nodes"] == 5
        assert "wrote" in capsys.readouterr().out
