"""Shared fixtures: small canonical networks and protocol helpers."""

from __future__ import annotations

import pytest

from repro.topology import generators
from repro.topology.builder import PortGraphBuilder
from repro.topology.portgraph import PortGraph


@pytest.fixture
def ring4() -> PortGraph:
    """Bidirectional 4-ring: the smallest comfortable all-paths testbed."""
    return generators.bidirectional_ring(4)


@pytest.fixture
def dring5() -> PortGraph:
    """Directed 5-ring: unidirectional everything, worst-case backtracking."""
    return generators.directed_ring(5)


@pytest.fixture
def debruijn8() -> PortGraph:
    """Binary de Bruijn on 8 nodes: degree 2, D=3, includes self-loops."""
    return generators.de_bruijn(2, 3)


@pytest.fixture
def two_node_cycle() -> PortGraph:
    """The minimal multi-processor network: 0 <-> 1 (two one-way wires)."""
    b = PortGraphBuilder(2)
    b.connect(0, 1).connect(1, 0)
    return b.build()


@pytest.fixture
def self_loop_single() -> PortGraph:
    """The minimal legal network: one processor with one self-loop."""
    b = PortGraphBuilder(1)
    b.connect(0, 0)
    return b.build()


def make_line_graph(n: int) -> PortGraph:
    """Bidirectional line helper available to non-fixture callers."""
    return generators.bidirectional_line(n)
