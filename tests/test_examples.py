"""Every example must run clean end to end (they assert their own claims)."""

import os
import pathlib
import subprocess
import sys

import pytest

_ROOT = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((_ROOT / "examples").glob("*.py"))

#: examples import repro as an installed package would; make sure the
#: subprocess finds the in-repo sources whatever env pytest ran under
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = str(_ROOT / "src") + os.pathsep + _ENV.get("PYTHONPATH", "")


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=_ENV,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their results"
