"""The compiled flat-core backend: CSR lowering, interning, packed wheel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.protocol.gtd import GTDProcessor
from repro.protocol.rca import run_single_rca
from repro.sim.characters import (
    Char,
    CharInterner,
    alphabet_size,
    enumerate_alphabet,
    make_body,
    make_head,
)
from repro.sim.flatcore import (
    CODE_MASK,
    PORT_MASK,
    PORT_SHIFT,
    PRIO_SHIFT,
    FlatEngine,
    PackedEventWheel,
)
from repro.sim.run import ENGINE_BACKENDS, RunConfig, make_engine
from repro.sim.scheduler import KIND_PRIORITY
from repro.topology import generators
from repro.topology.builder import PortGraphBuilder
from repro.topology.compile import compile_topology
from repro.topology.portgraph import PortGraph


# ----------------------------------------------------------------------
# topology compilation
# ----------------------------------------------------------------------
class TestCompileTopology:
    def test_requires_frozen_graph(self):
        graph = PortGraph(2, 2)
        graph.add_wire(0, 1, 1, 1)
        graph.add_wire(1, 1, 0, 1)
        with pytest.raises(SimulationError):
            compile_topology(graph)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tables_match_portgraph(self, seed):
        graph = generators.random_strongly_connected(12, extra_edges=12, seed=seed)
        topo = compile_topology(graph)
        assert topo.num_nodes == graph.num_nodes
        assert topo.delta == graph.delta
        for node in graph.nodes():
            assert topo.out_ports_of(node) == graph.connected_out_ports(node)
            assert topo.in_ports_of(node) == graph.connected_in_ports(node)
            for port in range(1, graph.delta + 1):
                wire = graph.out_wire(node, port)
                got = topo.dst_of(node, port)
                if wire is None:
                    assert got is None
                else:
                    assert got == (wire.dst, wire.in_port)

    def test_unconnected_slots_are_negative(self):
        graph = generators.directed_ring(4)
        topo = compile_topology(graph)
        # a directed ring uses out-port 1 only; port 2 slots stay -1
        for node in graph.nodes():
            assert topo.wire_dst[node * topo.stride + 2] == -1


# ----------------------------------------------------------------------
# the interned alphabet
# ----------------------------------------------------------------------
class TestAlphabet:
    @pytest.mark.parametrize("delta", [2, 3, 5, 8])
    def test_enumeration_realizes_the_census(self, delta):
        chars = enumerate_alphabet(delta)
        # the census counts the blank; the enumeration materializes the rest
        assert len(chars) == alphabet_size(delta) - 1
        assert len(set(chars)) == len(chars)  # no duplicates

    def test_enumeration_is_deterministic(self):
        assert enumerate_alphabet(3) == enumerate_alphabet(3)

    def test_delta_below_two_rejected(self):
        with pytest.raises(ValueError):
            enumerate_alphabet(1)

    def test_interner_round_trips_whole_alphabet(self):
        interner = CharInterner(3)
        for char in list(interner.chars):
            code = interner.encode(char)
            assert interner.decode(code) == char
            assert interner.decode(code) is interner.decode(code)  # canonical

    def test_interner_handles_unknown_characters(self):
        interner = CharInterner(2)
        size_before = len(interner)
        exotic = Char("BDT", payload="PING")  # payload outside the census
        code = interner.encode(exotic)
        assert code == size_before
        assert interner.decode(code) == exotic
        assert interner.encode(Char("BDT", payload="PING")) == code  # stable


# ----------------------------------------------------------------------
# the packed event wheel
# ----------------------------------------------------------------------
def _kinds_of(wheel: PackedEventWheel, bucket, node: int) -> list[str]:
    lane = sorted(bucket.lanes[node])
    return [wheel.chars[packed & CODE_MASK].kind for packed in lane]


class TestPackedEventWheel:
    def test_sort_order_is_priority_then_port_then_fifo(self):
        wheel = PackedEventWheel(CharInterner(2))
        wheel.schedule(5, 0, 2, Char("DFS"))
        wheel.schedule(5, 0, 1, Char("IGH"))
        wheel.schedule(5, 0, 1, Char("KILL"))
        wheel.schedule(5, 0, 2, Char("IDH"))
        bucket = wheel.pop(5)
        assert _kinds_of(wheel, bucket, 0) == ["KILL", "IDH", "IGH", "DFS"]

    def test_fifo_breaks_ties_within_port_and_priority(self):
        wheel = PackedEventWheel(CharInterner(2))
        first = make_body("IG", 1)
        second = make_body("IG", 2)
        wheel.schedule(3, 7, 1, first)
        wheel.schedule(3, 7, 1, second)
        bucket = wheel.pop(3)
        lane = sorted(bucket.lanes[7])
        chars = [wheel.chars[p & CODE_MASK] for p in lane]
        assert chars == [first, second]

    def test_packed_entry_fields_round_trip(self):
        wheel = PackedEventWheel(CharInterner(3))
        wheel.schedule(1, 4, 3, Char("UNMARK", payload="RCA"))
        bucket = wheel.pop(1)
        packed = bucket.lanes[4][0]
        assert (packed >> PORT_SHIFT) & PORT_MASK == 3
        assert wheel.chars[packed & CODE_MASK] == Char("UNMARK", payload="RCA")
        assert packed >> PRIO_SHIFT == KIND_PRIORITY["UNMARK"]

    def test_next_tick_and_emptiness(self):
        wheel = PackedEventWheel(CharInterner(2))
        assert wheel.next_tick() is None
        wheel.schedule(9, 0, 1, Char("DFS"))
        wheel.schedule(4, 1, 1, Char("DFS"))
        assert wheel.next_tick() == 4
        wheel.pop(4)
        assert wheel.next_tick() == 9
        wheel.pop(9)
        assert wheel.next_tick() is None
        assert not wheel

    def test_in_flight_lists_all_scheduled(self):
        wheel = PackedEventWheel(CharInterner(2))
        wheel.schedule(1, 0, 1, Char("DFS"))
        wheel.schedule(2, 3, 1, Char("KILL"))
        assert sorted(node for node, _ in wheel.in_flight()) == [0, 3]
        assert len(wheel) == 2
        kinds = sorted(char.kind for _, char in wheel.in_flight())
        assert kinds == ["DFS", "KILL"]

    def test_recycled_bucket_is_reused(self):
        wheel = PackedEventWheel(CharInterner(2))
        wheel.schedule(1, 0, 1, Char("DFS"))
        bucket = wheel.pop(1)
        wheel.recycle(bucket)
        wheel.schedule(2, 5, 1, Char("BACK"))
        assert wheel._buckets[2] is bucket  # same object, cleared
        assert _kinds_of(wheel, wheel.pop(2), 5) == ["BACK"]


# ----------------------------------------------------------------------
# the engine itself
# ----------------------------------------------------------------------
class TestFlatEngine:
    def test_registered_as_flat_backend(self):
        assert ENGINE_BACKENDS["flat"] is FlatEngine

    def test_requires_frozen_graph(self):
        graph = PortGraph(2, 2)
        graph.add_wire(0, 1, 1, 1)
        graph.add_wire(1, 1, 0, 1)
        with pytest.raises(SimulationError):
            FlatEngine(graph, [GTDProcessor(), GTDProcessor()])

    def test_unconnected_emission_raises(self):
        b = PortGraphBuilder(2)
        graph = b.connect(0, 1).connect(1, 0).build()
        engine = FlatEngine(graph, [GTDProcessor(), GTDProcessor()])
        proc = engine.processors[1]
        proc.begin_tick(0)
        with pytest.raises(SimulationError):
            proc.send(2, make_head("IG", 2))  # port 2 is unwired

    def test_single_rca_runs_and_drains(self):
        graph = generators.bidirectional_line(8)
        result = run_single_rca(graph, initiator=7, backend="flat")
        assert result.completed_at > 0
        assert result.engine.is_idle()
        assert isinstance(result.engine, FlatEngine)

    def test_run_config_rejects_unknown_backend(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            RunConfig(max_ticks=10, backend="warp")

    def test_make_engine_rejects_unknown_backend(self):
        from repro.errors import ReproError

        graph = generators.directed_ring(3)
        with pytest.raises(ReproError):
            make_engine("warp", graph, [GTDProcessor() for _ in range(3)])

    def test_purge_hook_erases_scheduled_growing_chars(self):
        """A KILL purge reaches characters the sink pre-scheduled."""
        b = PortGraphBuilder(2)
        graph = b.connect(0, 1).connect(1, 0).build()
        engine = FlatEngine(graph, [GTDProcessor(), GTDProcessor()])
        proc = engine.processors[1]
        assert proc._direct_sink is not None  # sink installed (non-root GTD)
        proc.begin_tick(engine.tick)
        proc.send(1, make_head("IG", 1))       # growing: direct-scheduled
        assert len(engine._wheel) == 1
        removed = proc.purge_outbox(lambda c: c.kind.startswith("IG"))
        assert removed == 1
        assert len(engine._wheel) == 0
        # the emission counter was rolled back: purged chars never count
        assert engine.metrics.emitted.get("IGH", 0) == 0

    def test_root_keeps_outbox_semantics(self):
        """The root records sends at drain time, so it gets no sink."""
        b = PortGraphBuilder(2)
        graph = b.connect(0, 1).connect(1, 0).build()
        engine = FlatEngine(graph, [GTDProcessor(), GTDProcessor()], root=0)
        assert engine.processors[0]._direct_sink is None
        assert engine.processors[1]._direct_sink is not None

    def test_purging_last_traffic_leaves_wheel_idle(self):
        """A purge that empties a bucket must not strand it in the wheel.

        Regression: an emptied-but-present bucket kept ``is_idle`` False
        and made ``run_to_idle`` step to a tick where nothing happens — a
        tick-count divergence from the object backend.
        """
        b = PortGraphBuilder(2)
        graph = b.connect(0, 1).connect(1, 0).build()
        engine = FlatEngine(graph, [GTDProcessor(), GTDProcessor()])
        proc = engine.processors[1]
        proc.begin_tick(engine.tick)
        proc.send(1, make_head("IG", 1))  # direct-scheduled growing char
        assert not engine.is_idle()
        assert proc.purge_outbox(lambda c: c.kind.startswith("IG")) == 1
        assert engine.is_idle()
        assert engine._wheel.next_tick() is None

    def test_execute_run_rejects_backend_mismatch(self):
        from repro.errors import ReproError
        from repro.sim.run import execute_run

        graph = generators.directed_ring(3)
        engine = make_engine("flat", graph, [GTDProcessor() for _ in range(3)])
        with pytest.raises(ReproError):
            execute_run(engine, RunConfig(max_ticks=10, backend="object"))

    def test_metrics_rebuild_is_idempotent(self):
        graph = generators.bidirectional_line(6)
        result = run_single_rca(graph, initiator=5, backend="flat")
        first = dict(result.engine.metrics.delivered)
        assert sum(first.values()) > 0
        again = result.engine.metrics  # property re-flushes from scratch
        assert dict(again.delivered) == first
