"""The exception hierarchy: everything hangs off ReproError."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.TopologyError,
        errors.DegreeBoundError,
        errors.PortInUseError,
        errors.NotStronglyConnectedError,
        errors.SimulationError,
        errors.TickBudgetExceeded,
        errors.ProtocolError,
        errors.ProtocolViolation,
        errors.CleanupViolation,
        errors.TranscriptError,
        errors.ReconstructionError,
        errors.AnalysisError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_degree_bound_is_topology_error():
    assert issubclass(errors.DegreeBoundError, errors.TopologyError)
    assert issubclass(errors.PortInUseError, errors.TopologyError)


def test_cleanup_violation_is_protocol_error():
    assert issubclass(errors.CleanupViolation, errors.ProtocolError)


def test_tick_budget_records_ticks():
    exc = errors.TickBudgetExceeded(1234)
    assert exc.ticks == 1234
    assert "1234" in str(exc)


def test_tick_budget_custom_message():
    exc = errors.TickBudgetExceeded(7, "custom")
    assert str(exc) == "custom"
    assert exc.ticks == 7
