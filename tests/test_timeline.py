"""The perturbation-timeline subsystem: grammar, lowering, engines, stats."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.run_stats import phase_outcome_counts
from repro.campaigns.executor import run_scenario
from repro.campaigns.spec import (
    FAMILY_BUILDERS,
    Scenario,
    build_family,
    parse_fault,
)
from repro.dynamics import (
    DynamicEngine,
    DynamicOutcome,
    FlatDynamicEngine,
    WireMutation,
    compile_timeline,
    parse_timeline,
    run_dynamic_gtd,
)
from repro.dynamics.engine import validate_wire_ops
from repro.errors import ReproError, TopologyError
from repro.protocol.gtd import GTDProcessor
from repro.topology.faults import WireState, shutdown_out_ports
from repro.topology.portgraph import PortGraph, Wire
from repro.topology.properties import is_strongly_connected


def spare_ring(n: int) -> PortGraph:
    g = PortGraph(n, 3)
    for u in range(n):
        g.add_wire(u, 1, (u + 1) % n, 1)
        g.add_wire(u, 2, (u - 1) % n, 2)
    return g.freeze()


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------
class TestGrammar:
    @pytest.mark.parametrize(
        "spec",
        [
            "churn:rate=0.05,period=0.25",
            "churn:rate=0.1,period=0.2,heal=0.5,until=1.5",
            "storm:p=0.1@0.5",
            "flap:wire=3:1,on=0.2,off=0.4",
            "flap:wire=3:1,on=0.2,off=0.4,cycles=3",
            "frontier:k=2@0.5",
            "cut@0.5",
            "cut:n=3@0.5",
            "heal@0.8",
            "heal:n=2@0.8",
            "add@0.5",
            "add:n=2@0.5",
            "storm:p=0.2@0.3+heal@0.9+churn:rate=0.02,period=0.5",
        ],
    )
    def test_canonical_round_trip(self, spec):
        timeline = parse_timeline(spec)
        assert timeline.canonical() == spec
        assert parse_timeline(timeline.canonical()) == timeline

    def test_spellings_canonicalize(self):
        assert (
            parse_timeline("storm:p=0.10@0.50").canonical() == "storm:p=0.1@0.5"
        )
        assert (
            parse_timeline("churn:rate=0.050,period=0.250").canonical()
            == "churn:rate=0.05,period=0.25"
        )
        # at= is the spelled-out form of @
        assert parse_timeline("cut:at=0.5") == parse_timeline("cut@0.5")
        # defaults drop out of the canonical form
        assert parse_timeline("cut:n=1@0.5").canonical() == "cut@0.5"
        assert (
            parse_timeline("churn:rate=0.1,period=0.2,heal=0.1,until=1").canonical()
            == "churn:rate=0.1,period=0.2"
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "storm@0.5",                       # missing p=
            "storm:p=0.5",                     # missing @time
            "storm:p=1.5@0.5",                 # p out of range
            "melt:x=1@0.5",                    # unknown kind
            "churn:rate=0.1",                  # missing period
            "churn:rate=0.1,period=0.2@0.5",   # churn takes no @time
            "flap:wire=3,on=0.1,off=0.2",      # wire must be NODE:PORT
            "flap:wire=3:1,on=0.5,off=0.2",    # on must precede off
            "frontier:k=0@0.5",                # k must be >= 1
            "cut:0.5",                         # legacy form is not an event
            "cut:n=2,at=0.5@0.6",              # @ and at= conflict
            "storm:p=0.1,bogus=2@0.5",         # unknown parameter
            "cut@0.5++heal@0.9",               # empty event
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ReproError):
            parse_timeline(bad)


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
class TestCompile:
    def test_deterministic_per_seed(self):
        g = spare_ring(10)
        tl = parse_timeline("storm:p=0.3@0.3+heal@0.8+churn:rate=0.1,period=0.4")
        a = tl.compile(g, horizon=300, seed=7)
        b = tl.compile(g, horizon=300, seed=7)
        c = tl.compile(g, horizon=300, seed=8)
        assert a.ops == b.ops
        assert a.phases == b.phases
        assert a.ops != c.ops

    def test_ops_sorted_and_scaled_by_horizon(self):
        g = spare_ring(8)
        tl = parse_timeline("frontier:k=1@0.5+frontier:k=1@0.25")
        program = tl.compile(g, horizon=400, seed=0)
        assert [op.tick for op in program.ops] == [100, 200]
        assert all(op.kind == "cut" for op in program.ops)

    def test_phases_partition_the_run(self):
        g = spare_ring(8)
        program = parse_timeline("frontier:k=1@0.5+heal@0.75").compile(
            g, horizon=400, seed=0
        )
        assert program.phases[0] == ("pre", 0)
        assert program.phase_at(0) == "pre"
        assert program.phase_at(200) == "pre"       # op at 200 applies after
        assert program.phase_at(201) == "cut@200"
        assert program.phase_at(10**9) == "heal@300"

    def test_every_intermediate_state_stays_connected(self):
        g = spare_ring(12)
        tl = parse_timeline("churn:rate=0.4,period=0.2,heal=0.2,until=2")
        program = tl.compile(g, horizon=500, seed=3)
        state = WireState(g, keep_connected=False)
        for op in program.ops:
            if op.kind == "cut":
                state.cut(op.wire)
            else:
                state.attach(op.wire)
            snapshot = state.snapshot()  # raises if any node lost its ports
            assert is_strongly_connected(snapshot)

    def test_flap_full_cycle_restores_base_graph(self):
        g = spare_ring(8)
        program = parse_timeline("flap:wire=3:1,on=0.2,off=0.6").compile(
            g, horizon=500, seed=0
        )
        assert [op.kind for op in program.ops] == ["cut", "heal"]
        assert program.final_topology(g) == g

    def test_flap_unknown_wire_is_infeasible(self):
        g = spare_ring(8)
        with pytest.raises(TopologyError):
            parse_timeline("flap:wire=3:3,on=0.2,off=0.6").compile(
                g, horizon=100, seed=0
            )

    def test_add_wave_needs_free_ports(self):
        ring = build_family("directed-ring", 6)
        with pytest.raises(TopologyError):
            parse_timeline("add:n=20@0.5").compile(ring, horizon=100, seed=0)

    def test_frontier_prefers_deep_wires(self):
        ring = build_family("bidirectional-ring", 10)
        program = parse_timeline("frontier:k=1@0.5").compile(
            ring, horizon=100, seed=0
        )
        (op,) = program.ops
        # the deepest cuttable wire leaves the far side of the ring
        # (BFS depth from root 0 peaks at node 5)
        depth_of_src = min(op.wire.src, 10 - op.wire.src)
        assert depth_of_src >= 4


# ----------------------------------------------------------------------
# the wire-op program on the engines
# ----------------------------------------------------------------------
class TestHealOps:
    def test_heal_requires_cut_first(self):
        g = spare_ring(6)
        wire = g.out_wire(2, 1)
        with pytest.raises(TopologyError):
            validate_wire_ops(g, [WireMutation(5, "heal", wire)])

    def test_cut_heal_cut_sequence_is_valid(self):
        g = spare_ring(6)
        wire = g.out_wire(2, 1)
        ops = validate_wire_ops(
            g,
            [
                WireMutation(5, "cut", wire),
                WireMutation(9, "heal", wire),
                WireMutation(14, "cut", wire),
            ],
        )
        assert [op.kind for op in ops] == ["cut", "heal", "cut"]

    def test_add_can_reuse_port_freed_by_cut(self):
        g = spare_ring(6)
        victim = g.out_wire(2, 1)  # frees out-port 1 of 2 and in-port 1 of 3
        rewired = Wire(2, 1, 5, 3)  # reuses the freed out-port, new target
        validate_wire_ops(
            g,
            [WireMutation(5, "cut", victim), WireMutation(9, "add", rewired)],
        )

    @pytest.mark.parametrize("engine_cls", [DynamicEngine, FlatDynamicEngine])
    def test_heal_restores_traffic(self, engine_cls):
        g = spare_ring(8)
        wire = g.out_wire(4, 1)
        procs = [GTDProcessor() for _ in g.nodes()]
        engine = engine_cls(
            g,
            list(procs),
            [WireMutation(10, "cut", wire), WireMutation(30, "heal", wire)],
        )
        engine.run(max_ticks=50000, until=lambda: procs[0].terminal)
        assert engine.effective_topology() == g
        assert engine.lost_characters > 0  # the cut window did bite

    @pytest.mark.parametrize("engine_cls", [DynamicEngine, FlatDynamicEngine])
    def test_effective_topology_tracks_heal(self, engine_cls):
        g = spare_ring(6)
        wire = g.out_wire(2, 1)
        procs = [GTDProcessor() for _ in g.nodes()]
        engine = engine_cls(g, list(procs), [WireMutation(0, "cut", wire)])
        assert engine.effective_topology().out_wire(2, 1) is None
        # drive the clock past a heal
        engine._ops = validate_wire_ops(
            g, [WireMutation(0, "cut", wire), WireMutation(1, "heal", wire)]
        )
        engine._cursor = 1
        engine.start()
        engine.step_tick()
        assert engine.effective_topology() == g


class TestIdleParity:
    @pytest.mark.parametrize("cut_tick", [10, 18, 22, 30])
    def test_run_to_idle_ticks_match_after_cut(self, cut_tick):
        """A drain whose every entry dies on a cut wire must not leave an
        empty wheel bucket keeping the flat engine 'busy' an extra tick."""
        g = build_family("bidirectional-ring", 6)
        wire = g.out_wire(3, 1)
        idle_ticks = {}
        for name, engine_cls in (
            ("object", DynamicEngine),
            ("flat", FlatDynamicEngine),
        ):
            procs = [GTDProcessor() for _ in g.nodes()]
            engine = engine_cls(
                g, list(procs), [WireMutation(cut_tick, "cut", wire)]
            )
            engine.start()
            idle_ticks[name] = engine.run_to_idle(max_ticks=100000)
            assert engine.is_idle()
        assert idle_ticks["object"] == idle_ticks["flat"]


class TestWireStateBookkeeping:
    def test_added_wire_on_cut_port_keeps_base_wire_healable(self):
        g = spare_ring(6)
        state = WireState(g)
        base = g.out_wire(2, 1)
        state.cut(base)
        assert base in state.heal_candidates()
        borrowed = Wire(2, 1, 4, 3)  # an addition borrowing the cut port
        state.attach(borrowed)
        assert base not in state.heal_candidates()  # port occupied
        state.cut(borrowed)
        assert base in state.heal_candidates()  # healable again
        state.attach(base)
        assert state.heal_candidates() == []
        assert state.snapshot() == g


class TestTimelineRuns:
    def test_timeline_run_reports_phase_and_ops(self):
        g = spare_ring(8)
        program = compile_timeline("frontier:k=2@0.25", g, seed=0)
        result = run_dynamic_gtd(
            g, program, max_ticks=program.horizon * 3 + 1000
        )
        assert result.outcome is not DynamicOutcome.ACCURATE
        assert result.applied_ops == 2
        assert result.phase.startswith("cut@")
        assert result.hops > 0

    def test_plain_mutation_list_has_no_phase(self):
        g = spare_ring(6)
        result = run_dynamic_gtd(g, [])
        assert result.outcome is DynamicOutcome.ACCURATE
        assert result.phase == ""
        assert result.hops == result.metrics.total_delivered

    def test_storm_then_full_heal_can_recover(self):
        # heal@ before the DFS revisits everything is not guaranteed to
        # save the map, but the final topology must equal the base graph
        # whenever every storm victim healed.
        g = spare_ring(10)
        program = compile_timeline(
            "storm:p=0.3@0.1+heal@0.15", g, seed=3
        )
        kinds = [op.kind for op in program.ops]
        assert kinds.count("cut") == kinds.count("heal")
        result = run_dynamic_gtd(g, program, max_ticks=program.horizon * 4)
        assert result.final_topology == g

    def test_phase_outcome_counts_aggregates(self):
        g = spare_ring(8)
        results = []
        for seed in range(3):
            program = compile_timeline("frontier:k=1@0.3", g, seed=seed)
            results.append(
                run_dynamic_gtd(g, program, max_ticks=program.horizon * 3)
            )
        rows = phase_outcome_counts(results)
        assert rows, "timeline runs must land in a phase"
        assert sum(n for _, _, n in rows) == 3
        for phase, outcome, _ in rows:
            assert "@" in phase
            assert outcome in {o.value for o in DynamicOutcome}

    def test_static_results_are_skipped_by_phase_table(self):
        class Shell:
            phase = ""
            outcome = "exact"

        assert phase_outcome_counts([Shell(), Shell()]) == ()


# ----------------------------------------------------------------------
# the campaign axis
# ----------------------------------------------------------------------
class TestFaultAxis:
    def test_timeline_fault_parses_and_canonicalizes(self):
        fault = parse_fault("storm:p=0.10@0.50")
        assert fault.kind == "timeline"
        assert str(fault) == "storm:p=0.1@0.5"

    def test_legacy_kinds_unchanged(self):
        assert str(parse_fault("shutdown:0.10")) == "shutdown:0.1"
        assert str(parse_fault("cut:0.50")) == "cut:0.5"
        assert parse_fault("none").kind == "none"

    def test_unknown_kind_still_a_fault_error(self):
        with pytest.raises(ReproError, match="unknown fault model"):
            parse_fault("melt:1")

    def test_scenario_spec_hash_invariant_across_spellings(self):
        # the satellite regression: equivalent spellings, equal addresses
        pairs = [
            ("cut:0.5", "cut:0.50"),
            ("shutdown:0.1", "shutdown:0.100"),
            ("storm:p=0.2@0.4", "storm:p=0.20@0.40"),
            ("churn:rate=0.05,period=0.25", "churn:rate=0.050,period=0.250"),
            ("cut@0.5", "cut:n=1@0.5"),
        ]
        for a, b in pairs:
            sa = Scenario("spare-ring", 10, a, 1)
            sb = Scenario("spare-ring", 10, b, 1)
            assert sa == sb, (a, b)
            assert sa.spec_hash() == sb.spec_hash(), (a, b)

    def test_spec_hashes_match_committed_goldens(self):
        """SPEC_HASH_FORMAT golden values: a changed canonical form must be
        a deliberate format bump, never an accident."""
        goldens = {
            ("de-bruijn", 8, "none", 0, "object"):
                "beb84c93761c1775ea9455b3b06a10a8c49ab6095183a603bfec4d2be20a5a92",
            ("de-bruijn", 8, "shutdown:0.1", 3, "object"):
                "7437ac071feff7462a689997c65d4ac3f91adf39f3b90918cbcf399007ca0f8c",
            ("spare-ring", 10, "cut:0.5", 1, "object"):
                "af48e6d2c5103e5697083ab2dc24e35ef095f34ed96f24f60078b01d21070c76",
            ("spare-ring", 10, "add:0.5", 2, "flat"):
                "2ccbbdcd1ebe71efa7f8769a3e97ab4a794e0d4cebc757d9846e02ce6e218b2a",
            ("spare-ring", 10, "storm:p=0.2@0.4+heal@0.9", 4, "object"):
                "0c607d8d2cf8c57a7936a3254f0c7a2f4955a73b6219ac32e2afa46e47bb42bc",
            ("spare-ring", 12, "churn:rate=0.05,period=0.25", 0, "object"):
                "7665c055dd1490a214d31574004533b3a6e48c9aae76abf1f59511cd6a2882a2",
        }
        for (family, size, fault, seed, backend), expected in goldens.items():
            scenario = Scenario(family, size, fault, seed, backend)
            assert scenario.spec_hash() == expected, scenario

    def test_timeline_scenario_runs_and_stores_phase(self, tmp_path):
        from repro.store import ResultStore

        scenario = Scenario("spare-ring", 8, "frontier:k=1@0.3", 0)
        result = run_scenario(scenario)
        assert result.phase.startswith("cut@")
        store = ResultStore(tmp_path / "store")
        store.put(result)
        reopened = ResultStore(tmp_path / "store")
        assert reopened.get(scenario) == result


# ----------------------------------------------------------------------
# fault legality: every kind x every family (satellite property test)
# ----------------------------------------------------------------------
TIMELINE_FAULTS = [
    "storm:p=0.3@0.4",
    "churn:rate=0.2,period=0.3",
    "frontier:k=2@0.5",
    "cut:n=2@0.5",
    "add:n=2@0.5",
    "cut@0.3+heal@0.7",
]


@pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
@pytest.mark.parametrize("fault", ["shutdown:0.2"] + TIMELINE_FAULTS)
def test_fault_legality_on_every_family(family, fault):
    """Applying any fault kind to any family yields a legal strongly-
    connected PortGraph or raises TopologyError — never a silently
    illegal graph."""
    graph = build_family(family, 9, seed=0)
    model = parse_fault(fault)
    if model.kind == "shutdown":
        try:
            degraded = shutdown_out_ports(graph, model.param, seed=11)
        except TopologyError:
            return
        assert is_strongly_connected(degraded)
        return
    try:
        program = model.timeline.compile(graph, horizon=120, seed=11)
        final = program.final_topology(graph)
    except TopologyError:
        return  # infeasible on this family: loud, not silent
    assert final.frozen
    assert is_strongly_connected(final)


# ----------------------------------------------------------------------
# fault sampling determinism across processes (satellite)
# ----------------------------------------------------------------------
def test_shutdown_pattern_identical_in_subprocess():
    graph = build_family("hypercube", 16, seed=0)
    local = sorted(shutdown_out_ports(graph, 0.2, seed=42).wires())
    script = (
        "from repro.campaigns.spec import build_family\n"
        "from repro.topology.faults import shutdown_out_ports\n"
        "g = build_family('hypercube', 16, seed=0)\n"
        "print(sorted(shutdown_out_ports(g, 0.2, seed=42).wires()))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "99"},
        cwd=str(Path(__file__).parent.parent),
    )
    assert out.stdout.strip() == repr(local)


def test_timeline_program_identical_in_subprocess():
    graph = build_family("spare-ring", 10, seed=0)
    tl_spec = "storm:p=0.3@0.3+heal@0.8+churn:rate=0.1,period=0.4"
    local = parse_timeline(tl_spec).compile(graph, horizon=250, seed=5).ops
    script = (
        "from repro.campaigns.spec import build_family\n"
        "from repro.dynamics import parse_timeline\n"
        "g = build_family('spare-ring', 10, seed=0)\n"
        f"print(parse_timeline({tl_spec!r}).compile(g, horizon=250, seed=5).ops)\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "7"},
        cwd=str(Path(__file__).parent.parent),
    )
    assert out.stdout.strip() == repr(local)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_faults_subcommand_lists_vocabulary(self, capsys):
        from repro.cli import main

        assert main(["faults"]) == 0
        text = capsys.readouterr().out
        for kind in ("shutdown", "churn", "storm", "flap", "frontier", "heal"):
            assert kind in text

    def test_map_timeline_runs_and_reports_phases(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "map", "--family", "spare-ring", "--size", "8",
                    "--timeline", "frontier:k=1@0.3", "--backend", "flat",
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "timeline program" in text
        assert "outcome=" in text
        assert "phase" in text

    def test_map_timeline_rejects_repeats(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "map", "--family", "spare-ring", "--size", "8",
                    "--timeline", "cut@0.5", "--repeats", "3",
                ]
            )
            == 2
        )
        assert "campaign --timeline" in capsys.readouterr().err

    def test_campaign_timeline_axis_and_phase_table(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "campaign", "--families", "spare-ring", "--sizes", "8",
                    "--timeline", "frontier:k=1@0.3", "--seeds", "2",
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "outcomes by timeline phase" in text
        assert "frontier:k=1@0.3" in text
