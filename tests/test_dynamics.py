"""Dynamic networks: mutations mid-protocol corrupt the result (paper §1.1)."""

import pytest

from repro.dynamics import DynamicOutcome, WireMutation, run_dynamic_gtd
from repro.dynamics.engine import DynamicEngine
from repro.errors import TopologyError
from repro.protocol.gtd import GTDProcessor
from repro.topology.portgraph import PortGraph, Wire


def spare_port_ring(n: int) -> PortGraph:
    g = PortGraph(n, 3)
    for u in range(n):
        g.add_wire(u, 1, (u + 1) % n, 1)
        g.add_wire(u, 2, (u - 1) % n, 2)
    return g.freeze()


class TestWireMutation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            WireMutation(tick=0, kind="swap", wire=Wire(0, 1, 1, 1))

    def test_rejects_negative_tick(self):
        with pytest.raises(ValueError):
            WireMutation(tick=-1, kind="cut", wire=Wire(0, 1, 1, 1))

    def test_cut_requires_existing_wire(self, ring4):
        procs = [GTDProcessor() for _ in ring4.nodes()]
        bad = WireMutation(tick=5, kind="cut", wire=Wire(0, 1, 3, 1))
        with pytest.raises(TopologyError):
            DynamicEngine(ring4, list(procs), [bad])

    def test_add_requires_free_ports(self, ring4):
        procs = [GTDProcessor() for _ in ring4.nodes()]
        bad = WireMutation(tick=5, kind="add", wire=Wire(0, 1, 2, 1))
        with pytest.raises(TopologyError):
            DynamicEngine(ring4, list(procs), [bad])


class TestOutcomes:
    def test_no_mutations_accurate(self):
        g = spare_port_ring(6)
        result = run_dynamic_gtd(g, [])
        assert result.outcome is DynamicOutcome.ACCURATE
        assert result.lost_characters == 0

    def test_post_termination_mutation_accurate(self):
        g = spare_port_ring(6)
        victim = g.out_wire(3, 1)
        result = run_dynamic_gtd(
            g, [WireMutation(tick=10**7, kind="cut", wire=victim)]
        )
        assert result.outcome is DynamicOutcome.ACCURATE

    def test_early_cut_never_accurate(self):
        g = spare_port_ring(8)
        victim = g.out_wire(4, 1)
        baseline = run_dynamic_gtd(g, []).ticks
        result = run_dynamic_gtd(
            g,
            [WireMutation(tick=baseline // 4, kind="cut", wire=victim)],
            max_ticks=baseline * 3,
        )
        assert result.outcome is not DynamicOutcome.ACCURATE

    def test_mid_add_is_stale(self):
        g = spare_port_ring(8)
        result = run_dynamic_gtd(
            g, [WireMutation(tick=100, kind="add", wire=Wire(0, 3, 4, 3))]
        )
        # the DFS never probes the new port: the map misses the wire
        assert result.outcome is DynamicOutcome.STALE
        assert result.recovered is not None
        assert len(result.recovered.wires) == g.num_wires  # old count

    def test_effective_topology_reflects_mutations(self):
        g = spare_port_ring(4)
        procs = [GTDProcessor() for _ in g.nodes()]
        victim = g.out_wire(2, 1)
        engine = DynamicEngine(
            g,
            list(procs),
            [
                WireMutation(tick=0, kind="cut", wire=victim),
                WireMutation(tick=0, kind="add", wire=Wire(0, 3, 2, 3)),
            ],
        )
        current = engine.effective_topology()
        assert current.num_wires == g.num_wires  # one cut, one added
        assert current.out_wire(2, 1) is None
        assert current.out_wire(0, 3) == Wire(0, 3, 2, 3)

    def test_lost_characters_counted(self):
        g = spare_port_ring(8)
        victim = g.out_wire(4, 1)
        baseline = run_dynamic_gtd(g, []).ticks
        result = run_dynamic_gtd(
            g,
            [WireMutation(tick=baseline // 3, kind="cut", wire=victim)],
            max_ticks=baseline * 3,
        )
        assert result.lost_characters > 0

    def test_added_wire_carries_characters(self):
        # Deliveries over added wires do reach the destination processor:
        # run with an addition from tick 0 and confirm traffic flows by
        # checking the run completes (stale, but alive).
        g = spare_port_ring(6)
        result = run_dynamic_gtd(
            g, [WireMutation(tick=0, kind="add", wire=Wire(1, 3, 4, 3))]
        )
        assert result.outcome in (DynamicOutcome.STALE, DynamicOutcome.ACCURATE)
        assert result.ticks > 0
