"""Direct handler-level tests of the protocol automaton.

These drive a single :class:`ProtocolProcessor` by hand — no engine — to
pin down the strict-protocol behaviour the integration tests can't reach:
violation paths, debris handling (deviation D6), interception gating and
register lifecycle.
"""

import pytest

from repro.errors import ProtocolViolation
from repro.protocol.automaton import ProtocolProcessor
from repro.sim.characters import (
    Char,
    MSG_DFS_RETURN,
    SCOPE_BCA,
    SCOPE_RCA,
    make_body,
    make_head,
    make_tail,
)
from repro.sim.engine import NodeContext


def attach(proc: ProtocolProcessor, *, is_root: bool = False,
           in_ports=(1, 2), out_ports=(1, 2)) -> ProtocolProcessor:
    proc.attach(
        NodeContext(
            node=0,
            is_root=is_root,
            in_ports=tuple(in_ports),
            out_ports=tuple(out_ports),
            pipe=lambda label, data: None,
        )
    )
    proc.begin_tick(1)
    return proc


def outbox_kinds(proc: ProtocolProcessor) -> list[str]:
    return [c.kind for c in proc.outbox_chars()]


class TestGrowingDebris:
    def test_stray_body_at_unvisited_is_dropped(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_body("IG", 1, 1))
        assert not proc.growing["IG"].visited
        assert outbox_kinds(proc) == []

    def test_stray_tail_at_unvisited_is_dropped(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_tail("OG"))
        assert outbox_kinds(proc) == []

    def test_head_claims_and_floods(self):
        proc = attach(ProtocolProcessor())
        proc.handle(2, make_head("IG", 1, 1))
        assert proc.growing["IG"].visited
        assert proc.growing["IG"].parent_in == 2
        assert outbox_kinds(proc) == ["IGH", "IGH"]  # both out-ports

    def test_non_parent_chars_ignored(self):
        proc = attach(ProtocolProcessor())
        proc.handle(2, make_head("IG", 1, 1))
        before = len(list(proc.outbox_chars()))
        proc.handle(1, make_body("IG", 1, 1))  # wrong port
        assert len(list(proc.outbox_chars())) == before

    def test_tail_appends_position_characters(self):
        proc = attach(ProtocolProcessor())
        proc.handle(2, make_head("IG", 1, 1))
        proc.purge_outbox(lambda c: True)
        proc.handle(2, make_tail("IG"))
        kinds = outbox_kinds(proc)
        # one fresh body per out-port plus the forwarded tail per out-port
        assert kinds.count("IGB") == 2
        assert kinds.count("IGT") == 2

    def test_families_do_not_interact(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("IG", 1, 1))
        proc.handle(2, make_head("BG", 1, 1))
        assert proc.growing["IG"].parent_in == 1
        assert proc.growing["BG"].parent_in == 2


class TestKillHandling:
    def test_kill_erases_marks_and_rebroadcasts(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("IG", 1, 1))
        proc.handle(1, make_head("OG", 2, 1))
        proc.purge_outbox(lambda c: True)
        proc.handle(2, Char("KILL", payload=SCOPE_RCA))
        assert not proc.growing["IG"].visited
        assert not proc.growing["OG"].visited
        assert outbox_kinds(proc) == ["KILL", "KILL"]

    def test_kill_purges_resting_characters(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("IG", 1, 1))  # queues IGH copies
        proc.growing["IG"].clear()             # marks gone, chars resting
        proc.handle(2, Char("KILL", payload=SCOPE_RCA))
        kinds = outbox_kinds(proc)
        assert "IGH" not in kinds
        assert "KILL" in kinds  # purged characters still trigger relay

    def test_kill_absorbed_when_nothing_to_do(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, Char("KILL", payload=SCOPE_RCA))
        assert outbox_kinds(proc) == []

    def test_bca_kill_leaves_rca_marks(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("IG", 1, 1))
        proc.handle(1, make_head("BG", 1, 1))
        proc.purge_outbox(lambda c: True)
        proc.handle(2, Char("KILL", payload=SCOPE_BCA))
        assert proc.growing["IG"].visited      # untouched
        assert not proc.growing["BG"].visited  # erased


class TestDyingViolations:
    def test_second_head_while_relaying(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("ID", 2, 1))
        with pytest.raises(ProtocolViolation):
            proc.handle(1, make_head("ID", 2, 1))

    def test_body_without_head(self):
        proc = attach(ProtocolProcessor())
        with pytest.raises(ProtocolViolation):
            proc.handle(1, make_body("OD", 1, 1))

    def test_head_sets_loop_slot_and_relay(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("ID", 2, 1))
        assert proc.loop.pred1 == 1 and proc.loop.succ1 == 2
        assert proc.relay["ID"].active and proc.relay["ID"].promote_next

    def test_body_promoted_to_head(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("ID", 2, 1))
        proc.handle(1, make_body("ID", 1, 2))
        assert outbox_kinds(proc) == ["IDH"]
        proc.handle(1, make_body("ID", 2, 2))
        assert outbox_kinds(proc) == ["IDH", "IDB"]

    def test_tail_finishes_relay(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("OD", 2, 1))
        proc.handle(1, make_tail("OD"))
        assert not proc.relay["OD"].active
        assert outbox_kinds(proc) == ["ODT"]

    def test_id_and_od_relays_independent(self):
        # A processor on both canonical paths relays ID and OD concurrently.
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("ID", 2, 1))
        proc.handle(2, make_head("OD", 1, 1))
        assert proc.loop.pred1 == 1 and proc.loop.pred2 == 2
        proc.handle(1, make_body("ID", 1, 1))
        proc.handle(2, make_body("OD", 2, 1))
        assert outbox_kinds(proc) == ["IDH", "ODH"]


class TestLoopTokenViolations:
    def test_token_off_loop(self):
        proc = attach(ProtocolProcessor())
        with pytest.raises(ProtocolViolation):
            proc.handle(1, Char("FWD", 1, 1))

    def test_token_wrong_port(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("ID", 2, 1))  # pred1=1
        with pytest.raises(ProtocolViolation):
            proc.handle(2, Char("BACK"))

    def test_bdone_off_loop(self):
        proc = attach(ProtocolProcessor())
        with pytest.raises(ProtocolViolation):
            proc.handle(1, Char("BDONE"))

    def test_unmark_off_loop(self):
        proc = attach(ProtocolProcessor())
        with pytest.raises(ProtocolViolation):
            proc.handle(1, Char("UNMARK", payload=SCOPE_RCA))
        with pytest.raises(ProtocolViolation):
            proc.handle(1, Char("UNMARK", payload=SCOPE_BCA))

    def test_token_routed_through_slot(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("ID", 2, 1))
        proc.handle(1, Char("FWD", 3, 3))
        assert outbox_kinds(proc) == ["FWD"]


class TestInitiatorGuards:
    def test_rca_requires_idle(self):
        proc = attach(ProtocolProcessor())
        proc.start_rca(Char("FWD", 1, 1))
        with pytest.raises(ProtocolViolation):
            proc.start_rca(Char("BACK"))

    def test_root_never_initiates_rca(self):
        proc = attach(ProtocolProcessor(), is_root=True)
        with pytest.raises(ProtocolViolation):
            proc.start_rca(Char("FWD", 1, 1))

    def test_bca_requires_idle(self):
        proc = attach(ProtocolProcessor())
        proc.start_bca(1, MSG_DFS_RETURN)
        with pytest.raises(ProtocolViolation):
            proc.start_bca(2, MSG_DFS_RETURN)

    def test_bca_requires_connected_in_port(self):
        proc = attach(ProtocolProcessor(), in_ports=(1,))
        with pytest.raises(ProtocolViolation):
            proc.start_bca(2, MSG_DFS_RETURN)

    def test_rca_floods_ig_heads(self):
        proc = attach(ProtocolProcessor())
        proc.start_rca(Char("FWD", 1, 1))
        kinds = outbox_kinds(proc)
        assert kinds.count("IGH") == 2 and kinds.count("IGT") == 2
        assert proc.growing["IG"].visited  # self-marked origin

    def test_dfs_without_gtd_layer(self):
        proc = attach(ProtocolProcessor())
        with pytest.raises(ProtocolViolation):
            proc.handle(1, Char("DFS", 1, 1))

    def test_unknown_character(self):
        proc = attach(ProtocolProcessor())
        with pytest.raises(ProtocolViolation):
            proc.handle(1, Char("XYZZY"))


class TestBdTailDelivery:
    def test_penultimate_detection_and_message(self):
        received = []
        proc = attach(ProtocolProcessor())
        proc._on_bca_message = received.append  # type: ignore[method-assign]
        proc.handle(1, make_head("BD", 2, 1))
        proc.handle(1, make_tail("BD", payload="PING"))
        assert received == ["PING"]
        assert proc.bca_slot.is_target
        assert outbox_kinds(proc) == ["BDT"]  # tail continues to B

    def test_mid_loop_cell_not_target(self):
        received = []
        proc = attach(ProtocolProcessor())
        proc._on_bca_message = received.append  # type: ignore[method-assign]
        proc.handle(1, make_head("BD", 2, 1))
        proc.handle(1, make_body("BD", 1, 1))
        proc.handle(1, make_tail("BD", payload="PING"))
        assert received == []
        assert not proc.bca_slot.is_target

    def test_tail_without_message_is_violation(self):
        proc = attach(ProtocolProcessor())
        proc.handle(1, make_head("BD", 2, 1))
        with pytest.raises(ProtocolViolation):
            proc.handle(1, make_tail("BD"))


class TestRootDuties:
    def test_root_converts_ig_to_og(self):
        proc = attach(ProtocolProcessor(), is_root=True)
        proc.handle(1, make_head("IG", 2, 1))
        assert outbox_kinds(proc) == ["OGH", "OGH"]
        assert proc.growing["OG"].visited  # origin-marked

    def test_root_closed_after_accepting(self):
        proc = attach(ProtocolProcessor(), is_root=True)
        proc.handle(1, make_head("IG", 2, 1))
        proc.purge_outbox(lambda c: True)
        proc.handle(2, make_head("IG", 1, 1))  # second snake: ignored
        assert outbox_kinds(proc) == []

    def test_root_appends_own_body_on_tail(self):
        proc = attach(ProtocolProcessor(), is_root=True)
        proc.handle(1, make_head("IG", 2, 1))
        proc.purge_outbox(lambda c: True)
        proc.handle(1, make_tail("IG"))
        kinds = outbox_kinds(proc)
        assert kinds.count("OGB") == 2 and kinds.count("OGT") == 2

    def test_root_id_to_od_conversion(self):
        proc = attach(ProtocolProcessor(), is_root=True)
        proc.handle(1, make_head("IG", 2, 1))
        proc.handle(1, make_tail("IG"))
        proc.purge_outbox(lambda c: True)
        proc.handle(2, make_head("ID", 1, 2))
        assert proc.loop.pred1 == 2 and proc.loop.succ2 == 1
        proc.handle(2, make_body("ID", 2, 2))
        assert outbox_kinds(proc) == ["ODH"]

    def test_root_rejects_id_body_before_head(self):
        proc = attach(ProtocolProcessor(), is_root=True)
        proc.handle(1, make_head("IG", 2, 1))
        proc.handle(1, make_tail("IG"))
        with pytest.raises(ProtocolViolation):
            proc.handle(2, make_body("ID", 1, 1))
