"""Larger-scale confidence runs (still seconds, not minutes).

The unit and property tests stay tiny for speed; these runs push N into the
dozens on the families with the most protocol churn, so size-dependent bugs
(port exhaustion, queue ordering at high fan-in, long snake pipelines)
cannot hide behind small-N coincidences.
"""

import pytest

from repro import determine_topology
from repro.analysis.run_stats import episode_scaling, rca_episodes
from repro.topology import generators


@pytest.mark.parametrize(
    "name,factory",
    [
        ("de_bruijn_32", lambda: generators.de_bruijn(2, 5)),
        ("butterfly_24", lambda: generators.wrapped_butterfly(3)),
        ("tree_with_loop_31", lambda: generators.tree_with_loop(4, seed=7)),
        ("manhattan_36", lambda: generators.manhattan_grid(6, 6)),
        ("random_40", lambda: generators.random_strongly_connected(
            40, extra_edges=30, seed=13
        )),
        ("directed_ring_48", lambda: generators.directed_ring(48)),
    ],
)
def test_exact_recovery_at_scale(name, factory):
    graph = factory()
    result = determine_topology(graph)
    assert result.matches(graph), name
    assert result.recovered.num_nodes == graph.num_nodes
    # accounting invariants hold at scale too
    assert result.bca_runs == graph.num_wires
    expected_rca = 2 * graph.num_wires - graph.in_degree(0) - graph.out_degree(0)
    assert result.rca_runs == expected_rca


def test_episode_scaling_at_scale():
    graph = generators.bidirectional_ring(24)
    result = determine_topology(graph)
    fit = episode_scaling(rca_episodes(result.transcript))
    assert fit.r_squared > 0.999
    assert fit.slope == pytest.approx(9.0, abs=0.5)


def test_signatures_all_distinct_at_scale():
    graph = generators.de_bruijn(2, 5)  # 32 nodes
    result = determine_topology(graph)
    sigs = list(result.recovered.signatures.values())
    assert len(set(sigs)) == 32
