"""Generator postconditions: legality, strong connectivity, stated shapes."""

import pytest

from repro.errors import TopologyError
from repro.topology import generators
from repro.topology.properties import diameter, is_strongly_connected


def assert_legal(graph):
    assert graph.frozen
    assert is_strongly_connected(graph)
    for u in graph.nodes():
        assert 1 <= graph.out_degree(u) <= graph.delta
        assert 1 <= graph.in_degree(u) <= graph.delta


class TestRings:
    @pytest.mark.parametrize("n", [1, 2, 3, 10])
    def test_directed_ring(self, n):
        g = generators.directed_ring(n)
        assert_legal(g)
        assert g.num_wires == n
        if n > 1:
            assert diameter(g) == n - 1

    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_bidirectional_ring(self, n):
        g = generators.bidirectional_ring(n)
        assert_legal(g)
        assert g.num_wires == 2 * n
        assert diameter(g) == n // 2

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_bidirectional_line(self, n):
        g = generators.bidirectional_line(n)
        assert_legal(g)
        assert g.num_wires == 2 * (n - 1)
        assert diameter(g) == n - 1


class TestDeBruijnKautz:
    @pytest.mark.parametrize("k,length", [(2, 2), (2, 4), (3, 2)])
    def test_de_bruijn_shape(self, k, length):
        g = generators.de_bruijn(k, length)
        assert_legal(g)
        assert g.num_nodes == k**length
        assert g.delta == k
        assert diameter(g) == length

    def test_de_bruijn_has_self_loops(self):
        g = generators.de_bruijn(2, 3)
        self_loops = [w for w in g.wires() if w.src == w.dst]
        assert len(self_loops) == 2  # 000 and 111

    @pytest.mark.parametrize("k,length", [(2, 1), (2, 2), (3, 1)])
    def test_kautz_shape(self, k, length):
        g = generators.kautz(k, length)
        assert_legal(g)
        assert g.num_nodes == (k + 1) * k**length
        assert not any(w.src == w.dst for w in g.wires())

    def test_kautz_diameter_at_most_word_length_plus_one(self):
        g = generators.kautz(2, 2)
        assert diameter(g) <= 3


class TestHypercubeTorus:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_hypercube(self, dim):
        g = generators.hypercube(dim)
        assert_legal(g)
        assert g.num_nodes == 2**dim
        assert g.num_wires == dim * 2**dim
        assert diameter(g) == dim

    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 5), (4, 3)])
    def test_torus(self, rows, cols):
        g = generators.directed_torus(rows, cols)
        assert_legal(g)
        assert g.num_nodes == rows * cols
        assert g.num_wires == 2 * rows * cols
        assert diameter(g) == (rows - 1) + (cols - 1)

    def test_complete(self):
        g = generators.complete_bidirectional(6)
        assert_legal(g)
        assert g.num_wires == 30
        assert diameter(g) == 1


class TestRandomFamilies:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_strongly_connected(self, seed):
        g = generators.random_strongly_connected(12, extra_edges=8, seed=seed)
        assert_legal(g)
        assert g.num_wires >= 12

    def test_random_reproducible(self):
        a = generators.random_strongly_connected(10, extra_edges=5, seed=3)
        b = generators.random_strongly_connected(10, extra_edges=5, seed=3)
        assert a == b

    def test_random_single_node(self):
        g = generators.random_strongly_connected(1, seed=0)
        assert g.num_wires == 1  # one self-loop

    def test_random_no_self_loops_by_default(self):
        g = generators.random_strongly_connected(10, extra_edges=20, seed=1)
        assert not any(w.src == w.dst for w in g.wires())

    def test_extra_edges_negative(self):
        with pytest.raises(ValueError):
            generators.random_strongly_connected(5, extra_edges=-1)

    @pytest.mark.parametrize("degree", [2, 3])
    def test_random_regular(self, degree):
        g = generators.random_regular_digraph(10, degree, seed=4)
        assert_legal(g)
        for u in g.nodes():
            assert g.out_degree(u) == degree
            assert g.in_degree(u) == degree

    def test_random_regular_reproducible(self):
        a = generators.random_regular_digraph(8, 2, seed=9)
        b = generators.random_regular_digraph(8, 2, seed=9)
        assert a == b


class TestTreeWithLoop:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_shape(self, depth):
        g = generators.tree_with_loop(depth, seed=0)
        assert_legal(g)
        assert g.num_nodes == 2 ** (depth + 1) - 1
        leaves = 2**depth
        # tree wires: 2 per parent-child pair; loop wires: one per leaf
        assert g.num_wires == 2 * (g.num_nodes - 1) + leaves

    def test_leaf_count_helper(self):
        assert generators.tree_with_loop_leaf_count(3) == 8

    def test_diameter_logarithmic(self):
        g = generators.tree_with_loop(4, seed=1)
        # paper: diameter <= 2 log N + 1; here 2*depth + 1
        assert diameter(g) <= 2 * 4 + 1

    def test_explicit_order(self):
        g1 = generators.tree_with_loop(2, leaf_order=[0, 1, 2, 3])
        g2 = generators.tree_with_loop(2, leaf_order=[0, 2, 1, 3])
        assert g1 != g2

    def test_bad_order_rejected(self):
        with pytest.raises(TopologyError):
            generators.tree_with_loop(2, leaf_order=[0, 1, 2, 2])

    def test_degree_bound_five(self):
        g = generators.tree_with_loop(3, seed=5)
        assert g.delta == 5


def test_all_families_index():
    fams = generators.all_families()
    assert len(fams) >= 10
    for name, g in fams.items():
        assert_legal(g)


class TestWrappedButterfly:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_shape(self, dim):
        g = generators.wrapped_butterfly(dim)
        assert_legal(g)
        assert g.num_nodes == dim * 2**dim
        assert g.num_wires == 2 * g.num_nodes
        for u in g.nodes():
            assert g.out_degree(u) == 2

    def test_low_diameter(self):
        g = generators.wrapped_butterfly(3)
        assert diameter(g) <= 2 * 3

    def test_level_structure(self):
        g = generators.wrapped_butterfly(2)
        # node (level 0, row r) wires into level 1 rows r and r^1
        rows = 4
        targets = {w.dst for w in g.successors(0)}
        assert targets == {rows + 0, rows + 1}


class TestShuffleExchange:
    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_shape(self, dim):
        g = generators.shuffle_exchange(dim)
        assert_legal(g)
        assert g.num_nodes == 2**dim
        assert all(g.out_degree(u) == 2 for u in g.nodes())

    def test_self_loops_at_constants(self):
        g = generators.shuffle_exchange(3)
        loops = {w.src for w in g.wires() if w.src == w.dst}
        assert loops == {0, 2**3 - 1}

    def test_shuffle_wire_is_rotation(self):
        g = generators.shuffle_exchange(3)
        w = g.out_wire(0b011, 1)
        assert w.dst == 0b110


class TestRingOfRings:
    @pytest.mark.parametrize("outer,inner", [(2, 2), (3, 4), (5, 3)])
    def test_shape(self, outer, inner):
        g = generators.ring_of_rings(outer, inner)
        assert_legal(g)
        assert g.num_nodes == outer * inner
        assert g.num_wires == outer * inner + outer

    def test_gateways_have_degree_two(self):
        g = generators.ring_of_rings(3, 4)
        for s in range(3):
            assert g.out_degree(s * 4) == 2

    def test_inner_nodes_degree_one(self):
        g = generators.ring_of_rings(3, 4)
        assert g.out_degree(1) == 1


class TestManhattanGrid:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 4), (4, 4), (4, 6)])
    def test_shape(self, rows, cols):
        g = generators.manhattan_grid(rows, cols)
        assert_legal(g)
        assert g.num_nodes == rows * cols
        assert g.num_wires == 2 * rows * cols

    def test_rejects_odd_dimensions(self):
        with pytest.raises(TopologyError):
            generators.manhattan_grid(3, 4)
        with pytest.raises(TopologyError):
            generators.manhattan_grid(4, 5)

    def test_alternating_directions(self):
        g = generators.manhattan_grid(4, 4)
        # row 0 goes east: node 0 -> 1; row 1 goes west: node 5 -> 4
        assert any(w.dst == 1 for w in g.successors(0))
        assert any(w.dst == 4 for w in g.successors(5))
