"""Counting, transcript-capacity and scaling-verdict analyses (Section 5)."""

import math

import pytest

from repro.analysis.complexity import check_linear_scaling
from repro.analysis.counting import (
    exact_family_count,
    family_loop_arrangements,
    log2_family_count_lower_bound,
    tree_automorphism_count_log2,
    tree_family_description,
)
from repro.analysis.transcripts import (
    implied_lower_bound_ticks,
    log2_transcript_capacity,
    lower_bound_curve,
    minimum_ticks_to_distinguish,
)
from repro.errors import AnalysisError
from repro.sim.characters import alphabet_size


class TestLemma51Counting:
    def test_loop_arrangements(self):
        assert family_loop_arrangements(1) == 1          # (2-1)!
        assert family_loop_arrangements(2) == 6          # (4-1)!
        assert family_loop_arrangements(3) == math.factorial(7)

    def test_automorphisms(self):
        assert tree_automorphism_count_log2(2) == 3.0    # 2^(L-1), L=4

    def test_bound_formula(self):
        # log2((L-1)!) - (L-1)
        expected = math.log2(math.factorial(7)) - 7
        assert log2_family_count_lower_bound(3) == pytest.approx(expected, rel=1e-9)

    def test_bound_grows_like_n_log_n(self):
        # log G(N) / (N log N) approaches a positive constant.
        ratios = []
        for depth in (6, 8, 10, 12):
            point = tree_family_description(depth)
            ratios.append(point.log2_count_bound / point.log2_n_to_the_n)
        assert all(r > 0.1 for r in ratios)
        assert abs(ratios[-1] - ratios[-2]) < 0.1  # converging

    def test_description_fields(self):
        point = tree_family_description(3)
        assert point.num_nodes == 15
        assert point.leaves == 8
        assert point.diameter_bound == 7

    def test_exact_count_depth_1(self):
        # Two leaves: only one loop arrangement.
        assert exact_family_count(1) == 1

    def test_exact_count_depth_2_within_bounds(self):
        exact = exact_family_count(2)
        assert 1 <= exact <= family_loop_arrangements(2)
        assert exact >= 2 ** log2_family_count_lower_bound(2)

    def test_exact_count_guard(self):
        with pytest.raises(AnalysisError):
            exact_family_count(3)  # 5040 graphs: guarded by default


class TestLemma52Transcripts:
    def test_capacity_formula(self):
        expected = 3 * 10 * math.log2(alphabet_size(3))
        assert log2_transcript_capacity(3, 10) == pytest.approx(expected)

    def test_capacity_zero_ticks(self):
        assert log2_transcript_capacity(2, 0) == 0.0

    def test_capacity_rejects_negative(self):
        with pytest.raises(AnalysisError):
            log2_transcript_capacity(2, -1)

    def test_minimum_ticks_pigeonhole(self):
        # Need enough ticks that capacity >= topology count.
        t = minimum_ticks_to_distinguish(1000.0, 5)
        assert log2_transcript_capacity(5, t) >= 1000.0
        assert log2_transcript_capacity(5, t - 1) < 1000.0

    def test_minimum_ticks_trivial(self):
        assert minimum_ticks_to_distinguish(0.0, 2) == 0
        assert minimum_ticks_to_distinguish(-5.0, 2) == 0


class TestTheorem51:
    def test_implied_bound_monotone_in_depth(self):
        bounds = [implied_lower_bound_ticks(d, 5) for d in range(2, 12)]
        assert bounds == sorted(bounds)
        assert bounds[-1] > bounds[0] > 0 or bounds[0] == 0

    def test_curve_shape_superlinear(self):
        # T(N)/N grows: the bound is genuinely super-linear (N log N).
        curve = lower_bound_curve(list(range(6, 14)), 5)
        per_node = [ticks / n for n, ticks in curve]
        assert per_node[-1] > per_node[0]

    def test_curve_rows(self):
        curve = lower_bound_curve([3, 4], 5)
        assert curve[0][0] == 15 and curve[1][0] == 31


class TestScalingVerdicts:
    def test_perfect_line(self):
        verdict = check_linear_scaling([1, 2, 3, 4], [10, 20, 30, 40])
        assert verdict.is_linear
        assert verdict.ratio_spread == pytest.approx(1.0)

    def test_quadratic_rejected(self):
        xs = [1, 2, 4, 8, 16, 32]
        verdict = check_linear_scaling(xs, [x * x for x in xs])
        assert not verdict.is_linear

    def test_noisy_line_accepted(self):
        xs = [10, 20, 30, 40, 50]
        ys = [105, 195, 310, 405, 490]
        assert check_linear_scaling(xs, ys).is_linear

    def test_rejects_nonpositive_x(self):
        with pytest.raises(AnalysisError):
            check_linear_scaling([0, 1], [1, 2])
