"""Unit tests for the PortGraph model and builder."""

import pytest

from repro.errors import (
    DegreeBoundError,
    PortInUseError,
    NotStronglyConnectedError,
    TopologyError,
)
from repro.topology.builder import PortGraphBuilder
from repro.topology.portgraph import PortGraph, Wire


class TestConstruction:
    def test_basic_wire(self):
        g = PortGraph(2, 2)
        w = g.add_wire(0, 1, 1, 2)
        assert w == Wire(0, 1, 1, 2)
        assert g.out_wire(0, 1) == w
        assert g.in_wire(1, 2) == w
        assert g.num_wires == 1

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            PortGraph(2, 1)  # paper requires delta >= 2

    def test_invalid_num_nodes(self):
        with pytest.raises(ValueError):
            PortGraph(0, 2)

    def test_port_zero_rejected(self):
        g = PortGraph(2, 2)
        with pytest.raises(DegreeBoundError):
            g.add_wire(0, 0, 1, 1)

    def test_port_above_delta_rejected(self):
        g = PortGraph(2, 2)
        with pytest.raises(DegreeBoundError):
            g.add_wire(0, 3, 1, 1)

    def test_out_port_reuse_rejected(self):
        g = PortGraph(3, 2)
        g.add_wire(0, 1, 1, 1)
        with pytest.raises(PortInUseError):
            g.add_wire(0, 1, 2, 1)

    def test_in_port_reuse_rejected(self):
        g = PortGraph(3, 2)
        g.add_wire(0, 1, 2, 1)
        with pytest.raises(PortInUseError):
            g.add_wire(1, 1, 2, 1)

    def test_bad_node_id(self):
        g = PortGraph(2, 2)
        with pytest.raises(TopologyError):
            g.add_wire(0, 1, 5, 1)
        with pytest.raises(TopologyError):
            g.add_wire(-1, 1, 0, 1)

    def test_self_loop_allowed(self):
        g = PortGraph(1, 2)
        g.add_wire(0, 1, 0, 1)
        assert g.num_wires == 1

    def test_parallel_edges_on_distinct_ports(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 1, 1)
        g.add_wire(0, 2, 1, 2)
        assert g.num_wires == 2


class TestFreeze:
    def test_freeze_requires_in_and_out(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 1, 1)
        with pytest.raises(TopologyError):
            g.freeze()  # node 1 has no out-port, node 0 no in-port

    def test_freeze_blocks_mutation(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 1, 1)
        g.add_wire(1, 1, 0, 1)
        g.freeze()
        assert g.frozen
        with pytest.raises(TopologyError):
            g.add_wire(0, 2, 1, 2)

    def test_freeze_returns_self(self):
        g = PortGraph(1, 2)
        g.add_wire(0, 1, 0, 1)
        assert g.freeze() is g


class TestInspection:
    def test_connected_ports(self, ring4):
        for u in ring4.nodes():
            assert ring4.connected_out_ports(u) == (1, 2)
            assert ring4.connected_in_ports(u) == (1, 2)

    def test_successors_ordered_by_port(self, ring4):
        succ = ring4.successors(0)
        assert [w.out_port for w in succ] == [1, 2]

    def test_predecessors(self, ring4):
        preds = ring4.predecessors(0)
        assert len(preds) == 2
        assert all(w.dst == 0 for w in preds)

    def test_degrees(self, dring5):
        for u in dring5.nodes():
            assert dring5.out_degree(u) == 1
            assert dring5.in_degree(u) == 1

    def test_edge_set_roundtrip(self, ring4):
        assert len(ring4.edge_set()) == ring4.num_wires

    def test_equality_and_hash(self, two_node_cycle):
        b = PortGraphBuilder(2)
        b.connect(0, 1).connect(1, 0)
        other = b.build()
        assert other == two_node_cycle
        assert hash(other) == hash(two_node_cycle)

    def test_inequality_different_wires(self, two_node_cycle):
        g = PortGraph(2, 2)
        g.add_wire(0, 2, 1, 1)
        g.add_wire(1, 1, 0, 1)
        assert g.freeze() != two_node_cycle

    def test_eq_not_implemented_for_other_types(self, ring4):
        assert ring4 != "graph"

    def test_require_strongly_connected_passes(self, ring4):
        assert ring4.require_strongly_connected() is ring4

    def test_require_strongly_connected_fails(self):
        # Two disconnected self-loop islands: legal but not strongly connected.
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 0, 1)
        g.add_wire(1, 1, 1, 1)
        g.freeze()
        with pytest.raises(NotStronglyConnectedError):
            g.require_strongly_connected()

    def test_freeze_rejects_missing_in_port(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 1, 1)
        g.add_wire(1, 1, 1, 2)  # node 0 never receives
        with pytest.raises(TopologyError):
            g.freeze()


class TestBuilder:
    def test_auto_ports_lowest_first(self):
        b = PortGraphBuilder(3)
        b.connect(0, 1).connect(0, 2)
        g = b.connect(1, 0).connect(2, 0).build()
        assert g.out_wire(0, 1).dst == 1
        assert g.out_wire(0, 2).dst == 2

    def test_auto_delta_minimum_two(self):
        b = PortGraphBuilder(2)
        g = b.connect(0, 1).connect(1, 0).build()
        assert g.delta == 2

    def test_auto_delta_grows(self):
        b = PortGraphBuilder(4)
        for v in (1, 2, 3):
            b.connect_bidirectional(0, v)
        g = b.build()
        assert g.delta == 3

    def test_explicit_delta_too_small(self):
        b = PortGraphBuilder(4, delta=2)
        for v in (1, 2, 3):
            b.connect_bidirectional(0, v)
        with pytest.raises(DegreeBoundError):
            b.build()

    def test_connect_validates_ids(self):
        b = PortGraphBuilder(2)
        with pytest.raises(ValueError):
            b.connect(0, 5)

    def test_bidirectional_is_two_wires(self):
        b = PortGraphBuilder(2)
        g = b.connect_bidirectional(0, 1).build()
        assert g.num_wires == 2
        assert {(w.src, w.dst) for w in g.wires()} == {(0, 1), (1, 0)}

    def test_queued_edges(self):
        b = PortGraphBuilder(2)
        b.connect(0, 1)
        assert b.queued_edges() == [(0, 1)]

    def test_built_graph_is_frozen(self, ring4):
        assert ring4.frozen
