"""Graph property routines, cross-checked against networkx."""

import pytest

from repro.errors import NotStronglyConnectedError
from repro.topology import generators
from repro.topology.portgraph import PortGraph
from repro.topology.properties import (
    bfs_distances,
    diameter,
    eccentricity,
    is_strongly_connected,
    shortest_path_ports,
)


def to_networkx(graph: PortGraph):
    nx = pytest.importorskip("networkx")
    g = nx.MultiDiGraph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from((w.src, w.dst) for w in graph.wires())
    return g


class TestBfsDistances:
    def test_directed_ring(self):
        g = generators.directed_ring(5)
        assert bfs_distances(g, 0) == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 0, 1)
        g.add_wire(1, 1, 1, 1)
        g.freeze()
        assert bfs_distances(g, 0) == [0, -1]

    def test_source_distance_zero(self, debruijn8):
        for u in debruijn8.nodes():
            assert bfs_distances(debruijn8, u)[u] == 0

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: generators.directed_ring(7),
            lambda: generators.bidirectional_ring(8),
            lambda: generators.de_bruijn(2, 3),
            lambda: generators.directed_torus(3, 4),
            lambda: generators.random_strongly_connected(11, extra_edges=7, seed=2),
        ],
    )
    def test_matches_networkx(self, factory):
        nx = pytest.importorskip("networkx")
        graph = factory()
        ours = bfs_distances(graph, 0)
        theirs = nx.single_source_shortest_path_length(to_networkx(graph), 0)
        for node in graph.nodes():
            assert ours[node] == theirs[node]


class TestStrongConnectivity:
    def test_single_node(self, self_loop_single):
        assert is_strongly_connected(self_loop_single)

    def test_all_families(self):
        for name, g in generators.all_families().items():
            assert is_strongly_connected(g), name

    def test_one_way_pair_not_strong(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 1, 1)
        g.add_wire(1, 1, 1, 2)
        g.add_wire(0, 2, 0, 1)
        # node 1 never reaches node 0
        assert not is_strongly_connected(g)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        nx = pytest.importorskip("networkx")
        g = generators.random_strongly_connected(9, extra_edges=seed * 2, seed=seed)
        assert is_strongly_connected(g) == nx.is_strongly_connected(to_networkx(g))


class TestDiameter:
    def test_directed_ring(self):
        assert diameter(generators.directed_ring(6)) == 5

    def test_bidirectional_ring(self):
        assert diameter(generators.bidirectional_ring(8)) == 4

    def test_de_bruijn(self):
        assert diameter(generators.de_bruijn(2, 4)) == 4

    def test_torus(self):
        assert diameter(generators.directed_torus(3, 5)) == 2 + 4

    def test_complete(self):
        assert diameter(generators.complete_bidirectional(5)) == 1

    def test_single_node(self, self_loop_single):
        assert diameter(self_loop_single) == 0

    def test_eccentricity_unreachable_raises(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 0, 1)
        g.add_wire(1, 1, 1, 1)
        with pytest.raises(NotStronglyConnectedError):
            eccentricity(g, 0)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        nx = pytest.importorskip("networkx")
        g = generators.random_strongly_connected(8, extra_edges=6, seed=seed)
        assert diameter(g) == nx.diameter(to_networkx(g))


class TestShortestPathPorts:
    def test_trivial(self, ring4):
        assert shortest_path_ports(ring4, 2, 2) == []

    def test_adjacent(self, dring5):
        hops = shortest_path_ports(dring5, 0, 1)
        assert hops is not None and len(hops) == 1

    def test_length_matches_distance(self, debruijn8):
        for target in debruijn8.nodes():
            hops = shortest_path_ports(debruijn8, 0, target)
            assert hops is not None
            assert len(hops) == bfs_distances(debruijn8, 0)[target]

    def test_hops_are_real_wires(self, debruijn8):
        hops = shortest_path_ports(debruijn8, 0, 7)
        node = 0
        assert hops is not None
        for out_port, in_port in hops:
            wire = debruijn8.out_wire(node, out_port)
            assert wire is not None and wire.in_port == in_port
            node = wire.dst
        assert node == 7

    def test_unreachable_none(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 0, 1)
        g.add_wire(1, 1, 1, 1)
        assert shortest_path_ports(g, 0, 1) is None
