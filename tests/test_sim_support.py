"""Transcript, metrics, audit and the Processor outbox mechanics."""

from typing import Any

import pytest

from repro.sim.audit import assert_finite_state, state_atom_count, state_bound
from repro.sim.characters import Char, make_body, make_head, make_tail
from repro.sim.metrics import TrafficMetrics
from repro.sim.processor import Processor
from repro.sim.transcript import Transcript


class Dummy(Processor):
    def handle(self, in_port: int, char: Char) -> None:  # pragma: no cover
        pass

    def state_snapshot(self) -> dict[str, Any]:
        return {"a": 1, "b": (2, 3), "c": {"d": None}}


class TestTranscript:
    def test_record_and_filter(self):
        t = Transcript()
        t.record_recv(1, 2, make_head("IG", 1))
        t.record_send(2, 1, make_tail("IG"))
        t.record_pipe(3, "TERMINAL", ())
        assert len(t) == 3
        assert len(t.received()) == 1
        assert len(t.received("IGH")) == 1
        assert len(t.received("OGH")) == 0
        assert t.pipes()[0].label == "TERMINAL"
        assert t.pipes("OTHER") == []

    def test_disabled_skips_io_but_keeps_pipes(self):
        t = Transcript(enabled=False)
        t.record_recv(1, 1, make_head("IG", 1))
        t.record_send(1, 1, make_head("IG", 1))
        t.record_pipe(1, "X", (1,))
        assert len(t) == 1

    def test_event_order_preserved(self):
        t = Transcript()
        for tick in range(5):
            t.record_recv(tick, 1, make_body("IG", 1, 1))
        assert [e.tick for e in t.events()] == list(range(5))

    def test_iterable(self):
        t = Transcript()
        t.record_pipe(0, "A", ())
        assert [e.label for e in t] == ["A"]


class TestMetrics:
    def test_counts(self):
        m = TrafficMetrics()
        m.count_delivery(make_head("IG", 1))
        m.count_delivery(make_body("IG", 1, 1))
        m.count_delivery(Char("KILL", payload="RCA"))
        m.count_emission(make_head("IG", 1))
        assert m.total_delivered == 3
        assert m.delivered["IGH"] == 1
        assert m.emitted["IGH"] == 1

    def test_by_family_groups_snakes(self):
        m = TrafficMetrics()
        m.count_delivery(make_head("OG", 1))
        m.count_delivery(make_body("OG", 1, 1))
        m.count_delivery(make_tail("OG"))
        m.count_delivery(Char("DFS"))
        fam = m.by_family()
        assert fam["OG"] == 3
        assert fam["DFS"] == 1

    def test_snapshot_is_copy(self):
        m = TrafficMetrics()
        m.count_delivery(Char("DFS"))
        snap = m.snapshot()
        m.count_delivery(Char("DFS"))
        assert snap["DFS"] == 1


class TestOutbox:
    def test_send_residence_speed1(self):
        p = Dummy()
        p.begin_tick(10)
        # speed-1: residence 3 => due at 10 + 2, wire adds the third tick.
        p.send(1, make_head("IG", 1))
        assert p.next_due_tick() == 12

    def test_send_residence_speed3(self):
        p = Dummy()
        p.begin_tick(10)
        p.send(1, Char("KILL", payload="RCA"))
        assert p.next_due_tick() == 10

    def test_drain_due_returns_sorted(self):
        p = Dummy()
        p.begin_tick(0)
        p.send(1, make_head("IG", 1), extra_delay=1)   # due 3
        p.send(2, Char("KILL", payload="RCA"))         # due 0
        due = p.drain_due(5)
        assert [e.char.kind for e in due] == ["KILL", "IGH"]
        assert not p.has_pending_output()

    def test_drain_respects_due_tick(self):
        p = Dummy()
        p.begin_tick(0)
        p.send(1, make_head("IG", 1))  # due 2
        assert p.drain_due(1) == []
        assert len(p.drain_due(2)) == 1

    def test_purge_outbox(self):
        p = Dummy()
        p.begin_tick(0)
        p.send(1, make_head("IG", 1))
        p.send(1, make_head("BG", 1))
        removed = p.purge_outbox(lambda c: c.kind.startswith("IG"))
        assert removed == 1
        assert [c.kind for c in p.outbox_chars()] == ["BGH"]

    def test_broadcast_requires_ctx(self):
        p = Dummy()
        with pytest.raises(AssertionError):
            p.broadcast(make_head("IG", 1))


class TestAudit:
    def test_atom_count_nested(self):
        p = Dummy()
        # snapshot atoms: a=1, b tuple(2 atoms)+1, c dict-> d None=1 -> 5
        assert state_atom_count(p) == 5

    def test_outbox_counts_as_state(self):
        p = Dummy()
        p.begin_tick(0)
        base = state_atom_count(p)
        p.send(1, make_head("IG", 1))
        assert state_atom_count(p) == base + 1

    def test_bound_is_delta_only(self):
        assert state_bound(2) < state_bound(5)

    def test_assert_finite_state_passes(self):
        assert assert_finite_state(Dummy(), 2) == 5

    def test_assert_finite_state_fails_on_hoarder(self):
        class Hoarder(Dummy):
            def state_snapshot(self) -> dict[str, Any]:
                return {"memory": list(range(10_000))}

        with pytest.raises(AssertionError):
            assert_finite_state(Hoarder(), 2)

    def test_long_strings_count_per_char(self):
        class Stringy(Dummy):
            def state_snapshot(self) -> dict[str, Any]:
                return {"s": "x" * 1000}

        assert state_atom_count(Stringy()) >= 1000
