"""The Root Communication Algorithm: Lemmas 4.1, 4.2 and 4.3 in miniature."""

import pytest

from repro.errors import ProtocolViolation
from repro.sim.characters import Char
from repro.protocol.invariants import assert_network_clean, collect_residue
from repro.protocol.rca import run_single_rca
from repro.topology import generators
from repro.topology.properties import bfs_distances


def reconstruct_streams(transcript):
    """Pull (path1, path2) the way the master computer does."""
    path1, path2 = [], []
    phase = "open"
    src = None
    for e in transcript.events():
        if e.kind != "recv" or e.char is None:
            continue
        c, port = e.char, e.port
        fill = port if c.in_port == 0 else c.in_port
        if phase == "open" and c.kind == "IGH":
            phase, src = "ig", port
            path1.append((c.out_port, fill))
        elif phase == "ig" and port == src and c.kind == "IGB":
            path1.append((c.out_port, fill))
        elif phase == "ig" and port == src and c.kind == "IGT":
            phase = "await_id"
        elif phase == "await_id" and c.kind == "IDH":
            phase = "id"
            path2.append((c.out_port, fill))
        elif phase == "id" and c.kind == "IDB":
            path2.append((c.out_port, fill))
        elif phase == "id" and c.kind == "IDT":
            phase = "done"
    return path1, path2


class TestSingleRCA:
    def test_completes_and_cleans(self, ring4):
        result = run_single_rca(ring4, initiator=2)
        assert result.completed_at > 0
        assert_network_clean(result.engine)

    def test_token_observed_at_root(self, ring4):
        result = run_single_rca(ring4, initiator=2, token=Char("FWD", 2, 1))
        assert [c.kind for c in result.forward_events] == ["FWD"]
        assert result.forward_events[0].out_port == 2

    def test_back_token(self, ring4):
        result = run_single_rca(ring4, initiator=1, token=Char("BACK"))
        assert [c.kind for c in result.forward_events] == ["BACK"]

    def test_root_cannot_initiate(self, ring4):
        with pytest.raises(ProtocolViolation):
            run_single_rca(ring4, initiator=0)

    @pytest.mark.parametrize("initiator", [1, 2, 3, 4])
    def test_all_initiators_on_directed_ring(self, initiator, dring5):
        result = run_single_rca(dring5, initiator=initiator)
        assert_network_clean(result.engine)


class TestLemma41CanonicalPaths:
    """The transcript encodes shortest paths A->root and root->A."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: generators.bidirectional_ring(6),
            lambda: generators.de_bruijn(2, 3),
            lambda: generators.directed_torus(3, 3),
            lambda: generators.random_strongly_connected(9, extra_edges=6, seed=4),
        ],
    )
    def test_path_lengths_are_shortest(self, factory):
        graph = factory()
        to_root = {u: bfs_distances(graph, u)[0] for u in graph.nodes()}
        from_root = bfs_distances(graph, 0)
        for initiator in range(1, graph.num_nodes):
            result = run_single_rca(graph, initiator=initiator)
            path1, path2 = reconstruct_streams(result.transcript)
            assert len(path1) == to_root[initiator], f"A={initiator} path1"
            assert len(path2) == from_root[initiator], f"A={initiator} path2"

    def test_paths_walk_real_wires(self, debruijn8):
        result = run_single_rca(debruijn8, initiator=5)
        path1, path2 = reconstruct_streams(result.transcript)
        node = 5
        for out_port, in_port in path1:
            wire = debruijn8.out_wire(node, out_port)
            assert wire is not None and wire.in_port == in_port
            node = wire.dst
        assert node == 0  # reached the root
        for out_port, in_port in path2:
            wire = debruijn8.out_wire(node, out_port)
            assert wire is not None and wire.in_port == in_port
            node = wire.dst
        assert node == 5  # and back to A

    def test_deterministic_signature(self, debruijn8):
        a = run_single_rca(debruijn8, initiator=6)
        b = run_single_rca(debruijn8, initiator=6)
        assert reconstruct_streams(a.transcript) == reconstruct_streams(b.transcript)

    def test_distinct_initiators_distinct_signatures(self, debruijn8):
        sigs = set()
        for initiator in range(1, 8):
            r = run_single_rca(debruijn8, initiator=initiator)
            sigs.add(tuple(map(tuple, reconstruct_streams(r.transcript))))
        assert len(sigs) == 7


class TestLemma42Cleanup:
    @pytest.mark.parametrize("seed", range(5))
    def test_no_residue_on_random_graphs(self, seed):
        graph = generators.random_strongly_connected(8, extra_edges=5, seed=seed)
        result = run_single_rca(graph, initiator=1 + seed % 7)
        assert collect_residue(result.engine) == []

    def test_idle_at_end(self, ring4):
        result = run_single_rca(ring4, initiator=3)
        assert result.engine.is_idle()


class TestLemma43LinearInD:
    def test_ticks_proportional_to_distance(self):
        # On a bidirectional line, RCA from the far end costs Theta(D).
        times = []
        for n in (4, 8, 16, 32):
            g = generators.bidirectional_line(n)
            r = run_single_rca(g, initiator=n - 1)
            times.append(r.completed_at)
        ratios = [t / n for t, n in zip(times, (4, 8, 16, 32))]
        assert max(ratios) / min(ratios) < 1.5

    def test_nearby_initiator_is_fast(self):
        g = generators.bidirectional_line(32)
        near = run_single_rca(g, initiator=1).completed_at
        far = run_single_rca(g, initiator=31).completed_at
        assert near * 5 < far
