"""The character alphabet: constructors, predicates, speeds, counting."""

import pytest

from repro.sim.characters import (
    STAR,
    Char,
    SNAKE_FAMILIES,
    alphabet_size,
    convert,
    dying_family_of,
    fill_in_port,
    growing_family_of,
    is_dying,
    is_growing,
    is_snake,
    make_body,
    make_head,
    make_tail,
    residence,
    snake_family,
    snake_role,
    speed_of,
)


class TestConstructors:
    @pytest.mark.parametrize("family", SNAKE_FAMILIES)
    def test_head_kind(self, family):
        head = make_head(family, 2)
        assert head.kind == family + "H"
        assert head.out_port == 2
        assert head.in_port == STAR

    def test_body(self):
        body = make_body("IG", 3, 1)
        assert body.kind == "IGB"
        assert (body.out_port, body.in_port) == (3, 1)

    def test_tail_payload(self):
        tail = make_tail("BD", payload="DFS_RET")
        assert tail.kind == "BDT"
        assert tail.payload == "DFS_RET"

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            make_head("XX", 1)
        with pytest.raises(ValueError):
            make_tail("QQ")

    def test_char_is_frozen(self):
        c = make_head("IG", 1)
        with pytest.raises(AttributeError):
            c.kind = "OGH"


class TestPredicates:
    def test_growing_families(self):
        assert is_growing(make_head("IG", 1))
        assert is_growing(make_body("OG", 1))
        assert is_growing(make_tail("BG"))
        assert not is_growing(make_head("ID", 1))
        assert not is_growing(Char("DFS"))

    def test_dying_families(self):
        assert is_dying(make_head("ID", 1))
        assert is_dying(make_tail("OD"))
        assert is_dying(make_body("BD", 1))
        assert not is_dying(make_head("BG", 1))

    def test_snake_accessors(self):
        c = make_body("OD", 2, 3)
        assert is_snake(c)
        assert snake_family(c) == "OD"
        assert snake_role(c) == "B"

    def test_tokens_not_snakes(self):
        for kind in ("DFS", "FWD", "BACK", "KILL", "UNMARK", "BDONE"):
            assert not is_snake(Char(kind))

    def test_scope_families(self):
        assert growing_family_of("RCA") == ("IG", "OG")
        assert growing_family_of("BCA") == ("BG",)

    def test_dying_family_mapping(self):
        assert dying_family_of("OG") == "ID"
        assert dying_family_of("BG") == "BD"


class TestSpeeds:
    def test_snakes_are_speed_1(self):
        for family in SNAKE_FAMILIES:
            assert speed_of(make_head(family, 1)) == 1
            assert residence(make_head(family, 1)) == 3

    def test_kill_unmark_speed_3(self):
        assert speed_of(Char("KILL", payload="RCA")) == 3
        assert residence(Char("KILL", payload="RCA")) == 1
        assert speed_of(Char("UNMARK", payload="BCA")) == 3

    def test_loop_tokens_speed_1(self):
        # FORWARD/BACK and BDONE circle at speed 1 (the KILL catch-up
        # argument depends on them being strictly slower).
        for kind in ("FWD", "BACK", "BDONE", "DFS"):
            assert speed_of(Char(kind)) == 1


class TestFillInPort:
    def test_fills_star(self):
        filled = fill_in_port(make_head("IG", 2), 4)
        assert filled.in_port == 4

    def test_concrete_untouched(self):
        c = make_body("OG", 2, 3)
        assert fill_in_port(c, 9) is c

    def test_dfs_fills(self):
        c = Char("DFS", out_port=1, in_port=STAR)
        assert fill_in_port(c, 2).in_port == 2

    def test_tokens_untouched(self):
        c = Char("FWD", out_port=1, in_port=STAR)
        assert fill_in_port(c, 5) is c  # FWD fields are payload, not routing


class TestConvert:
    def test_ig_to_og(self):
        c = convert(make_body("IG", 2, 3), "OG")
        assert c.kind == "OGB"
        assert (c.out_port, c.in_port) == (2, 3)

    def test_role_preserved(self):
        assert convert(make_tail("ID"), "OD").kind == "ODT"

    def test_rejects_tokens(self):
        with pytest.raises(ValueError):
            convert(Char("DFS"), "IG")

    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            convert(make_head("IG", 1), "ZZ")


class TestAlphabetSize:
    def test_matches_paper_per_family_count(self):
        # Paper §2.3: 2*(delta^2 + delta) + 1 characters per snake type.
        for delta in (2, 3, 5):
            per_family = 2 * (delta**2 + delta) + 1
            total = alphabet_size(delta)
            # 6 families plus tokens: total must exceed the snake count and
            # grow exactly quadratically.
            assert total > 6 * per_family

    def test_quadratic_growth(self):
        # |I|(delta) is a quadratic polynomial: second difference constant.
        sizes = [alphabet_size(d) for d in (2, 3, 4, 5, 6)]
        second = [sizes[i + 2] - 2 * sizes[i + 1] + sizes[i] for i in range(3)]
        assert len(set(second)) == 1

    def test_rejects_delta_below_2(self):
        with pytest.raises(ValueError):
            alphabet_size(1)

    def test_known_value(self):
        # 6 families * (2*(4+2)+1) = 78, +1 BD payload variant, DFS 6,
        # FWD 4, BACK 1, BDONE 1, KILL 2, UNMARK 2, blank 1 = 96.
        assert alphabet_size(2) == 96


class TestStr:
    def test_head_rendering(self):
        assert str(make_head("IG", 2)) == "IGH(2,*)"

    def test_body_rendering(self):
        assert str(make_body("OD", 1, 3)) == "ODB(1,3)"

    def test_payload_rendering(self):
        assert "RCA" in str(Char("KILL", payload="RCA"))
