"""The scheduler core: event wheel, active set, dispatch tables, fast-forward."""

from __future__ import annotations

from typing import Any

import pytest

from repro.errors import TickBudgetExceeded
from repro.protocol.gtd import GTDProcessor
from repro.sim.characters import (
    Char,
    DYING_FAMILIES,
    GROWING_FAMILIES,
    SNAKE_FAMILIES,
    is_dying,
    is_growing,
    make_body,
    make_head,
)
from repro.sim.engine import Engine
from repro.sim.processor import Processor
from repro.sim.scheduler import (
    PRIORITY_CONTROL,
    PRIORITY_DYING,
    PRIORITY_GROWING,
    PRIORITY_TOKEN,
    ActiveSet,
    EventWheel,
    priority_of,
)
from repro.topology import generators
from repro.topology.builder import PortGraphBuilder


def _legacy_priority(char: Char) -> int:
    """The pre-scheduler engine's in-tick priority, verbatim."""
    if char.kind in ("KILL", "UNMARK"):
        return 0
    if is_dying(char):
        return 1
    if is_growing(char):
        return 2
    return 3


def _all_kinds() -> list[str]:
    kinds = ["DFS", "FWD", "BACK", "BDONE", "KILL", "UNMARK"]
    kinds += [family + role for family in SNAKE_FAMILIES for role in "HBT"]
    return kinds


class Recorder(Processor):
    def __init__(self) -> None:
        super().__init__()
        self.log: list[tuple[int, int, Char]] = []

    def handle(self, in_port: int, char: Char) -> None:
        self.log.append((self.tick, in_port, char))

    def state_snapshot(self) -> dict[str, Any]:
        return {}


class TestPriorityTable:
    def test_matches_legacy_priority_over_whole_alphabet(self):
        """The precomputed per-kind table is the old per-char sort, exactly."""
        for kind in _all_kinds():
            char = Char(kind)
            assert priority_of(kind) == _legacy_priority(char), kind

    def test_priority_classes(self):
        assert priority_of("KILL") == priority_of("UNMARK") == PRIORITY_CONTROL
        for family in DYING_FAMILIES:
            assert priority_of(family + "H") == PRIORITY_DYING
        for family in GROWING_FAMILIES:
            assert priority_of(family + "T") == PRIORITY_GROWING
        for token in ("DFS", "FWD", "BACK", "BDONE"):
            assert priority_of(token) == PRIORITY_TOKEN

    def test_unknown_kind_is_token_priority(self):
        assert priority_of("WHATEVER") == PRIORITY_TOKEN


class TestEventWheel:
    def test_sort_order_is_priority_then_port_then_fifo(self):
        wheel = EventWheel()
        wheel.schedule(5, 0, 2, Char("DFS"))
        wheel.schedule(5, 0, 1, Char("IGH"))
        wheel.schedule(5, 0, 1, Char("KILL"))
        wheel.schedule(5, 0, 2, Char("IDH"))
        items = wheel.pop(5)[0]
        items.sort()
        kinds = [char.kind for _, _, _, char in items]
        assert kinds == ["KILL", "IDH", "IGH", "DFS"]

    def test_fifo_breaks_ties_within_port_and_priority(self):
        wheel = EventWheel()
        first = make_body("IG", 1)
        second = make_body("IG", 2)
        wheel.schedule(3, 7, 1, first)
        wheel.schedule(3, 7, 1, second)
        items = wheel.pop(3)[7]
        items.sort()
        assert [c for _, _, _, c in items] == [first, second]

    def test_next_tick_tracks_earliest_bucket(self):
        wheel = EventWheel()
        assert wheel.next_tick() is None
        wheel.schedule(9, 0, 1, Char("DFS"))
        wheel.schedule(4, 1, 1, Char("DFS"))
        assert wheel.next_tick() == 4
        wheel.pop(4)
        assert wheel.next_tick() == 9
        wheel.pop(9)
        assert wheel.next_tick() is None
        assert not wheel

    def test_in_flight_lists_all_scheduled(self):
        wheel = EventWheel()
        wheel.schedule(1, 0, 1, Char("DFS"))
        wheel.schedule(2, 3, 1, Char("KILL"))
        assert sorted(node for node, _ in wheel.in_flight()) == [0, 3]
        assert len(wheel) == 2


class TestActiveSet:
    def test_live_follows_updates(self):
        active = ActiveSet()
        active.update(4, 10)
        assert 4 in active.live and bool(active)
        active.update(4, None)
        assert 4 not in active.live and not bool(active)

    def test_take_due_pops_up_to_tick(self):
        active = ActiveSet()
        active.update(1, 5)
        active.update(2, 7)
        assert active.take_due(5) == {1}
        assert active.next_due() == 7

    def test_stale_entries_are_harmless(self):
        active = ActiveSet()
        active.update(1, 5)
        active.update(1, 3)  # re-push with an earlier due
        assert active.take_due(4) == {1}
        # the stale (5, 1) entry surfaces later as a no-op
        assert active.take_due(5) == {1}
        assert active.next_due() is None

    def test_heap_compacts_when_stale_entries_dominate(self):
        """Long runs must not grow the due-heap unboundedly (satellite)."""
        active = ActiveSet()
        # one live node, repeatedly re-pushed with ever-later dues: the
        # lazily-invalidated heap would keep every stale entry forever
        for due in range(3 * ActiveSet.COMPACT_MIN):
            active.update(7, due)
        # without compaction the heap would hold all 3*COMPACT_MIN pushes;
        # with it, the length is bounded by the compaction floor
        assert len(active._due) <= ActiveSet.COMPACT_MIN + 1
        assert active.live == {7}
        # compaction keeps an entry at or before the true next due
        assert active.next_due() is not None
        assert active.next_due() <= 3 * ActiveSet.COMPACT_MIN - 1

    def test_compaction_never_loses_a_live_node(self):
        active = ActiveSet()
        nodes = range(10)
        for round_ in range(50):
            for node in nodes:
                active.update(node, 100 + round_)
        # every live node still has a due entry (possibly stale-early)
        popped = active.take_due(10_000)
        assert popped == set(nodes)


class TestEventWheelRecycling:
    def test_recycle_reuses_buckets_and_lists(self):
        wheel = EventWheel()
        wheel.schedule(1, 0, 1, Char("DFS"))
        wheel.schedule(1, 0, 2, Char("BACK"))
        bucket = wheel.pop(1)
        items = bucket[0]
        wheel.recycle(bucket)
        assert len(wheel) == 0
        # the same dict (and its inner list) come back into service
        wheel.schedule(2, 3, 1, Char("KILL"))
        assert wheel._buckets[2] is bucket
        assert bucket[3] is items  # recycled list, now holding the new entry
        assert len(bucket[3]) == 1

    def test_recycled_wheel_keeps_delivery_order(self):
        wheel = EventWheel()
        wheel.schedule(1, 0, 1, Char("DFS"))
        wheel.recycle(wheel.pop(1))
        wheel.schedule(2, 0, 2, Char("DFS"))
        wheel.schedule(2, 0, 1, Char("KILL"))
        items = wheel.pop(2)[0]
        items.sort()
        assert [(port, c.kind) for _, port, _, c in items] == [
            (1, "KILL"),
            (2, "DFS"),
        ]


class StarterRoot(Recorder):
    def __init__(self, char: Char, out_port: int = 1) -> None:
        super().__init__()
        self.char = char
        self.out_port = out_port

    def on_start(self) -> None:
        self.send(self.out_port, self.char)


def two_node_engine(root_proc, other_proc):
    b = PortGraphBuilder(2)
    g = b.connect(0, 1).connect(1, 0).build()
    return Engine(g, [root_proc, other_proc], root=0)


class TestBudgetAndIdle:
    def test_tick_budget_exhaustion_raises(self):
        class Bouncer(Recorder):
            def on_start(self) -> None:
                self.send(1, make_body("IG", 1))

            def handle(self, in_port: int, char: Char) -> None:
                super().handle(in_port, char)
                self.broadcast(char)

        engine = two_node_engine(Bouncer(), Bouncer())
        with pytest.raises(TickBudgetExceeded):
            engine.run(max_ticks=50, until=lambda: False)
        assert engine.tick >= 50

    def test_budget_exhaustion_on_dead_network(self):
        # Nothing ever moves; until never holds; the watchdog must still fire.
        engine = two_node_engine(Recorder(), Recorder())
        with pytest.raises(TickBudgetExceeded):
            engine.run(max_ticks=30, until=lambda: False, start=False)

    def test_idle_drain_detection(self):
        recorder = Recorder()  # absorbs everything
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), recorder)
        ticks = engine.run(max_ticks=100)
        assert engine.is_idle()
        assert ticks <= 5
        # run_to_idle on an already-idle engine returns immediately
        assert engine.run_to_idle(max_ticks=200) == ticks

    def test_next_event_tick_sees_wires_and_outboxes(self):
        recorder = Recorder()
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), recorder)
        engine.start()
        # speed-1 char rests 2 more ticks in the root, then 1 tick on the wire
        assert engine._next_event_tick() == 2
        engine.step_tick()
        engine.step_tick()  # leaves the outbox at tick 2
        assert engine._next_event_tick() == 3  # now on the wire
        engine.step_tick()
        assert recorder.log and recorder.log[0][0] == 3
        assert engine._next_event_tick() is None


class TestFastForwardEquivalence:
    """run() skips empty ticks but must be observationally identical."""

    def _run_manual(self, graph):
        processors = [GTDProcessor() for _ in graph.nodes()]
        engine = Engine(graph, list(processors), root=0)
        engine.start()
        root = processors[0]
        while not root.terminal:
            assert engine.tick < 50_000
            engine.step_tick()
        ticks = engine.tick
        while not engine.is_idle():
            engine.step_tick()
        return engine, ticks

    def _run_fast(self, graph):
        processors = [GTDProcessor() for _ in graph.nodes()]
        engine = Engine(graph, list(processors), root=0)
        root = processors[0]
        ticks = engine.run(max_ticks=50_000, until=lambda: root.terminal)
        engine.run_to_idle(max_ticks=60_000)
        return engine, ticks

    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: generators.de_bruijn(2, 3),
            lambda: generators.bidirectional_ring(6),
            lambda: generators.directed_ring(5),
        ],
        ids=["de_bruijn", "biring", "dring"],
    )
    def test_transcripts_and_ticks_identical(self, make_graph):
        manual_engine, manual_ticks = self._run_manual(make_graph())
        fast_engine, fast_ticks = self._run_fast(make_graph())
        assert manual_ticks == fast_ticks
        assert manual_engine.tick == fast_engine.tick
        assert list(manual_engine.transcript.events()) == list(
            fast_engine.transcript.events()
        )
        assert manual_engine.metrics.snapshot() == fast_engine.metrics.snapshot()


class TestDispatchTables:
    def test_protocol_processor_publishes_full_table(self):
        proc = GTDProcessor()
        table = proc.handler_table()
        for kind in _all_kinds():
            assert kind in table, kind

    def test_handle_override_disables_table(self):
        """A subclass overriding handle() must stay authoritative."""

        class Override(GTDProcessor):
            def __init__(self) -> None:
                super().__init__()
                self.seen: list[str] = []

            def handle(self, in_port: int, char: Char) -> None:
                self.seen.append(char.kind)
                super().handle(in_port, char)

        assert Override().handler_table() == {}

        # End to end: the override sees every delivered character.
        g = generators.de_bruijn(2, 3)
        processors = [Override() for _ in g.nodes()]
        engine = Engine(g, list(processors), root=0)
        engine.run(max_ticks=50_000, until=lambda: processors[0].terminal)
        assert sum(len(p.seen) for p in processors) == engine.metrics.total_delivered

    def test_base_processor_falls_back_to_handle(self):
        recorder = Recorder()
        assert recorder.handler_table() == {}
        engine = two_node_engine(StarterRoot(make_head("IG", 1)), recorder)
        engine.run(max_ticks=100)
        assert recorder.log, "fallback handle() must receive deliveries"


class TestDispatchOrderDeterminism:
    def test_mixed_arrivals_follow_legacy_order(self):
        """Same-tick arrivals handle in the legacy (priority, port, fifo) order."""

        class MixedRoot(Recorder):
            def on_start(self) -> None:
                # All four land at the neighbour on tick 1 (speed-1 chars
                # get extra_delay=-2 so their residence collapses to 0).
                self.send(1, make_head("OG", 1), extra_delay=-2)
                self.send(1, Char("KILL", payload="RCA"))
                self.send(1, make_head("ID", 1), extra_delay=-2)
                self.send(1, Char("FWD", out_port=1, in_port=1), extra_delay=-2)

        recorder = Recorder()
        engine = two_node_engine(MixedRoot(), recorder)
        engine.start()
        engine.step_tick()
        kinds = [c.kind for _, _, c in recorder.log]
        assert kinds == ["KILL", "IDH", "OGH", "FWD"]

    def test_repeated_runs_bitwise_identical(self):
        """Two full protocol runs on the same network agree event for event."""
        results = []
        for _ in range(2):
            g = generators.random_strongly_connected(10, extra_edges=10, seed=7)
            processors = [GTDProcessor() for _ in g.nodes()]
            engine = Engine(g, list(processors), root=0)
            engine.run(max_ticks=100_000, until=lambda: processors[0].terminal)
            results.append(
                (engine.tick, list(engine.transcript.events()), engine.metrics.snapshot())
            )
        assert results[0] == results[1]
