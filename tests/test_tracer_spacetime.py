"""The omniscient tracer and the space-time renderer."""

from repro.protocol.rca import ScriptedRCADriver
from repro.sim.characters import Char, make_head
from repro.sim.engine import Engine
from repro.sim.tracer import EventTrace
from repro.topology import generators
from repro.viz.spacetime import render_spacetime


def traced_rca(n: int = 6, keep=None):
    graph = generators.bidirectional_line(n)
    procs = [ScriptedRCADriver() for _ in graph.nodes()]
    engine = Engine(graph, list(procs), root=0)
    engine.tracer = EventTrace(keep=keep)
    engine.start()
    procs[n - 1].begin_tick(0)
    procs[n - 1].trigger(Char("FWD", 1, 1))
    engine.wake(n - 1)
    engine.run(
        max_ticks=5000,
        until=lambda: procs[n - 1].completed_at is not None,
        start=False,
    )
    return engine, graph


class TestEventTrace:
    def test_records_deliveries_and_emissions(self):
        engine, _ = traced_rca()
        assert len(engine.tracer.deliveries()) > 0
        assert any(e.kind == "emit" for e in engine.tracer.events())

    def test_filter_keeps_only_matching(self):
        engine, _ = traced_rca(keep=lambda c: c.kind.startswith("IG"))
        kinds = {e.char.kind for e in engine.tracer.events()}
        assert kinds and all(k.startswith("IG") for k in kinds)

    def test_first_delivery(self):
        engine, _ = traced_rca()
        first = engine.tracer.first_delivery(0, "IGH")
        assert first is not None
        # node 0 (the root) is 5 hops from the initiator: 15 ticks at speed 1
        assert first.tick == 3 * 5

    def test_wavefront_is_breadth_first(self):
        engine, graph = traced_rca()
        front = engine.tracer.wavefront("IG")
        n = graph.num_nodes
        # flood from node n-1 spreads 3 ticks per hop along the line
        # (the initiator itself only sees echoes, so skip it)
        for node, tick in front.items():
            if node != n - 1:
                assert tick == 3 * abs((n - 1) - node)

    def test_max_events_cap(self):
        trace = EventTrace(max_events=3)
        for i in range(5):
            trace.record_delivery(i, 0, 1, make_head("IG", 1))
        assert len(trace) == 3
        assert trace.dropped == 2

    def test_disabled_by_default(self):
        graph = generators.bidirectional_line(3)
        procs = [ScriptedRCADriver() for _ in graph.nodes()]
        engine = Engine(graph, list(procs), root=0)
        assert engine.tracer is None  # zero cost unless attached


class TestSpacetime:
    def test_renders_grid(self):
        engine, graph = traced_rca()
        art = render_spacetime(engine.tracer, graph.num_nodes)
        lines = art.splitlines()
        assert lines[0].startswith("tick |")
        assert "legend" in lines[-1]
        assert len(lines) > 5

    def test_growing_heads_visible(self):
        engine, graph = traced_rca()
        art = render_spacetime(engine.tracer, graph.num_nodes)
        assert "o" in art  # growing heads
        assert "K" in art  # the KILL wave
        assert "F" in art  # the FORWARD token

    def test_empty_trace(self):
        assert render_spacetime(EventTrace(), 4) == "(empty trace)"

    def test_max_rows_subsamples(self):
        engine, graph = traced_rca()
        art = render_spacetime(engine.tracer, graph.num_nodes, max_rows=5)
        data_rows = art.splitlines()[2:-1]
        assert len(data_rows) <= 5

    def test_tick_cropping(self):
        engine, graph = traced_rca()
        art = render_spacetime(
            engine.tracer, graph.num_nodes, start_tick=0, end_tick=10
        )
        ticks = [
            int(line.split("|")[0]) for line in art.splitlines()[2:-1] if "|" in line
        ]
        assert all(t <= 10 for t in ticks)

    def test_node_order_permutation(self):
        engine, graph = traced_rca()
        art = render_spacetime(
            engine.tracer,
            graph.num_nodes,
            node_order=list(reversed(range(graph.num_nodes))),
        )
        assert art.splitlines()[0].endswith("543210")
