"""Campaigns: matrix expansion, fault parsing, determinism, aggregation, CLI."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.campaigns import (
    CampaignSpec,
    FaultModel,
    Scenario,
    build_family,
    parse_fault,
    run_campaign,
    run_scenario,
)
from repro.campaigns.executor import shutdown_worker_pool
from repro.campaigns.spec import FAMILY_BUILDERS
from repro.cli import main
from repro.errors import ReproError


class TestSpec:
    def test_matrix_expansion_order(self):
        spec = CampaignSpec(
            families=("de-bruijn", "torus"),
            sizes=(4, 8),
            faults=("none",),
            seeds=(0, 1),
        )
        scenarios = spec.scenarios()
        assert len(scenarios) == len(spec) == 8
        assert scenarios[0] == Scenario("de-bruijn", 4, "none", 0)
        assert scenarios[1] == Scenario("de-bruijn", 4, "none", 1)
        assert scenarios[2] == Scenario("de-bruijn", 8, "none", 0)
        assert scenarios[4] == Scenario("torus", 4, "none", 0)

    def test_unknown_family_rejected_eagerly(self):
        with pytest.raises(ReproError, match="unknown network family"):
            CampaignSpec(families=("nope",), sizes=(4,))

    def test_bad_fault_rejected_eagerly(self):
        with pytest.raises(ReproError):
            CampaignSpec(families=("torus",), sizes=(4,), faults=("melt:1",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ReproError, match="at least one"):
            CampaignSpec(families=("torus",), sizes=())

    def test_family_registry_builds_legal_graphs(self):
        for name in FAMILY_BUILDERS:
            graph = build_family(name, 6, seed=1)
            assert graph.frozen
            assert graph.num_nodes >= 6 or name in ("de-bruijn", "hypercube")

    def test_build_family_unknown(self):
        with pytest.raises(ReproError):
            build_family("nope", 8)


class TestFaultParsing:
    def test_none(self):
        assert parse_fault("none") == FaultModel("none")

    def test_shutdown(self):
        assert parse_fault("shutdown:0.25") == FaultModel("shutdown", 0.25)

    def test_cut_and_add(self):
        assert parse_fault("cut:0.5") == FaultModel("cut", 0.5)
        assert parse_fault("add:1.2") == FaultModel("add", 1.2)

    def test_roundtrip_str(self):
        for spec in ("none", "shutdown:0.25", "cut:0.5"):
            assert str(parse_fault(spec)) == spec

    @pytest.mark.parametrize(
        "bad", ["melt:1", "shutdown", "shutdown:1.5", "cut:-1", "none:3"]
    )
    def test_rejects(self, bad):
        with pytest.raises(ReproError):
            parse_fault(bad)


SMALL_SPEC = CampaignSpec(
    families=("de-bruijn", "bidirectional-ring"),
    sizes=(6,),
    faults=("none", "shutdown:0.1"),
    seeds=(0, 1),
)


class TestDeterminism:
    def test_parallel_equals_serial_result_for_result(self):
        serial = run_campaign(SMALL_SPEC, jobs=1)
        parallel = run_campaign(SMALL_SPEC, jobs=4)
        assert serial.results == parallel.results

    def test_two_serial_invocations_identical(self):
        a = run_campaign(SMALL_SPEC, jobs=1)
        b = run_campaign(SMALL_SPEC, jobs=1)
        assert a.results == b.results

    def test_dynamic_scenarios_deterministic_across_workers(self):
        spec = CampaignSpec(
            families=("spare-ring",),
            sizes=(6,),
            faults=("cut:0.5", "add:0.5", "cut:1.2"),
            seeds=(0, 1),
        )
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=3)
        assert serial.results == parallel.results
        # post-termination mutations leave the map accurate
        late = [r for r in serial.results if r.scenario.fault == "cut:1.2"]
        assert all(r.outcome == "accurate" for r in late)

    def test_distinct_seeds_can_differ(self):
        # the seed is threaded into the fault pattern: same cell, different
        # seeds must be able to produce different degraded networks
        results = run_campaign(
            CampaignSpec(
                families=("bidirectional-ring",),
                sizes=(8,),
                faults=("shutdown:0.2",),
                seeds=tuple(range(6)),
            )
        ).results
        assert len({r.num_wires for r in results}) > 1

    def test_jobs_must_be_positive(self):
        with pytest.raises(ReproError):
            run_campaign(SMALL_SPEC, jobs=0)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ReproError, match="start method"):
            run_campaign(SMALL_SPEC, jobs=2, start_method="teleport")

    def test_worker_pool_persists_across_invocations(self):
        from repro.campaigns import executor

        shutdown_worker_pool()
        first = run_campaign(SMALL_SPEC, jobs=2)
        pool_state = executor._WORKER_POOL
        assert pool_state is not None, "the worker pool must outlive the call"
        second = run_campaign(SMALL_SPEC, jobs=2)
        assert executor._WORKER_POOL is pool_state, "pool must be reused, not reforked"
        assert first.results == second.results

    def test_chunking_groups_by_key_but_keeps_parallel_grain(self):
        from repro.campaigns.executor import _chunk_pending

        # 2 keys x 6 faults: grouping alone would starve a 4-worker pool
        pending = [
            (i, Scenario("spare-ring", 8, f"cut:0.{d}", seed))
            for i, (seed, d) in enumerate(
                (s, d) for s in (0, 1) for d in range(1, 7)
            )
        ]
        chunks = _chunk_pending(pending, workers=4)
        assert len(chunks) >= 6, "fault-heavy matrices must still fan out"
        # cells of one key stay contiguous and in matrix order per chunk
        flat = [i for chunk in chunks for i, _ in chunk]
        assert sorted(flat) == list(range(len(pending)))
        for chunk in chunks:
            keys = {(s.family, s.size, s.seed, s.backend) for _, s in chunk}
            assert len(keys) == 1, "a chunk never mixes setup keys"
        # serial-sized pools keep whole keys together (maximal sharing)
        [a, b] = _chunk_pending(pending, workers=1)
        assert len(a) == len(b) == 6

    @pytest.mark.parametrize(
        "method",
        [
            m
            for m in ("spawn", "forkserver")
            if m in multiprocessing.get_all_start_methods()
        ],
    )
    def test_start_methods_are_byte_identical_to_fork(self, method):
        """Python 3.14 drops fork as the default: every method must agree.

        The campaign below mixes static, shutdown and dynamic cells so the
        chunked dispatch, the per-worker caches and the seed derivation are
        all exercised under a freshly-imported (not forked) worker.
        """
        spec = CampaignSpec(
            families=("spare-ring",),
            sizes=(6,),
            faults=("none", "shutdown:0.2", "cut:0.5"),
            seeds=(0, 1),
        )
        reference = run_campaign(spec, jobs=2, start_method="fork")
        try:
            fresh_import = run_campaign(spec, jobs=2, start_method=method)
        finally:
            shutdown_worker_pool()  # do not leave a spawn pool behind
        assert fresh_import.results == reference.results


class TestScenarioResults:
    def test_healthy_scenario_is_exact(self):
        result = run_scenario(Scenario("de-bruijn", 8))
        assert result.outcome == "exact" and result.ok
        assert result.hops > 0 and result.ticks > 0
        assert result.work == result.num_wires * result.diameter
        assert result.episodes, "episodes must be mined from the transcript"

    def test_shutdown_truth_is_degraded_network(self):
        result = run_scenario(Scenario("bidirectional-ring", 8, "shutdown:0.2", 3))
        assert result.outcome == "exact"
        assert result.num_wires <= 16

    def test_aggregation_shapes(self):
        campaign = run_campaign(SMALL_SPEC)
        fit = campaign.episode_fit()
        assert fit.r_squared > 0.9
        series = campaign.series()
        assert set(series) == {"de-bruijn", "bidirectional-ring"}
        assert campaign.outcome_counts() == {"exact": len(campaign)}

    def test_json_roundtrip(self):
        campaign = run_campaign(
            CampaignSpec(families=("de-bruijn",), sizes=(6,))
        )
        doc = json.loads(campaign.to_json())
        assert doc["format"] == "repro.campaign-result/v1"
        assert doc["outcomes"] == {"exact": 1}
        [scenario] = doc["scenarios"]
        assert scenario["scenario"]["family"] == "de-bruijn"
        assert scenario["hops"] > 0


class TestCli:
    def test_campaign_subcommand(self, capsys, tmp_path):
        out = tmp_path / "campaign.json"
        assert main([
            "campaign", "--families", "de-bruijn", "--sizes", "6",
            "--faults", "none", "--seeds", "2", "--jobs", "2",
            "--episodes", "--json", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "outcomes" in text and "episode scaling" in text
        assert json.loads(out.read_text())["outcomes"] == {"exact": 2}

    def test_map_repeats_with_jobs(self, capsys):
        assert main([
            "map", "--family", "de-bruijn", "--size", "6",
            "--seed", "5", "--repeats", "2", "--jobs", "2",
        ]) == 0
        text = capsys.readouterr().out
        assert "exact maps: 2/2" in text

    def test_map_single_run_still_prints_map(self, capsys):
        assert main(["map", "--family", "bidirectional-ring", "--size", "5"]) == 0
        assert "exact=True" in capsys.readouterr().out

    def test_bad_fault_is_a_clean_error(self, capsys):
        assert main(["campaign", "--families", "de-bruijn", "--sizes", "6",
                     "--faults", "melt:1"]) == 2
        assert "unknown fault model" in capsys.readouterr().err

    def test_map_repeats_rejects_single_run_flags(self, capsys):
        assert main(["map", "--family", "de-bruijn", "--size", "6",
                     "--repeats", "2", "--verify-cleanup"]) == 2
        assert "--verify-cleanup" in capsys.readouterr().err

    def test_episodes_flag_survives_dynamic_only_matrix(self, capsys, tmp_path):
        out = tmp_path / "dyn.json"
        assert main([
            "campaign", "--families", "spare-ring", "--sizes", "6",
            "--faults", "cut:0.5", "--episodes", "--json", str(out),
        ]) == 0
        assert "not enough RCA episodes" in capsys.readouterr().out
        assert out.exists(), "--json must be written even without episodes"


class TestInfeasibleCells:
    def test_infeasible_cell_does_not_abort_matrix(self):
        # de-bruijn has no free ports: add:* is infeasible there, but the
        # other cells of the matrix must still run (serial and parallel).
        spec = CampaignSpec(
            families=("de-bruijn", "spare-ring"),
            sizes=(6,),
            faults=("none", "add:1.2"),
        )
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2)
        assert serial.results == parallel.results
        by_label = {r.scenario.label: r.outcome for r in serial.results}
        assert by_label["de-bruijn(6)/none/s0"] == "exact"
        assert by_label["de-bruijn(6)/add:1.2/s0"] == "infeasible"
        assert by_label["spare-ring(6)/add:1.2/s0"] == "accurate"
