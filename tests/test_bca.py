"""The Backwards Communication Algorithm contract (§4.1, deviation D1)."""

import pytest

from repro.protocol.bca import run_single_bca
from repro.protocol.invariants import collect_residue
from repro.topology import generators
from repro.topology.builder import PortGraphBuilder


class TestContract:
    def test_message_reaches_upstream(self, dring5):
        # node 1's in-port 1 is fed by node 0.
        result = run_single_bca(dring5, node=1, in_port=1, message="PING")
        assert result.target == 0
        assert result.delivered_at > 0

    def test_initiator_learns_of_delivery_after_it(self, dring5):
        result = run_single_bca(dring5, node=1, in_port=1)
        assert result.initiator_done_at > result.delivered_at

    def test_network_undisturbed(self, dring5):
        result = run_single_bca(dring5, node=1, in_port=1)
        assert collect_residue(result.engine) == []
        assert result.engine.is_idle()

    def test_payload_faithful(self, ring4):
        result = run_single_bca(ring4, node=2, in_port=1, message="HELLO")
        assert result.message == "HELLO"

    @pytest.mark.parametrize("node", [1, 2, 3])
    def test_every_in_port_of_every_node(self, node, debruijn8):
        for in_port in debruijn8.connected_in_ports(node):
            result = run_single_bca(debruijn8, node=node, in_port=in_port)
            wire = debruijn8.in_wire(node, in_port)
            assert result.target == wire.src
            assert collect_residue(result.engine) == []

    def test_unwired_port_rejected(self, dring5):
        with pytest.raises(ValueError):
            run_single_bca(dring5, node=1, in_port=2)


class TestSelfLoop:
    def test_bca_across_self_loop(self):
        b = PortGraphBuilder(2)
        b.connect(0, 0).connect(0, 1).connect(1, 0)
        g = b.build()
        # node 0's self-loop: out-port 1 -> in-port 1
        result = run_single_bca(g, node=0, in_port=1, message="SELF")
        assert result.target == 0  # its own upstream
        assert result.delivered_at > 0
        assert collect_residue(result.engine) == []


class TestLinearInD:
    def test_directed_ring_cost_linear(self):
        # Backwards across one edge of a directed n-ring must circle the
        # ring: cost Theta(n).
        times = []
        sizes = (4, 8, 16, 32)
        for n in sizes:
            g = generators.directed_ring(n)
            r = run_single_bca(g, node=1, in_port=1)
            times.append(r.initiator_done_at)
        ratios = [t / n for t, n in zip(times, sizes)]
        assert max(ratios) / min(ratios) < 1.5

    def test_bidirectional_shortcut_is_constant(self):
        # With a reverse wire available the loop has length 2 regardless of n.
        times = []
        for n in (4, 16, 64):
            g = generators.bidirectional_ring(n)
            r = run_single_bca(g, node=1, in_port=1)
            times.append(r.initiator_done_at)
        assert max(times) == min(times)


class TestOrderingGuarantees:
    def test_target_resume_after_delivery(self, dring5):
        r = run_single_bca(dring5, node=1, in_port=1)
        assert r.target_resumed_at > r.delivered_at

    def test_resume_before_or_at_initiator_done(self, dring5):
        # The UNMARK reaches the target (penultimate) strictly before it
        # returns to the initiator.
        r = run_single_bca(dring5, node=1, in_port=1)
        assert r.target_resumed_at <= r.initiator_done_at
