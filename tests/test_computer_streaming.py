"""The master computer as a *stream* consumer.

The paper's computer draws the map "as the algorithm was proceeding"; the
``feed`` API supports that.  These tests verify event-by-event feeding
matches batch reconstruction and that partial knowledge is well-formed at
every prefix.
"""

from repro import determine_topology
from repro.protocol.root_computer import MasterComputer


def test_streaming_equals_batch(debruijn8):
    result = determine_topology(debruijn8)
    streaming = MasterComputer()
    for event in result.transcript.events():
        streaming.feed(event)
    batch = MasterComputer().reconstruct(result.transcript)
    assert streaming._terminal
    assert streaming._signatures == batch.signatures
    assert streaming._wires == batch.wires


def test_partial_prefixes_never_overshoot(ring4):
    """At every prefix, the partial map is a subset of the final map."""
    result = determine_topology(ring4)
    final = MasterComputer().reconstruct(result.transcript)
    final_wires = {(w.src, w.out_port, w.dst, w.in_port) for w in final.wires}
    computer = MasterComputer()
    for event in result.transcript.events():
        computer.feed(event)
        partial = {
            (w.src, w.out_port, w.dst, w.in_port) for w in computer._wires
        }
        assert partial <= final_wires


def test_edges_appear_monotonically(debruijn8):
    result = determine_topology(debruijn8)
    computer = MasterComputer()
    counts = []
    for event in result.transcript.events():
        computer.feed(event)
        counts.append(len(computer._wires))
    assert counts == sorted(counts)
    assert counts[-1] == debruijn8.num_wires


def test_stack_depth_tracks_dfs_depth(ring4):
    """The stack top tracks the DFS token (paper §3.1): depth stays >= 1
    after START and returns to exactly 1 at TERMINAL."""
    result = determine_topology(ring4)
    computer = MasterComputer()
    depths = []
    for event in result.transcript.events():
        computer.feed(event)
        if computer._stack:
            depths.append(len(computer._stack))
    assert min(depths) == 1
    assert depths[-1] == 1
    assert max(depths) > 1
