"""Serialization round-trips and fault injection."""

import json

import pytest

from repro.errors import TopologyError
from repro.topology import generators
from repro.topology.faults import degrade_bidirectional, remove_wires, shutdown_out_ports
from repro.topology.isomorphism import port_isomorphic
from repro.topology.properties import is_strongly_connected
from repro.topology.serialize import from_json, to_dot, to_json


class TestJson:
    def test_roundtrip_identity(self, debruijn8):
        again = from_json(to_json(debruijn8))
        assert again == debruijn8

    @pytest.mark.parametrize("name", sorted(generators.all_families()))
    def test_roundtrip_all_families(self, name):
        g = generators.all_families()[name]
        assert from_json(to_json(g)) == g

    def test_indent_option(self, ring4):
        text = to_json(ring4, indent=2)
        assert "\n" in text
        assert from_json(text) == ring4

    def test_rejects_garbage(self):
        with pytest.raises(TopologyError):
            from_json("not json at all {")

    def test_rejects_wrong_format(self):
        with pytest.raises(TopologyError):
            from_json(json.dumps({"format": "something-else"}))

    def test_rejects_missing_fields(self):
        doc = {"format": "repro.portgraph/v1", "num_nodes": 2}
        with pytest.raises(TopologyError):
            from_json(json.dumps(doc))

    def test_rejects_malformed_wire(self):
        doc = {
            "format": "repro.portgraph/v1",
            "num_nodes": 2,
            "delta": 2,
            "wires": [{"src": 0}],
        }
        with pytest.raises(TopologyError):
            from_json(json.dumps(doc))


class TestDot:
    def test_contains_all_wires(self, ring4):
        dot = to_dot(ring4)
        assert dot.startswith("digraph")
        for w in ring4.wires():
            assert f'n{w.src} -> n{w.dst} [label="{w.out_port}:{w.in_port}"]' in dot

    def test_root_doubled(self, ring4):
        dot = to_dot(ring4, root=2)
        assert 'n2 [label="2", shape=doublecircle]' in dot


class TestRemoveWires:
    def test_removes_exactly(self, ring4):
        victim = next(iter(ring4.wires()))
        smaller = remove_wires(ring4, {victim})
        assert smaller.num_wires == ring4.num_wires - 1
        assert victim not in smaller.edge_set()

    def test_keeps_port_numbers(self, ring4):
        victim = ring4.out_wire(0, 1)
        smaller = remove_wires(ring4, {victim})
        survivor = ring4.out_wire(0, 2)
        assert smaller.out_wire(0, 2) == survivor

    def test_rejects_isolating_removal(self, two_node_cycle):
        with pytest.raises(TopologyError):
            remove_wires(two_node_cycle, set(two_node_cycle.wires()))


class TestShutdownFaults:
    def test_zero_rate_is_identity(self, debruijn8):
        assert shutdown_out_ports(debruijn8, 0.0, seed=1) == debruijn8

    @pytest.mark.parametrize("seed", range(4))
    def test_degraded_still_strong(self, seed):
        g = generators.hypercube(3)
        degraded = shutdown_out_ports(g, 0.2, seed=seed)
        assert is_strongly_connected(degraded)
        assert degraded.num_wires <= g.num_wires

    def test_reproducible(self):
        g = generators.hypercube(3)
        a = shutdown_out_ports(g, 0.25, seed=7)
        b = shutdown_out_ports(g, 0.25, seed=7)
        assert a == b

    def test_invalid_rate(self, ring4):
        with pytest.raises(ValueError):
            shutdown_out_ports(ring4, 1.0)
        with pytest.raises(ValueError):
            shutdown_out_ports(ring4, -0.1)


class TestDegradeBidirectional:
    @pytest.mark.parametrize("frac", [0.0, 0.3, 1.0])
    def test_strongly_connected_output(self, frac):
        g = generators.hypercube(3)
        degraded = degrade_bidirectional(g, frac, seed=3)
        assert is_strongly_connected(degraded)

    def test_full_degradation_removes_wires(self):
        g = generators.bidirectional_ring(8)
        degraded = degrade_bidirectional(g, 1.0, seed=5)
        assert degraded.num_wires < g.num_wires

    def test_invalid_fraction(self, ring4):
        with pytest.raises(ValueError):
            degrade_bidirectional(ring4, 1.5)

    def test_isomorphism_check_detects_change(self):
        g = generators.bidirectional_ring(6)
        degraded = degrade_bidirectional(g, 1.0, seed=2)
        assert not port_isomorphic(g, 0, degraded, 0)
