"""Baseline mappers: correctness and the resource trade they illustrate."""

import pytest

from repro import determine_topology
from repro.baselines.dfs_unbounded import unbounded_dfs_map
from repro.baselines.echo_mapper import echo_map
from repro.baselines.oracle import oracle_map
from repro.topology import generators


class TestEchoMapper:
    @pytest.mark.parametrize("name", sorted(generators.all_families()))
    def test_exact_on_all_families(self, name):
        g = generators.all_families()[name]
        result = echo_map(g)
        assert result.matches(g), name

    def test_rounds_scale_with_diameter_not_n(self):
        small_d = echo_map(generators.de_bruijn(2, 4))   # N=16, D=4
        big_d = echo_map(generators.directed_ring(16))   # N=16, D=15
        assert small_d.rounds < big_d.rounds

    def test_messages_grow_with_network(self):
        small = echo_map(generators.bidirectional_ring(4))
        big = echo_map(generators.bidirectional_ring(16))
        assert big.max_message_entries > small.max_message_entries
        # the biggest message carries (almost) the whole map
        assert big.max_message_entries >= big.wires.__len__() // 2

    def test_agrees_with_oracle(self, debruijn8):
        assert echo_map(debruijn8).wires == oracle_map(debruijn8)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        g = generators.random_strongly_connected(12, extra_edges=8, seed=seed)
        assert echo_map(g).matches(g)

    def test_single_node(self, self_loop_single):
        assert echo_map(self_loop_single).matches(self_loop_single)

    def test_nonzero_root(self, debruijn8):
        assert echo_map(debruijn8, root=5).matches(debruijn8)


class TestUnboundedDfs:
    @pytest.mark.parametrize("name", sorted(generators.all_families()))
    def test_exact_on_all_families(self, name):
        g = generators.all_families()[name]
        assert unbounded_dfs_map(g).matches(g), name

    def test_forward_traversals_equal_wires(self, debruijn8):
        result = unbounded_dfs_map(debruijn8)
        assert result.forward_traversals == debruijn8.num_wires

    def test_forward_count_matches_real_protocol_dfs(self, debruijn8):
        """The baseline's DFS is the same DFS the protocol runs."""
        baseline = unbounded_dfs_map(debruijn8)
        real = determine_topology(debruijn8)
        assert baseline.forward_traversals == real.metrics.delivered["DFS"]

    def test_steps_linear_in_edges(self):
        g = generators.complete_bidirectional(6)
        result = unbounded_dfs_map(g)
        assert result.steps <= 2 * g.num_wires + 2


class TestCostComparison:
    def test_echo_faster_but_heavier_than_protocol(self, debruijn8):
        echo = echo_map(debruijn8)
        protocol = determine_topology(debruijn8)
        # echo wins on time by orders of magnitude...
        assert echo.rounds * 20 < protocol.ticks
        # ...but needs messages far beyond constant size, while the
        # protocol's characters are constant-size by construction.
        assert echo.max_message_entries > debruijn8.delta**2
