"""Master computer unit tests on synthetic transcripts."""

import pytest

from repro.errors import ReconstructionError, TranscriptError
from repro.sim.characters import Char, STAR, make_tail
from repro.sim.transcript import Transcript
from repro.protocol.gtd import PIPE_DFS_RETURNED, PIPE_START, PIPE_TERMINAL
from repro.protocol.root_computer import MasterComputer, ReconstructedMap


def rca_events(t: Transcript, tick: int, path1, path2, token: Char) -> int:
    """Append a synthetic RCA (the root's view) to the transcript."""
    out, inp = path1[0]
    t.record_recv(tick, path1[0][1], Char("IGH", out, inp))
    for out, inp in path1[1:]:
        tick += 1
        t.record_recv(tick, path1[-1][1], Char("IGB", out, inp))
    tick += 1
    t.record_recv(tick, path1[-1][1], make_tail("IG"))
    tick += 1
    t.record_recv(tick, path1[-1][1], Char("IDH", path2[0][0], path2[0][1]))
    for out, inp in path2[1:]:
        tick += 1
        t.record_recv(tick, path1[-1][1], Char("IDB", out, inp))
    tick += 1
    t.record_recv(tick, path1[-1][1], make_tail("ID"))
    tick += 1
    t.record_recv(tick, path1[-1][1], token)
    tick += 1
    t.record_recv(tick, path1[-1][1], Char("UNMARK", payload="RCA"))
    return tick + 1


def minimal_two_node_transcript() -> Transcript:
    """Root <-> A, probe out, A reports FORWARD, then returns, then done."""
    t = Transcript()
    t.record_pipe(0, PIPE_START, ())
    t.record_send(0, 1, Char("DFS", 1, STAR))
    # A's FORWARD RCA: path1 = A->root via (1,1); path2 = root->A via (1,1)
    tick = rca_events(t, 5, [(1, 1)], [(1, 1)], Char("FWD", 1, 1))
    # A explored its port back to root: DFS arrives at root (a forward edge
    # onto the root).
    t.record_recv(tick, 1, Char("DFS", 1, STAR))
    tick += 1
    # root bounces; A's probe returns: A runs a BACK RCA.
    tick = rca_events(t, tick, [(1, 1)], [(1, 1)], Char("BACK"))
    # A finished; returns the token to the root (its parent).
    t.record_pipe(tick, PIPE_DFS_RETURNED, ())
    t.record_pipe(tick + 1, PIPE_TERMINAL, ())
    return t


class TestHappyPath:
    def test_two_node_reconstruction(self):
        result = MasterComputer().reconstruct(minimal_two_node_transcript())
        assert result.num_nodes == 2
        wires = {(w.src, w.out_port, w.dst, w.in_port) for w in result.wires}
        assert wires == {(0, 1, 1, 1), (1, 1, 0, 1)}

    def test_to_portgraph(self):
        result = MasterComputer().reconstruct(minimal_two_node_transcript())
        graph = result.to_portgraph()
        assert graph.num_nodes == 2
        assert graph.num_wires == 2
        assert graph.frozen

    def test_signature_recorded(self):
        result = MasterComputer().reconstruct(minimal_two_node_transcript())
        assert result.signatures[1] == (((1, 1),), ((1, 1),))

    def test_star_in_ports_resolved(self):
        # Characters created adjacent to the root arrive with STAR in-ports;
        # the computer must substitute the arrival port.
        t = Transcript()
        t.record_pipe(0, PIPE_START, ())
        tick = 3
        t.record_recv(tick, 2, Char("IGH", 1, STAR))     # arrival port 2
        t.record_recv(tick + 1, 2, make_tail("IG"))
        t.record_recv(tick + 2, 2, Char("IDH", 1, STAR))
        t.record_recv(tick + 3, 2, make_tail("ID"))
        t.record_recv(tick + 4, 2, Char("FWD", 1, 1))
        t.record_recv(tick + 5, 2, Char("UNMARK", payload="RCA"))
        t.record_recv(tick + 6, 1, Char("DFS", 1, STAR))
        t.record_pipe(tick + 7, PIPE_DFS_RETURNED, ())
        t.record_pipe(tick + 8, PIPE_TERMINAL, ())
        # stack: push A (FWD), push root (DFS recv)... that DFS pop comes
        # from a BACK; simplify: pop via DFS_RETURNED twice won't match.
        # Instead just verify the signature fill-in:
        computer = MasterComputer(strict=False)
        try:
            computer.reconstruct(t)
        except (ReconstructionError, TranscriptError):
            pass
        sig = computer._signatures.get(1)
        assert sig == (((1, 2),), ((1, 2),))


class TestErrorDetection:
    def test_terminal_missing(self):
        t = Transcript()
        t.record_pipe(0, PIPE_START, ())
        with pytest.raises(TranscriptError):
            MasterComputer().reconstruct(t)

    def test_terminal_with_unbalanced_stack(self):
        t = Transcript()
        t.record_pipe(0, PIPE_START, ())
        rca_events(t, 3, [(1, 1)], [(1, 1)], Char("FWD", 1, 1))
        t.record_pipe(99, PIPE_TERMINAL, ())
        with pytest.raises(ReconstructionError):
            MasterComputer().reconstruct(t)

    def test_pop_on_empty_stack(self):
        t = Transcript()
        t.record_pipe(0, PIPE_START, ())
        t.record_pipe(1, PIPE_DFS_RETURNED, ())
        with pytest.raises(ReconstructionError):
            MasterComputer().reconstruct(t)

    def test_duplicate_start(self):
        t = Transcript()
        t.record_pipe(0, PIPE_START, ())
        t.record_pipe(1, PIPE_START, ())
        with pytest.raises(TranscriptError):
            MasterComputer().reconstruct(t)

    def test_loop_token_before_paths(self):
        t = Transcript()
        t.record_pipe(0, PIPE_START, ())
        t.record_recv(1, 1, Char("FWD", 1, 1))
        with pytest.raises(TranscriptError):
            MasterComputer().reconstruct(t)

    def test_duplicate_out_port_strict(self):
        t = Transcript()
        t.record_pipe(0, PIPE_START, ())
        tick = rca_events(t, 3, [(1, 1)], [(1, 1)], Char("FWD", 1, 1))
        t.record_pipe(tick, PIPE_DFS_RETURNED, ())  # pop back to the root
        # same out-port of the root mapped again, to a different processor
        tick = rca_events(t, tick + 1, [(2, 2)], [(2, 2)], Char("FWD", 1, 2))
        with pytest.raises(ReconstructionError):
            MasterComputer(strict=True).reconstruct(t)

    def test_id_outside_rca(self):
        t = Transcript()
        t.record_pipe(0, PIPE_START, ())
        t.record_recv(1, 1, Char("IDB", 1, 1))
        with pytest.raises(TranscriptError):
            MasterComputer().reconstruct(t)


class TestReconstructedMap:
    def test_illegal_map_raises(self):
        from repro.protocol.root_computer import MappedWire

        bad = ReconstructedMap(
            num_nodes=2,
            wires=[
                MappedWire(0, 1, 1, 1),
                MappedWire(0, 1, 1, 2),  # same out-port twice
            ],
        )
        with pytest.raises(ReconstructionError):
            bad.to_portgraph()

    def test_root_constant(self):
        assert ReconstructedMap.ROOT == 0
