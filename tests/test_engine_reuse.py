"""Engine reuse: reset-then-run must equal fresh-construction, byte for byte.

The zero-rebuild pipeline (compiled-artifact caches, ``Engine.reset``,
:class:`~repro.sim.run.EnginePool`, the campaign executor's per-worker
memos) is pure reuse — none of it may be observable in any run output.
These tests enforce that differentially: every workload runs once on a
fresh engine and once (or more) on a reused one, and transcripts, tick
counts and traffic metrics are compared bit for bit.

A deeper sweep (more families, seeds and timelines) runs when
``REPRO_PARITY_FUZZ=1`` — the same switch as the backend-parity fuzz.
"""

from __future__ import annotations

import os

import pytest

from repro.campaigns.executor import clear_scenario_caches, run_scenario
from repro.campaigns.spec import Scenario, build_family
from repro.dynamics.experiment import compile_timeline, run_dynamic_gtd
from repro.protocol.bca import run_single_bca
from repro.protocol.rca import run_single_rca
from repro.protocol.runner import determine_topology
from repro.sim.batchcore import BatchEngine, have_numpy
from repro.sim.characters import CharInterner, clear_interner_cache, interner_for
from repro.sim.run import ENGINE_BACKENDS, EnginePool
from repro.topology import generators
from repro.topology.compile import (
    CUT,
    TopologyPatcher,
    clear_compiled_cache,
    compile_topology,
    compiled_topology,
)
from tests.test_backend_parity import transcript_bytes

BACKENDS = ("object", "flat")

FUZZ = os.environ.get("REPRO_PARITY_FUZZ") == "1"


def assert_same_topology_result(a, b) -> None:
    assert a.ticks == b.ticks
    assert a.drained_ticks == b.drained_ticks
    assert transcript_bytes(a.transcript) == transcript_bytes(b.transcript)
    assert a.metrics.delivered == b.metrics.delivered
    assert a.metrics.emitted == b.metrics.emitted
    assert a.rca_runs == b.rca_runs and a.bca_runs == b.bca_runs


def assert_same_dynamic_result(a, b) -> None:
    assert a.outcome == b.outcome
    assert a.ticks == b.ticks
    assert transcript_bytes(a.transcript) == transcript_bytes(b.transcript)
    assert a.metrics.delivered == b.metrics.delivered
    assert a.metrics.emitted == b.metrics.emitted
    assert a.lost_characters == b.lost_characters
    assert a.hops == b.hops
    assert a.applied_ops == b.applied_ops
    assert a.phase == b.phase


# ----------------------------------------------------------------------
# the compiled-artifact caches
# ----------------------------------------------------------------------
class TestCompiledCache:
    def test_same_wiring_shares_one_artifact(self):
        a = build_family("de-bruijn", 8, 0)
        b = build_family("de-bruijn", 8, 1)  # seed is unused: same wiring
        assert compiled_topology(a) is compiled_topology(b)

    def test_distinct_wirings_get_distinct_artifacts(self):
        ring = generators.directed_ring(6)
        line = generators.bidirectional_line(6)
        assert compiled_topology(ring) is not compiled_topology(line)

    def test_fork_isolates_mutation_from_the_shared_artifact(self):
        graph = generators.bidirectional_ring(5)
        shared = compiled_topology(graph)
        fork = shared.fork()
        assert fork is not shared
        assert fork.pristine is shared
        assert fork.wire_dst == shared.wire_dst
        # CSR census is shared (never patched), wire tables are private
        assert fork.out_ports is shared.out_ports
        assert fork.wire_dst is not shared.wire_dst
        patcher = TopologyPatcher(fork)
        slot = patcher.slot(2, 1)
        patcher.cut(slot)
        assert fork.wire_dst[slot] == CUT
        assert shared.wire_dst[slot] != CUT, "fork leaked into the shared artifact"
        patcher.reset()
        assert fork.wire_dst == shared.wire_dst
        assert not patcher.touched

    def test_fork_of_fork_stays_anchored_to_the_original(self):
        graph = generators.bidirectional_ring(4)
        shared = compiled_topology(graph)
        assert shared.fork().fork().pristine is shared

    def test_patcher_on_uncached_compile_still_copies_a_base(self):
        graph = generators.directed_ring(4)
        topo = compile_topology(graph)  # pure function, no pristine
        patcher = TopologyPatcher(topo)
        slot = patcher.slot(1, 1)
        original = topo.wire_dst[slot]
        patcher.cut(slot)
        patcher.restore(slot)
        assert topo.wire_dst[slot] == original

    def test_cache_clear(self):
        graph = generators.directed_ring(5)
        before = compiled_topology(graph)
        clear_compiled_cache()
        assert compiled_topology(graph) is not before


class TestInternerCache:
    def test_shared_per_delta(self):
        assert interner_for(3) is interner_for(3)
        assert interner_for(3) is not interner_for(4)

    def test_shared_interner_matches_fresh_enumeration(self):
        shared = interner_for(2)
        fresh = CharInterner(2)
        assert shared.chars[: len(fresh.chars)] == fresh.chars

    def test_cache_clear(self):
        before = interner_for(3)
        clear_interner_cache()
        assert interner_for(3) is not before


# ----------------------------------------------------------------------
# reset parity: static protocol runs
# ----------------------------------------------------------------------
GTD_CASES = [
    ("de-bruijn", 8, 0),
    ("bidirectional-ring", 7, 0),
    ("random", 9, 3),
]
if FUZZ:
    GTD_CASES += [
        ("de-bruijn", 16, 0),
        ("hypercube", 8, 0),
        ("directed-torus", 9, 0),
        ("manhattan", 9, 0),
        ("tree-with-loop", 7, 1),
        ("random", 12, 5),
        ("random", 14, 7),
        ("spare-ring", 12, 0),
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family,size,seed", GTD_CASES)
def test_gtd_reset_run_equals_fresh_run(backend, family, size, seed):
    graph = build_family(family, size, seed)
    fresh = determine_topology(graph, backend=backend)
    pool = EnginePool()
    first = determine_topology(graph, backend=backend, pool=pool)
    reused = determine_topology(graph, backend=backend, pool=pool)
    assert pool.hits == 1 and pool.misses == 1
    assert_same_topology_result(fresh, first)
    assert_same_topology_result(fresh, reused)
    # the first run's captured transcript/metrics survive the reset intact
    assert transcript_bytes(first.transcript) == transcript_bytes(fresh.transcript)
    assert first.metrics.delivered == fresh.metrics.delivered


@pytest.mark.parametrize("backend", BACKENDS)
def test_reset_engine_is_the_same_object(backend):
    graph = build_family("de-bruijn", 8, 0)
    pool = EnginePool()
    engine_cls = ENGINE_BACKENDS[backend]
    from repro.protocol.gtd import GTDProcessor

    a = pool.checkout(engine_cls, graph, GTDProcessor)
    pool.checkin(a)
    b = pool.checkout(engine_cls, graph, GTDProcessor)
    assert a is b, "pool must reuse, not rebuild"
    assert b.tick == 0 and b.is_idle()


def test_pool_evicts_cold_keys_beyond_the_global_bound():
    """Never-recurring keys (e.g. shutdown cells' degraded graphs) must
    not accumulate engines without bound in a long-lived worker."""
    from repro.protocol.gtd import GTDProcessor

    pool = EnginePool()
    graphs = [generators.random_strongly_connected(6, seed=s) for s in range(40)]
    distinct = {compiled_topology(g) for g in graphs}  # wirings do differ
    assert len(distinct) > EnginePool.MAX_IDLE_TOTAL
    for graph in graphs:
        engine = pool.checkout(ENGINE_BACKENDS["object"], graph, GTDProcessor)
        pool.checkin(engine)
    total = sum(len(stack) for stack in pool._idle.values())
    assert total <= EnginePool.MAX_IDLE_TOTAL
    # the hottest (most recent) key survived, the coldest were evicted
    hits_before = pool.hits
    last = pool.checkout(ENGINE_BACKENDS["object"], graphs[-1], GTDProcessor)
    assert pool.hits == hits_before + 1 and last is engine


def test_pool_keys_separate_backends_and_processor_types():
    from repro.protocol.gtd import GTDProcessor
    from repro.protocol.rca import ScriptedRCADriver

    graph = build_family("de-bruijn", 8, 0)
    pool = EnginePool()
    a = pool.checkout(ENGINE_BACKENDS["object"], graph, GTDProcessor)
    pool.checkin(a)
    flat = pool.checkout(ENGINE_BACKENDS["flat"], graph, GTDProcessor)
    scripted = pool.checkout(ENGINE_BACKENDS["object"], graph, ScriptedRCADriver)
    assert flat is not a and scripted is not a


# ----------------------------------------------------------------------
# batched lanes through the pool
# ----------------------------------------------------------------------
needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="numpy not installed (the [batch] extra)"
)


@needs_numpy
def test_pool_keys_separate_lane_counts():
    """A 3-lane batch engine must never be handed out for a 1-lane ask."""
    from repro.protocol.gtd import GTDProcessor

    graph = build_family("de-bruijn", 8, 0)
    pool = EnginePool()
    solo = pool.checkout(BatchEngine, graph, GTDProcessor)
    wide = pool.checkout(BatchEngine, graph, GTDProcessor, lanes=3)
    assert solo is not wide and solo.lanes == 1 and wide.lanes == 3
    pool.checkin(solo)
    pool.checkin(wide)
    assert pool.checkout(BatchEngine, graph, GTDProcessor, lanes=3) is wide
    assert pool.checkout(BatchEngine, graph, GTDProcessor) is solo


@needs_numpy
def test_batch_checkout_reset_checkin_parity():
    """A reused batched engine reruns its lanes byte-identically."""
    from repro.dynamics.experiment import run_dynamic_gtd_lanes

    graph = build_family("spare-ring", 10, 0)
    programs = [
        compile_timeline(TIMELINES[0], graph, seed=3),
        compile_timeline(TIMELINES[1], graph, seed=4),
        (),
    ]
    budgets = [1000, 1000, 1000]
    fresh = run_dynamic_gtd_lanes(graph, programs, budgets)
    pool = EnginePool()
    first = run_dynamic_gtd_lanes(graph, programs, budgets, pool=pool)
    reused = run_dynamic_gtd_lanes(graph, programs, budgets, pool=pool)
    assert pool.misses == 1 and pool.hits == 1
    for a, b, c in zip(fresh, first, reused):
        assert_same_dynamic_result(a, b)
        assert_same_dynamic_result(a, c)


@needs_numpy
def test_batch_reset_swaps_lane_timelines_cleanly():
    """Reused lanes loaded with swapped programs forget the old ones."""
    from repro.dynamics.experiment import run_dynamic_gtd_lanes

    graph = build_family("spare-ring", 10, 1)
    heavy = compile_timeline(TIMELINES[0], graph, seed=3)
    light = compile_timeline("cut@1.5", graph, seed=3)
    pool = EnginePool()
    run_dynamic_gtd_lanes(graph, [heavy, light], [900, 900], pool=pool)
    fresh = run_dynamic_gtd_lanes(graph, [light, heavy], [900, 900])
    reused = run_dynamic_gtd_lanes(graph, [light, heavy], [900, 900], pool=pool)
    assert pool.hits == 1
    for a, b in zip(fresh, reused):
        assert_same_dynamic_result(a, b)


# ----------------------------------------------------------------------
# reset parity: scripted single-RCA / single-BCA episode loops
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_rca_episode_loop_reuses_one_engine(backend):
    graph = generators.bidirectional_line(10)
    pool = EnginePool()
    for initiator in (1, 5, 9, 5, 1):
        fresh = run_single_rca(graph, initiator=initiator, backend=backend)
        pooled = run_single_rca(graph, initiator=initiator, backend=backend, pool=pool)
        assert fresh.ticks == pooled.ticks
        assert fresh.completed_at == pooled.completed_at
        assert transcript_bytes(fresh.transcript) == transcript_bytes(
            pooled.transcript
        )
    assert pool.misses == 1 and pool.hits == 4


@pytest.mark.parametrize("backend", BACKENDS)
def test_bca_episode_loop_reuses_one_engine(backend):
    graph = generators.bidirectional_ring(8)
    pool = EnginePool()
    for node in (3, 5, 3):
        fresh = run_single_bca(graph, node, 1, backend=backend)
        pooled = run_single_bca(graph, node, 1, backend=backend, pool=pool)
        assert fresh.delivered_at == pooled.delivered_at
        assert fresh.initiator_done_at == pooled.initiator_done_at
        assert fresh.target_resumed_at == pooled.target_resumed_at
        assert fresh.ticks == pooled.ticks
    assert pool.misses == 1 and pool.hits == 2


# ----------------------------------------------------------------------
# reset parity: timeline-driven dynamic runs
# ----------------------------------------------------------------------
TIMELINES = [
    "churn:rate=0.1,period=0.25,heal=0.8,until=0.8",
    "storm:p=0.2@0.4",
    "cut@0.5+heal@0.7",
]
if FUZZ:
    TIMELINES += [
        "flap:wire=1:1,on=0.05,off=0.15,cycles=3",
        "frontier:k=2@0.5",
        "storm:p=0.1@0.3+heal:n=2@0.6",
        "add@0.4",
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("timeline", TIMELINES)
def test_dynamic_reset_run_equals_fresh_run(backend, timeline):
    graph = build_family("spare-ring", 10, 0)
    program = compile_timeline(timeline, graph, seed=7)
    fresh = run_dynamic_gtd(graph, program, backend=backend)
    pool = EnginePool()
    first = run_dynamic_gtd(graph, program, backend=backend, pool=pool)
    reused = run_dynamic_gtd(graph, program, backend=backend, pool=pool)
    assert_same_dynamic_result(fresh, first)
    assert_same_dynamic_result(fresh, reused)


@pytest.mark.parametrize("backend", BACKENDS)
def test_dynamic_reset_swaps_timelines_cleanly(backend):
    """A reused engine loaded with a *different* program forgets the old one."""
    graph = build_family("spare-ring", 10, 1)
    heavy = compile_timeline(TIMELINES[0], graph, seed=3)
    light = compile_timeline("cut@1.5", graph, seed=3)
    pool = EnginePool()
    run_dynamic_gtd(graph, heavy, backend=backend, pool=pool)  # dirty the engine
    fresh = run_dynamic_gtd(graph, light, backend=backend)
    reused = run_dynamic_gtd(graph, light, backend=backend, pool=pool)
    assert_same_dynamic_result(fresh, reused)
    # and back again: the light program must not leak into the heavy one
    fresh_heavy = run_dynamic_gtd(graph, heavy, backend=backend)
    reused_heavy = run_dynamic_gtd(graph, heavy, backend=backend, pool=pool)
    assert_same_dynamic_result(fresh_heavy, reused_heavy)


# ----------------------------------------------------------------------
# the campaign cache layer: cached path == fresh path, scenario for scenario
# ----------------------------------------------------------------------
SCENARIO_MATRIX = [
    Scenario("spare-ring", 8, fault, seed, backend)
    for backend in BACKENDS
    for fault in ("none", "shutdown:0.15", "cut:0.5", "add:0.6", "storm:p=0.2@0.5")
    for seed in ((0, 1) if FUZZ else (0,))
]


def test_run_scenario_cached_equals_fresh():
    clear_scenario_caches()
    for scenario in SCENARIO_MATRIX:
        cached = run_scenario(scenario)
        again = run_scenario(scenario)
        fresh = run_scenario(scenario, fresh=True)
        assert cached == fresh, f"cache changed the result of {scenario.label}"
        assert again == fresh


@pytest.mark.skipif(not FUZZ, reason="extended fuzz sweep (REPRO_PARITY_FUZZ=1)")
def test_run_scenario_cached_equals_fresh_fuzz():
    clear_scenario_caches()
    for family, size in (("random", 10), ("de-bruijn", 8), ("spare-ring", 12)):
        for fault in ("none", "cut:0.3", "cut:0.9", "shutdown:0.2",
                      "churn:rate=0.1,period=0.3,heal=0.7,until=0.9"):
            for seed in (0, 2):
                for backend in BACKENDS:
                    if family != "spare-ring" and fault.startswith("churn"):
                        continue
                    scenario = Scenario(family, size, fault, seed, backend)
                    assert run_scenario(scenario) == run_scenario(
                        scenario, fresh=True
                    ), scenario.label
