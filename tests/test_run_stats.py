"""Per-RCA episode mining from root transcripts."""

import pytest

from repro import determine_topology
from repro.analysis.run_stats import RcaEpisode, episode_scaling, rca_episodes
from repro.errors import TranscriptError
from repro.sim.transcript import Transcript
from repro.topology import generators


class TestEpisodeExtraction:
    def test_episode_count_matches_rca_runs(self, debruijn8):
        result = determine_topology(debruijn8)
        assert len(rca_episodes(result.transcript)) == result.rca_runs

    def test_tokens_partition(self, ring4):
        result = determine_topology(ring4)
        episodes = rca_episodes(result.transcript)
        fwd = [e for e in episodes if e.token == "FWD"]
        back = [e for e in episodes if e.token == "BACK"]
        assert len(fwd) + len(back) == len(episodes)
        assert len(fwd) == ring4.num_wires - ring4.in_degree(0)
        assert len(back) == ring4.num_wires - ring4.out_degree(0)

    def test_loop_lengths_positive(self, debruijn8):
        result = determine_topology(debruijn8)
        for ep in rca_episodes(result.transcript):
            assert ep.dist_to_root >= 1
            assert ep.dist_from_root >= 1
            assert ep.duration > 0

    def test_durations_ordered(self, debruijn8):
        result = determine_topology(debruijn8)
        episodes = rca_episodes(result.transcript)
        assert all(e.end_tick > e.start_tick for e in episodes)
        starts = [e.start_tick for e in episodes]
        assert starts == sorted(starts)  # RCAs are serialized

    def test_empty_transcript(self):
        assert rca_episodes(Transcript()) == []


class TestEpisodeScaling:
    def test_linear_on_ring(self):
        result = determine_topology(generators.bidirectional_ring(10))
        fit = episode_scaling(rca_episodes(result.transcript))
        assert fit.r_squared > 0.999
        assert 5 < fit.slope < 15

    def test_degenerate_single_length(self):
        eps = [
            RcaEpisode(start_tick=0, end_tick=20, dist_to_root=1,
                       dist_from_root=1, token="FWD"),
            RcaEpisode(start_tick=30, end_tick=50, dist_to_root=1,
                       dist_from_root=1, token="BACK"),
        ]
        fit = episode_scaling(eps)
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(20.0)

    def test_needs_two_episodes(self):
        with pytest.raises(TranscriptError):
            episode_scaling([])

    def test_complete_graph_all_loops_length_two(self):
        result = determine_topology(generators.complete_bidirectional(4))
        episodes = rca_episodes(result.transcript)
        assert all(e.loop_length == 2 for e in episodes)
        fit = episode_scaling(episodes)
        assert fit.r_squared == 1.0
