"""The persistent campaign store, resume semantics, and bench baselines."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

import repro

from repro.analysis.run_stats import aggregate_stats
from repro.bench.baseline import (
    Metric,
    compare_baselines,
    compare_files,
    load_baseline,
    record_metric,
    write_baseline,
)
from repro.campaigns import CampaignSpec, Scenario, run_campaign, run_scenario
from repro.cli import main
from repro.errors import BaselineError, ReproError, StoreError
from repro.store import (
    ResultStore,
    result_from_doc,
    result_to_doc,
    verify_result_store,
)

SPEC = CampaignSpec(
    families=("de-bruijn", "bidirectional-ring"),
    sizes=(6,),
    faults=("none", "shutdown:0.1"),
    seeds=(0, 1),
)


# ----------------------------------------------------------------------
# canonical spec hashing
# ----------------------------------------------------------------------
class TestSpecHash:
    def test_pinned_golden_hashes(self):
        # Pinned literals: the canonical form is an on-disk contract, so a
        # change here silently orphans every existing store.
        assert Scenario("de-bruijn", 8, "shutdown:0.1", 3).spec_hash() == (
            "7437ac071feff7462a689997c65d4ac3f91adf39f3b90918cbcf399007ca0f8c"
        )
        assert Scenario("de-bruijn", 8).spec_hash() == (
            "beb84c93761c1775ea9455b3b06a10a8c49ab6095183a603bfec4d2be20a5a92"
        )

    def test_equivalent_fault_spellings_are_the_same_scenario(self):
        a = Scenario("torus", 9, "shutdown:0.10", 2)
        b = Scenario("torus", 9, "shutdown:0.1", 2)
        # canonicalized at construction: equal, same hash, same label
        assert a == b
        assert a.fault == "shutdown:0.1"
        assert a.spec_hash() == b.spec_hash()
        assert a.label == b.label

    def test_noncanonical_spelling_roundtrips_through_store(self, tmp_path):
        result = run_scenario(Scenario("bidirectional-ring", 6, "shutdown:0.10", 1))
        assert result_from_doc(result_to_doc(result)) == result
        store = ResultStore(tmp_path / "run")
        store.put(result)
        assert ResultStore(tmp_path / "run").get(result.scenario) == result

    def test_distinct_scenarios_hash_differently(self):
        hashes = {s.spec_hash() for s in SPEC.scenarios()}
        assert len(hashes) == len(SPEC)

    def test_stable_across_process_boundaries(self):
        # hash() randomizes per interpreter; spec_hash must not.  Force a
        # different PYTHONHASHSEED to prove independence.
        code = (
            "from repro.campaigns.spec import Scenario;"
            "print(Scenario('de-bruijn', 8, 'shutdown:0.1', 3).spec_hash())"
        )
        src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": src_dir, "PYTHONHASHSEED": "12345"},
        )
        expected = Scenario("de-bruijn", 8, "shutdown:0.1", 3).spec_hash()
        assert out.stdout.strip() == expected

    def test_matrix_hash_reflects_order_and_content(self):
        base = SPEC.spec_hash()
        reordered = CampaignSpec(
            families=("bidirectional-ring", "de-bruijn"),
            sizes=SPEC.sizes,
            faults=SPEC.faults,
            seeds=SPEC.seeds,
        )
        assert reordered.spec_hash() != base
        assert SPEC.spec_hash() == base  # deterministic


# ----------------------------------------------------------------------
# record round-trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize(
        "scenario",
        [
            Scenario("de-bruijn", 6),
            Scenario("bidirectional-ring", 6, "shutdown:0.2", 1),
            Scenario("spare-ring", 6, "cut:0.5"),
            Scenario("de-bruijn", 6, "add:1.2"),  # infeasible cell
        ],
    )
    def test_doc_roundtrip_is_value_identical(self, scenario):
        result = run_scenario(scenario)
        doc = json.loads(json.dumps(result_to_doc(result)))  # through JSON
        assert result_from_doc(doc) == result

    def test_malformed_doc_raises_store_error(self):
        with pytest.raises(StoreError, match="malformed"):
            result_from_doc({"scenario": {"family": "de-bruijn"}})


# ----------------------------------------------------------------------
# the store itself
# ----------------------------------------------------------------------
class TestResultStore:
    def test_put_get_reopen(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        result = run_scenario(Scenario("de-bruijn", 6))
        key = store.put(result)
        assert key == result.scenario.spec_hash()
        assert store.get(result.scenario) == result
        assert result.scenario in store and key in store
        reopened = ResultStore(tmp_path / "run")
        assert len(reopened) == 1
        assert reopened.get(key) == result

    def test_write_read_aggregate_equals_in_memory_aggregate(self, tmp_path):
        campaign = run_campaign(SPEC, store=tmp_path / "run")
        reopened = ResultStore(tmp_path / "run")
        assert reopened.stats(SPEC).to_json() == campaign.stats().to_json()
        # and the generic all-records aggregate matches too: the store
        # holds exactly this campaign
        assert (
            aggregate_stats(reopened.results()).to_json()
            == campaign.stats().to_json()
        )

    def test_last_record_wins_on_duplicate_keys(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        result = run_scenario(Scenario("de-bruijn", 6))
        store.put(result)
        store.put(result)
        assert len(store) == 1
        assert len(ResultStore(tmp_path / "run")) == 1

    def test_torn_final_line_is_dropped_and_truncated(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        results = [run_scenario(s) for s in SPEC.scenarios()[:2]]
        keys = store.put_many(results)
        # simulate a kill mid-append: a half-written record at shard end
        shard = next((tmp_path / "run" / "shards").glob(f"{keys[1][:2]}*.jsonl"))
        intact = shard.read_bytes()
        with shard.open("a") as fh:
            fh.write('{"key": "deadbeef", "result": {"scenario"')
        reopened = ResultStore(tmp_path / "run")
        assert len(reopened) == 2
        assert reopened.get(keys[0]) == results[0]
        assert reopened.get(keys[1]) == results[1]
        # the fragment was truncated away on load, so a later append starts
        # on a clean line boundary instead of welding onto the fragment...
        assert shard.read_bytes() == intact
        reopened.put(results[1])
        # ...and the store stays readable forever after
        third = ResultStore(tmp_path / "run")
        assert len(third) == 2 and third.get(keys[1]) == results[1]

    def test_non_object_json_line_is_store_error(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        key = store.put(run_scenario(Scenario("de-bruijn", 6)))
        shard = tmp_path / "run" / "shards" / f"{key[:2]}.jsonl"
        lines = shard.read_text().splitlines()
        shard.write_text("5\n" + "\n".join(lines) + "\n")
        with pytest.raises(StoreError, match="corrupt record"):
            ResultStore(tmp_path / "run")

    def test_mid_file_corruption_raises(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        result = run_scenario(Scenario("de-bruijn", 6))
        key = store.put(result)
        store.put(result)  # same shard, so the corrupt line is not last
        shard = tmp_path / "run" / "shards" / f"{key[:2]}.jsonl"
        lines = shard.read_text().splitlines()
        lines[0] = "not json at all"
        shard.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreError, match="corrupt record"):
            ResultStore(tmp_path / "run")

    def test_foreign_directory_rejected(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text('{"format": "something/else"}')
        with pytest.raises(StoreError, match="not a repro.result-store"):
            ResultStore(tmp_path)

    def test_missing_and_results_for(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        scenarios = SPEC.scenarios()
        store.put(run_scenario(scenarios[0]))
        assert store.missing(SPEC) == scenarios[1:]
        slots = store.results_for(SPEC)
        assert slots[0] is not None and slots[1:] == [None] * (len(SPEC) - 1)
        with pytest.raises(StoreError, match="missing"):
            store.stats(SPEC)


# ----------------------------------------------------------------------
# offline shard verification
# ----------------------------------------------------------------------
class TestStoreVerify:
    def test_clean_store_verifies(self, tmp_path):
        run_campaign(SPEC, store=tmp_path / "run")
        report = verify_result_store(tmp_path / "run")
        assert report.ok
        assert report.records == len(SPEC)
        assert report.keys == len(SPEC)
        assert report.duplicates == 0 and not report.torn
        assert "0 corrupt record(s)" in report.summary()

    def test_verify_is_read_only_and_reports_torn_tail(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        key = store.put(run_scenario(Scenario("de-bruijn", 6)))
        shard = tmp_path / "run" / "shards" / f"{key[:2]}.jsonl"
        with shard.open("a") as fh:
            fh.write('{"key": "deadbeef", "result": {"scenario"')
        before = shard.read_bytes()
        report = verify_result_store(tmp_path / "run")
        # a torn trailing line is a warning (crash-consistent appends
        # leave one), not a corruption problem — and unlike the loader,
        # verify never truncates it away
        assert report.ok and len(report.torn) == 1
        assert shard.read_bytes() == before
        assert "TORN" in report.summary()

    def test_mid_shard_corruption_is_a_problem(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        result = run_scenario(Scenario("de-bruijn", 6))
        key = store.put(result)
        store.put(result)  # two lines in the shard: corrupt the first
        shard = tmp_path / "run" / "shards" / f"{key[:2]}.jsonl"
        lines = shard.read_text().splitlines()
        lines[0] = "not json at all"
        shard.write_text("\n".join(lines) + "\n")
        report = verify_result_store(tmp_path / "run")
        assert not report.ok
        assert any(":1:" in problem for problem in report.problems)

    def test_key_spec_hash_mismatch_is_a_problem(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        key = store.put(run_scenario(Scenario("de-bruijn", 6)))
        shard = tmp_path / "run" / "shards" / f"{key[:2]}.jsonl"
        doc = json.loads(shard.read_text())
        doc["key"] = "0" * len(key)
        shard.write_text(json.dumps(doc) + "\n")
        report = verify_result_store(tmp_path / "run")
        assert not report.ok
        assert any("spec hash" in problem for problem in report.problems)

    def test_missing_manifest_is_a_problem(self, tmp_path):
        report = verify_result_store(tmp_path / "empty")
        assert not report.ok

    def test_duplicate_keys_counted_not_flagged(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        result = run_scenario(Scenario("de-bruijn", 6))
        store.put(result)
        store.put(result)  # last-record-wins appends are legal
        report = verify_result_store(tmp_path / "run")
        assert report.ok
        assert report.records == 2 and report.keys == 1
        assert report.duplicates == 1

    def test_cli_verify_front_door(self, capsys, tmp_path):
        run_campaign(SPEC, store=tmp_path / "run")
        assert main(["store", str(tmp_path / "run"), "--verify"]) == 0
        assert "0 corrupt record(s)" in capsys.readouterr().out
        shard = next((tmp_path / "run" / "shards").glob("*.jsonl"))
        shard.write_text("garbage\n" + shard.read_text())
        assert main(["store", str(tmp_path / "run"), "--verify"]) == 1
        assert "CORRUPT" in capsys.readouterr().out


# ----------------------------------------------------------------------
# resume and caching through the executor
# ----------------------------------------------------------------------
class TestResume:
    def test_interrupted_campaign_resumes_bit_identical(self, tmp_path):
        uninterrupted = run_campaign(SPEC)
        scenarios = SPEC.scenarios()
        k = 3
        store = ResultStore(tmp_path / "run")
        # the "crash": only k of n scenarios completed, plus a torn record
        run_campaign(scenarios[:k], store=store)
        shard = next(iter(sorted((tmp_path / "run" / "shards").glob("*.jsonl"))))
        with shard.open("a") as fh:
            fh.write('{"key": "00", "result"')
        resumed_store = ResultStore(tmp_path / "run")
        assert len(resumed_store) == k
        resumed = run_campaign(SPEC, store=resumed_store)
        assert resumed.results == uninterrupted.results
        assert resumed.stats().to_json() == uninterrupted.stats().to_json()

    def test_resume_runs_only_missing_scenarios(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "run")
        scenarios = SPEC.scenarios()
        run_campaign(scenarios[:5], store=store)

        import repro.campaigns.executor as executor

        executed = []
        real = executor.run_scenario

        def counting(scenario):
            executed.append(scenario)
            return real(scenario)

        monkeypatch.setattr(executor, "run_scenario", counting)
        run_campaign(SPEC, store=store)
        # Execution order follows the setup-key chunking, not matrix order
        # (the serial path shares the parallel path's chunker); the
        # contract is that exactly the missing cells run, each once.
        assert sorted(executed, key=scenarios.index) == scenarios[5:]

    def test_parallel_resume_identical_to_serial(self, tmp_path):
        run_campaign(SPEC.scenarios()[:3], store=tmp_path / "a")
        run_campaign(SPEC.scenarios()[:3], store=tmp_path / "b")
        serial = run_campaign(SPEC, jobs=1, store=tmp_path / "a")
        parallel = run_campaign(SPEC, jobs=4, store=tmp_path / "b")
        assert serial.results == parallel.results

    def test_overlapping_matrix_reuses_stored_cells(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        run_campaign(SPEC, store=store)
        bigger = CampaignSpec(
            families=SPEC.families,
            sizes=SPEC.sizes,
            faults=SPEC.faults,
            seeds=(0, 1, 2),
        )
        assert len(store.missing(bigger)) == len(bigger) - len(SPEC)
        campaign = run_campaign(bigger, store=store)
        assert len(store) == len(bigger)
        assert campaign.results == run_campaign(bigger).results

    def test_jobs_exceeding_pending_work_is_clamped_and_exact(self, tmp_path):
        # jobs far beyond the cell count must not change results (and a
        # single pending scenario takes the serial path outright)
        small = CampaignSpec(families=("de-bruijn",), sizes=(6,), seeds=(0, 1))
        assert (
            run_campaign(small, jobs=64).results == run_campaign(small).results
        )
        store = ResultStore(tmp_path / "run")
        run_campaign(small.scenarios()[:1], store=store)
        resumed = run_campaign(small, jobs=64, store=store)
        assert resumed.results == run_campaign(small).results


# ----------------------------------------------------------------------
# bench baselines
# ----------------------------------------------------------------------
def _doc(**values):
    return {
        "format": "repro.bench-baseline/v1",
        "experiment": "e13",
        "metrics": {
            name: {"value": value, "direction": direction}
            for name, (value, direction) in values.items()
        },
        "meta": {},
    }


class TestBaseline:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_baseline(path, "x", {"rate": Metric(100.0, unit="hops/s")})
        doc = load_baseline(path)
        assert doc["experiment"] == "x"
        assert doc["metrics"]["rate"]["value"] == 100.0

    def test_record_metric_merges(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record_metric(path, "x", "a", 1.0)
        record_metric(path, "x", "b", 2.0, direction="lower", meta={"n": 3})
        doc = load_baseline(path)
        assert set(doc["metrics"]) == {"a", "b"}
        assert doc["meta"] == {"n": 3}
        # a different experiment replaces rather than merges
        record_metric(path, "y", "c", 3.0)
        assert set(load_baseline(path)["metrics"]) == {"c"}

    def test_identical_snapshots_pass(self):
        doc = _doc(rate=(100.0, "higher"), ticks=(500.0, "lower"))
        report = compare_baselines(doc, doc, threshold=0.35)
        assert report.ok and [r.status for r in report.rows] == ["ok", "ok"]

    def test_synthetic_2x_slowdown_fails_both_directions(self):
        base = _doc(rate=(100.0, "higher"), ticks=(500.0, "lower"))
        slow = _doc(rate=(50.0, "higher"), ticks=(1000.0, "lower"))
        report = compare_baselines(base, slow, threshold=0.35)
        assert not report.ok
        assert {r.name for r in report.regressions} == {"rate", "ticks"}

    def test_improvement_is_flagged_not_failed(self):
        base = _doc(rate=(100.0, "higher"))
        fast = _doc(rate=(200.0, "higher"))
        report = compare_baselines(base, fast, threshold=0.35)
        assert report.ok
        assert report.rows[0].status == "improved"

    def test_zero_fresh_cost_metric_is_perfect_not_a_crash(self):
        base = _doc(ticks=(500.0, "lower"))
        perfect = _doc(ticks=(0.0, "lower"))
        report = compare_baselines(base, perfect, threshold=0.35)
        assert report.ok
        assert report.rows[0].status == "improved"

    def test_missing_metric_skipped_unless_required(self):
        base = _doc(rate=(100.0, "higher"), extra=(1.0, "higher"))
        fresh = _doc(rate=(100.0, "higher"))
        assert compare_baselines(base, fresh, threshold=0.1).ok
        hard = compare_baselines(base, fresh, threshold=0.1, require_all=True)
        assert not hard.ok and hard.regressions[0].name == "extra"

    def test_experiment_mismatch_rejected(self):
        base = _doc(rate=(100.0, "higher"))
        other = dict(_doc(rate=(100.0, "higher")), experiment="e3")
        with pytest.raises(BaselineError, match="experiment mismatch"):
            compare_baselines(base, other, threshold=0.1)

    def test_bad_threshold_and_direction_rejected(self):
        doc = _doc(rate=(100.0, "higher"))
        with pytest.raises(BaselineError, match="threshold"):
            compare_baselines(doc, doc, threshold=1.5)
        with pytest.raises(BaselineError, match="direction"):
            Metric(1.0, direction="sideways")

    def test_committed_e13_baseline_loads_and_self_compares(self):
        repo_root = pathlib.Path(__file__).resolve().parents[1]
        committed = repo_root / "benchmarks" / "baselines" / "BENCH_e13.json"
        report = compare_files(committed, committed, threshold=0.35)
        assert report.ok and len(report.rows) >= 3


# ----------------------------------------------------------------------
# CLI front doors
# ----------------------------------------------------------------------
class TestCli:
    ARGS = ["campaign", "--families", "de-bruijn", "--sizes", "6", "--seeds", "2"]

    def test_campaign_store_then_resume(self, capsys, tmp_path):
        run_dir = str(tmp_path / "run")
        assert main(self.ARGS + ["--store", run_dir]) == 0
        out = capsys.readouterr().out
        assert "reused 0 stored scenario(s), ran 2 fresh" in out
        assert main(self.ARGS + ["--resume", run_dir]) == 0
        out = capsys.readouterr().out
        assert "reused 2 stored scenario(s), ran 0 fresh" in out

    def test_resume_requires_existing_store(self, capsys, tmp_path):
        assert main(self.ARGS + ["--resume", str(tmp_path / "nope")]) == 2
        assert "no store at" in capsys.readouterr().err

    def test_resume_and_store_must_agree(self, capsys, tmp_path):
        code = main(
            self.ARGS
            + ["--resume", str(tmp_path / "a"), "--store", str(tmp_path / "b")]
        )
        assert code == 2
        assert "different directories" in capsys.readouterr().err

    def test_store_subcommand_reports_aggregates(self, capsys, tmp_path):
        run_dir = str(tmp_path / "run")
        assert main(self.ARGS + ["--store", run_dir]) == 0
        capsys.readouterr()
        assert main(["store", run_dir, "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out and "episode scaling" in out
        stats_line = out.strip().splitlines()[-1]
        assert json.loads(stats_line)["scenarios"] == 2

    def test_store_subcommand_missing_dir(self, capsys, tmp_path):
        assert main(["store", str(tmp_path / "nope")]) == 2
        assert "no result store" in capsys.readouterr().err

    def test_bench_compare_pass_and_fail(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        write_baseline(base, "e13", {"rate": Metric(100.0, unit="hops/s")})
        slow = tmp_path / "slow.json"
        write_baseline(slow, "e13", {"rate": Metric(50.0, unit="hops/s")})
        argv = ["bench-compare", "--baseline", str(base), "--threshold", "0.35"]
        assert main(argv + ["--fresh", str(base)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(argv + ["--fresh", str(slow)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regressed beyond 35%" in captured.err

    def test_bench_compare_missing_file_is_clean_error(self, capsys, tmp_path):
        argv = [
            "bench-compare",
            "--baseline",
            str(tmp_path / "none.json"),
            "--fresh",
            str(tmp_path / "none.json"),
        ]
        assert main(argv) == 2
        assert "no baseline file" in capsys.readouterr().err
