"""The runner API surface and the invariant sweeps."""

import pytest

from repro import determine_topology
from repro.errors import CleanupViolation, NotStronglyConnectedError, TickBudgetExceeded
from repro.protocol.gtd import GTDProcessor
from repro.protocol.invariants import assert_network_clean, collect_residue
from repro.protocol.runner import default_tick_budget
from repro.sim.characters import SCOPE_BCA, SCOPE_RCA
from repro.sim.engine import Engine
from repro.topology.portgraph import PortGraph


class TestRunnerApi:
    def test_result_fields(self, debruijn8):
        r = determine_topology(debruijn8)
        assert r.ticks > 0
        assert r.drained_ticks >= r.ticks
        assert r.diameter == 3
        assert r.rca_runs > 0 and r.bca_runs > 0
        assert len(r.transcript) > 0
        assert r.metrics.total_delivered > 0

    def test_graph_property_matches_recovered(self, debruijn8):
        r = determine_topology(debruijn8)
        assert r.graph.num_nodes == r.recovered.num_nodes
        assert r.graph.num_wires == len(r.recovered.wires)

    def test_rejects_weak_graph(self):
        g = PortGraph(2, 2)
        g.add_wire(0, 1, 0, 1)
        g.add_wire(1, 1, 1, 1)
        g.freeze()
        with pytest.raises(NotStronglyConnectedError):
            determine_topology(g)

    def test_watchdog_fires_on_tiny_budget(self, debruijn8):
        with pytest.raises(TickBudgetExceeded):
            determine_topology(debruijn8, max_ticks=10)

    def test_watchdog_fires_with_cleanup_checks(self, debruijn8):
        with pytest.raises(TickBudgetExceeded):
            determine_topology(debruijn8, max_ticks=10, verify_cleanup=True)

    def test_default_budget_generous(self, debruijn8):
        r = determine_topology(debruijn8)
        assert default_tick_budget(debruijn8, r.diameter) > 5 * r.ticks

    def test_verify_cleanup_passes_on_legal_runs(self, ring4):
        r = determine_topology(ring4, verify_cleanup=True)
        assert r.matches(ring4)

    def test_nonstrict_reconstruction_also_works(self, ring4):
        r = determine_topology(ring4, strict_reconstruction=False)
        assert r.matches(ring4)


class TestInvariantSweeps:
    def make_idle_engine(self, graph):
        procs = [GTDProcessor() for _ in graph.nodes()]
        return Engine(graph, list(procs), root=0), procs

    def test_clean_engine_has_no_residue(self, ring4):
        engine, _ = self.make_idle_engine(ring4)
        assert collect_residue(engine) == []
        assert_network_clean(engine)  # no raise

    def test_detects_growing_marks(self, ring4):
        engine, procs = self.make_idle_engine(ring4)
        procs[2].growing["IG"].mark(1)
        findings = collect_residue(engine, scope=SCOPE_RCA)
        assert any("IG-visited" in f for f in findings)
        with pytest.raises(CleanupViolation):
            assert_network_clean(engine, scope=SCOPE_RCA)

    def test_scope_separation(self, ring4):
        engine, procs = self.make_idle_engine(ring4)
        procs[1].growing["BG"].mark(2)
        assert collect_residue(engine, scope=SCOPE_RCA) == []
        assert collect_residue(engine, scope=SCOPE_BCA) != []

    def test_detects_loop_slots(self, ring4):
        engine, procs = self.make_idle_engine(ring4)
        procs[3].loop.set_slot(1, pred=1, succ=2)
        assert any("marked-loop" in f for f in collect_residue(engine))

    def test_detects_bca_slot(self, ring4):
        engine, procs = self.make_idle_engine(ring4)
        procs[0].bca_slot.set(1, 2)
        assert any("BCA loop" in f for f in collect_residue(engine, scope=SCOPE_BCA))

    def test_detects_relay(self, ring4):
        engine, procs = self.make_idle_engine(ring4)
        procs[2].relay["OD"].start(1, 2)
        assert any("relay" in f for f in collect_residue(engine))

    def test_detects_resting_characters(self, ring4):
        from repro.sim.characters import make_head

        engine, procs = self.make_idle_engine(ring4)
        procs[1].begin_tick(0)
        procs[1].send(1, make_head("IG", 1))
        engine._live.add(1)
        assert any("in flight" in f for f in collect_residue(engine))

    def test_context_in_message(self, ring4):
        engine, procs = self.make_idle_engine(ring4)
        procs[2].growing["IG"].mark(1)
        with pytest.raises(CleanupViolation, match="during-test"):
            assert_network_clean(engine, context="during-test")


class TestProcessorIdlePredicate:
    def test_fresh_processor_idle(self):
        assert GTDProcessor().is_protocol_idle()

    def test_marked_processor_not_idle(self):
        p = GTDProcessor()
        p.growing["OG"].mark(3)
        assert not p.is_protocol_idle()

    def test_all_idle_after_full_run(self, debruijn8):
        procs = [GTDProcessor() for _ in debruijn8.nodes()]
        engine = Engine(debruijn8, list(procs), root=0)
        engine.run(max_ticks=100_000, until=lambda: procs[0].terminal)
        engine.run_to_idle(max_ticks=120_000)
        assert all(p.is_protocol_idle() for p in procs)
