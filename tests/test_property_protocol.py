"""Property-based tests: the protocol's guarantees on random networks.

These are the paper's theorems as hypothesis properties:

* Theorem 4.1 — exact recovery on arbitrary strongly-connected networks;
* Lemma 4.2  — zero residue after every RCA/BCA (``verify_cleanup=True``
  raises mid-run on any violation);
* finite-stateness — processor memory independent of N;
* BCA contract on arbitrary edges of arbitrary networks.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import determine_topology
from repro.protocol.bca import run_single_bca
from repro.protocol.invariants import collect_residue
from repro.protocol.rca import run_single_rca
from repro.topology import generators
from repro.topology.portgraph import PortGraph

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def strongly_connected_graphs(draw, max_nodes: int = 10) -> PortGraph:
    """Random strongly-connected port graphs (cycle + random chords)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    loops = draw(st.booleans())
    return generators.random_strongly_connected(
        n, extra_edges=extra, seed=seed, allow_self_loops=loops
    )


@st.composite
def mixed_structured_graphs(draw) -> PortGraph:
    """Small instances drawn from the structured families."""
    builders = [
        lambda k: generators.directed_ring(3 + k),
        lambda k: generators.bidirectional_ring(3 + k),
        lambda k: generators.bidirectional_line(3 + k),
        lambda k: generators.directed_torus(2 + k % 2, 2 + k // 2),
        lambda k: generators.tree_with_loop(1 + k % 2, seed=k),
        lambda k: generators.random_regular_digraph(4 + k, 2, seed=k),
    ]
    which = draw(st.integers(min_value=0, max_value=len(builders) - 1))
    k = draw(st.integers(min_value=0, max_value=4))
    return builders[which](k)


class TestTheorem41Property:
    @given(graph=strongly_connected_graphs())
    @settings(**_SETTINGS)
    def test_exact_recovery_random(self, graph):
        result = determine_topology(graph, verify_cleanup=True)
        assert result.matches(graph)

    @given(graph=mixed_structured_graphs())
    @settings(**_SETTINGS)
    def test_exact_recovery_structured(self, graph):
        result = determine_topology(graph)
        assert result.matches(graph)

    @given(graph=strongly_connected_graphs(max_nodes=7), data=st.data())
    @settings(**_SETTINGS)
    def test_any_root_recovers(self, graph, data):
        root = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
        result = determine_topology(graph, root=root)
        assert result.matches(graph, root=root)


class TestLemma42Property:
    @given(graph=strongly_connected_graphs(max_nodes=8), data=st.data())
    @settings(**_SETTINGS)
    def test_single_rca_leaves_nothing(self, graph, data):
        initiator = data.draw(
            st.integers(min_value=1, max_value=graph.num_nodes - 1)
        )
        result = run_single_rca(graph, initiator=initiator)
        assert collect_residue(result.engine) == []

    @given(graph=strongly_connected_graphs(max_nodes=8), data=st.data())
    @settings(**_SETTINGS)
    def test_single_bca_leaves_nothing(self, graph, data):
        node = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
        ports = graph.connected_in_ports(node)
        in_port = data.draw(st.sampled_from(list(ports)))
        result = run_single_bca(graph, node=node, in_port=in_port)
        assert collect_residue(result.engine) == []
        wire = graph.in_wire(node, in_port)
        assert result.target == wire.src


class TestFiniteStateProperty:
    @given(graph=strongly_connected_graphs(max_nodes=9))
    @settings(**_SETTINGS)
    def test_audit_passes_at_termination(self, graph):
        result = determine_topology(graph, audit_finite_state=True)
        assert result.matches(graph)


class TestBuilderProperty:
    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(**_SETTINGS)
    def test_generated_graphs_legal(self, n, seed):
        g = generators.random_strongly_connected(n, extra_edges=n, seed=seed)
        for u in g.nodes():
            assert 1 <= g.out_degree(u) <= g.delta
            assert 1 <= g.in_degree(u) <= g.delta

    @given(
        perm=st.permutations(list(range(4))),
    )
    @settings(max_examples=24, deadline=None)
    def test_tree_with_loop_all_orders_recoverable(self, perm):
        g = generators.tree_with_loop(2, leaf_order=list(perm))
        result = determine_topology(g)
        assert result.matches(g)
