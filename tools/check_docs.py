#!/usr/bin/env python3
"""Documentation checker: links, anchors, and perf-number freshness.

Run from anywhere (``python tools/check_docs.py``); CI runs it in the
``docs`` job.  Three classes of check, all stdlib-only:

1. **Relative links** in ``README.md`` and ``docs/*.md`` must point at
   files that exist (anchors resolved against the target's headings,
   GitHub-style slugs).  External ``http(s)`` links are *not* fetched —
   CI must not flake on someone else's outage — but their syntax is
   validated.
2. **Baseline references**: every ``BENCH_*.json`` name mentioned in the
   docs must exist under ``benchmarks/baselines/``.
3. **Perf-number citations**: the README's headline tables must quote
   the *committed* baseline numbers.  Each claim below renders a metric
   from a committed ``BENCH_*.json`` the way the README prints it and
   requires that exact string to appear — re-record a baseline without
   updating the README and this fails, which is the point (stale perf
   tables read as false claims).

Exit code 0 on success, 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
BASELINE_DIR = ROOT / "benchmarks" / "baselines"

#: [text](target) — excluding images; fenced code blocks are stripped first.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
_BENCH_REF = re.compile(r"BENCH_[A-Za-z0-9_]+\.json")


def _slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, punctuation out, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s+", "-", text.strip())


def _anchors(path: Path) -> set[str]:
    slugs: dict[str, int] = {}
    out = set()
    for match in _HEADING.finditer(_FENCE.sub("", path.read_text())):
        slug = _slug(match.group(1))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def check_links(problems: list[str]) -> None:
    for doc in DOC_FILES:
        body = _FENCE.sub("", doc.read_text())
        rel = doc.relative_to(ROOT)
        for match in _LINK.finditer(body):
            target = match.group(1)
            if target.startswith(("http://", "https://")):
                if " " in target:
                    problems.append(f"{rel}: malformed external URL {target!r}")
                continue
            if target.startswith("mailto:"):
                continue
            path_part, _, anchor = target.partition("#")
            dest = doc if not path_part else (doc.parent / path_part).resolve()
            if not dest.exists():
                problems.append(f"{rel}: broken link {target!r} (no {path_part})")
                continue
            if anchor and dest.suffix == ".md" and anchor not in _anchors(dest):
                problems.append(
                    f"{rel}: broken anchor {target!r} (no heading "
                    f"#{anchor} in {path_part or rel})"
                )


def check_baseline_refs(problems: list[str]) -> None:
    for doc in DOC_FILES:
        rel = doc.relative_to(ROOT)
        for name in sorted(set(_BENCH_REF.findall(doc.read_text()))):
            if not (BASELINE_DIR / name).exists():
                problems.append(
                    f"{rel}: references {name}, which is not a committed "
                    f"baseline under benchmarks/baselines/"
                )


#: (baseline file, metric, how the README renders it).  Each rendered
#: string must appear verbatim in README.md.
_CLAIMS = [
    ("BENCH_e13.json", "full_protocol_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    ("BENCH_e13.json", "large_debruijn_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    ("BENCH_e13.json", "single_rca_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    (
        "BENCH_e13_flat.json",
        "full_protocol_hops_per_second",
        lambda v: f"{v / 1e3:.0f}k",
    ),
    (
        "BENCH_e13_flat.json",
        "large_debruijn_hops_per_second",
        lambda v: f"{v / 1e3:.0f}k",
    ),
    ("BENCH_e13_flat.json", "single_rca_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    ("BENCH_dyn.json", "small_object_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    ("BENCH_dyn.json", "small_flat_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    ("BENCH_dyn.json", "large_flat_speedup", lambda v: f"{v:.2f}×"),
    ("BENCH_camp.json", "full_fresh_scenarios_per_second", lambda v: f"{v:.1f}"),
    ("BENCH_camp.json", "full_scenarios_per_second", lambda v: f"{v:.1f}"),
    ("BENCH_camp.json", "full_cached_speedup", lambda v: f"{v:.2f}×"),
    ("BENCH_batch.json", "full_scenarios_per_second", lambda v: f"{v:.1f}"),
    ("BENCH_batch.json", "full_flat_scenarios_per_second", lambda v: f"{v:.1f}"),
    ("BENCH_batch.json", "full_batch_speedup", lambda v: f"{v:.2f}×"),
    ("BENCH_kernel.json", "code_space_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    ("BENCH_kernel.json", "object_path_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    ("BENCH_kernel.json", "code_space_speedup", lambda v: f"{v:.2f}×"),
    ("BENCH_vec.json", "table_walk_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    ("BENCH_vec.json", "closure_hops_per_second", lambda v: f"{v / 1e3:.0f}k"),
    ("BENCH_vec.json", "table_walk_speedup", lambda v: f"{v:.2f}×"),
    ("BENCH_artifacts.json", "full_cold_start_ms", lambda v: f"{v:.1f} ms"),
    ("BENCH_artifacts.json", "full_warm_start_ms", lambda v: f"{v:.1f} ms"),
    ("BENCH_artifacts.json", "full_cold_start_speedup", lambda v: f"{v:.1f}×"),
]


def check_perf_citations(problems: list[str]) -> None:
    readme = (ROOT / "README.md").read_text()
    for name, metric, render in _CLAIMS:
        path = BASELINE_DIR / name
        if not path.exists():
            problems.append(f"perf claim source missing: benchmarks/baselines/{name}")
            continue
        doc = json.loads(path.read_text())
        entry = doc.get("metrics", {}).get(metric)
        if entry is None:
            problems.append(f"{name} no longer records metric {metric!r}")
            continue
        expected = render(entry["value"])
        if expected not in readme:
            problems.append(
                f"README.md does not cite {expected!r} — the committed value "
                f"of {metric} in {name} ({entry['value']:.4g} "
                f"{entry.get('unit', '')}).  Re-recorded the baseline?  "
                f"Update the README perf tables to match."
            )


def main() -> int:
    problems: list[str] = []
    missing = [str(p.relative_to(ROOT)) for p in DOC_FILES if not p.exists()]
    if missing:
        print(f"missing doc files: {missing}", file=sys.stderr)
        return 1
    check_links(problems)
    check_baseline_refs(problems)
    check_perf_citations(problems)
    if problems:
        print(f"{len(problems)} documentation problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    checked = ", ".join(str(p.relative_to(ROOT)) for p in DOC_FILES)
    print(f"docs ok: {checked} ({len(_CLAIMS)} perf citations verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
