"""ASCII table rendering for benchmark and example output.

The benchmark harness prints paper-style result tables; this module renders
them without any third-party dependency so examples run on a bare install.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Numeric cells are right-aligned; everything else is left-aligned.  The
    return value ends without a trailing newline so callers can ``print`` it
    directly.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    numeric = [
        all(
            isinstance(orig[c], (int, float)) and not isinstance(orig[c], bool)
            for orig in rows
        )
        if rows
        else False
        for c in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            parts.append(cell.rjust(widths[c]) if numeric[c] else cell.ljust(widths[c]))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)
