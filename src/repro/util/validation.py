"""Tiny argument-validation helpers used across the package.

These raise plain :class:`ValueError`/:class:`TypeError` (not library
exceptions) because they indicate caller bugs rather than model violations.
"""

from __future__ import annotations

from typing import Any

__all__ = ["check_positive", "check_index", "check_type"]


def check_positive(name: str, value: int, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an int ``>= minimum`` and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_index(name: str, value: int, size: int) -> int:
    """Validate that ``value`` is a valid index into a container of ``size``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value < size:
        raise ValueError(f"{name} must be in [0, {size}), got {value}")
    return value


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Validate ``isinstance(value, expected)`` and return ``value``."""
    if not isinstance(value, expected):
        names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {names}, got {type(value).__name__}")
    return value
