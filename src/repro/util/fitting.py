"""Least-squares complexity fits for the empirical scaling experiments.

The benchmarks measure simulated clock ticks for swept parameters and check
the *shape* of the paper's bounds: RCA ticks linear in ``D`` (Lemma 4.3),
GTD ticks linear in ``N*D`` (Lemma 4.4), and the ``N log N`` lower bound
curve (Theorem 5.1).  ``linear_fit`` performs an ordinary least-squares line
fit; ``power_fit`` fits ``y = a * x^b`` in log-log space to estimate the
scaling exponent.

Implemented with pure Python (no numpy requirement) so the core library has
zero mandatory dependencies; numpy-based cross-checks live in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError

__all__ = ["FitResult", "linear_fit", "power_fit"]


@dataclass(frozen=True)
class FitResult:
    """Result of a least-squares fit.

    Attributes:
        slope: fitted slope (or exponent ``b`` for :func:`power_fit`).
        intercept: fitted intercept (or prefactor ``a`` for :func:`power_fit`).
        r_squared: coefficient of determination in the fitted space.
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x`` (in the fitted space)."""
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Ordinary least squares fit of ``y = slope * x + intercept``.

    Raises :class:`~repro.errors.AnalysisError` for fewer than two points or
    degenerate (constant) ``xs``.
    """
    if len(xs) != len(ys):
        raise AnalysisError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    n = len(xs)
    if n < 2:
        raise AnalysisError("need at least two points to fit a line")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise AnalysisError("cannot fit a line to constant xs")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return FitResult(slope=slope, intercept=intercept, r_squared=r2)


def power_fit(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y = a * x^b`` via a line fit in log-log space.

    Returns a :class:`FitResult` whose ``slope`` is the exponent ``b`` and
    whose ``intercept`` is ``a`` (already exponentiated back).  All inputs
    must be strictly positive.
    """
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise AnalysisError("power_fit requires strictly positive data")
    log_fit = linear_fit([math.log(x) for x in xs], [math.log(y) for y in ys])
    return FitResult(
        slope=log_fit.slope,
        intercept=math.exp(log_fit.intercept),
        r_squared=log_fit.r_squared,
    )
