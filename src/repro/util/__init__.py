"""Small shared helpers: deterministic RNG, validation, fitting, tables."""

from repro.util.rng import make_rng, spawn_seeds
from repro.util.validation import check_index, check_positive, check_type
from repro.util.tables import format_table
from repro.util.fitting import linear_fit, power_fit, FitResult

__all__ = [
    "make_rng",
    "spawn_seeds",
    "check_index",
    "check_positive",
    "check_type",
    "format_table",
    "linear_fit",
    "power_fit",
    "FitResult",
]
