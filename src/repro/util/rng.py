"""Seeded randomness helpers.

Every stochastic routine in the library takes either an integer seed or a
:class:`random.Random` instance.  Centralizing construction here keeps
experiments reproducible: the same seed always yields the same network, the
same fault pattern and therefore the same protocol run (the protocol itself
is fully deterministic).
"""

from __future__ import annotations

import random
from typing import Union

__all__ = ["Seed", "make_rng", "spawn_seeds"]

#: Anything :func:`make_rng` accepts.  Modules that take a seed parameter
#: annotate with this alias instead of importing :mod:`random` themselves,
#: which keeps :func:`make_rng` the single entry point for randomness (no
#: stray module-level ``random`` usage to break cross-process determinism).
Seed = Union[int, random.Random, None]


def make_rng(seed: Seed) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be ``None`` (fresh nondeterministic generator), an ``int``
    (deterministic generator), or an existing ``Random`` (returned as-is so
    callers can thread one generator through a pipeline of helpers).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_seeds(seed: Seed, count: int) -> list[int]:
    """Derive ``count`` independent 63-bit child seeds from ``seed``.

    Useful when an experiment needs one seed per trial but must stay
    reproducible from a single top-level seed.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = make_rng(seed)
    return [rng.getrandbits(63) for _ in range(count)]
