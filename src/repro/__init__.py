"""repro — reproduction of Goldstein (IPPS 2002),
*Determination of the Topology of a Directed Network*.

A strongly-connected directed network of identical, synchronous,
finite-state processors maps its own topology: the root runs a distributed
DFS built from snakes (Even-Litman-Winkler), the Backwards Communication
Algorithm (Ostrovsky-Wilkerson) and the Root Communication Algorithm, in
``O(N * D)`` global clock ticks, which is asymptotically optimal
(``Ω(N log N)``) on many small-diameter networks.

Quickstart::

    from repro import determine_topology
    from repro.topology import generators

    net = generators.de_bruijn(2, 3)          # 8 nodes, degree 2, D = 3
    result = determine_topology(net)
    assert result.matches(net)                # exact recovery, always
    print(result.ticks, "global clock ticks")
"""

from repro.errors import ReproError
from repro.protocol.runner import TopologyResult, determine_topology
from repro.protocol.root_computer import MasterComputer, ReconstructedMap
from repro.topology.portgraph import PortGraph, Wire
from repro.topology.builder import PortGraphBuilder

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "determine_topology",
    "TopologyResult",
    "MasterComputer",
    "ReconstructedMap",
    "PortGraph",
    "Wire",
    "PortGraphBuilder",
]
