"""Dynamic networks: what happens when the topology changes mid-protocol.

The paper's introduction motivates *fast* protocols with exactly this
hazard: "if a processor is randomly added or removed from the topology of
the network in the middle of the computation, a global topology
determination is likely to produce an incorrect result."  This package
makes that claim executable, at program scale: a
:class:`~repro.dynamics.timeline.PerturbationTimeline` (parsed from a
small string grammar — churn, storms, flaps, frontier-targeted cuts,
cut/heal/add waves, composable with ``+``) is lowered onto a concrete
network as an ordered :class:`~repro.dynamics.engine.WireMutation`
program, which either engine backend executes tick-exactly
(:class:`~repro.dynamics.engine.DynamicEngine` overlays the object
emission path; :class:`~repro.dynamics.engine.FlatDynamicEngine` patches
the compiled CSR tables in place and stays on the packed-wheel fast
path).  :func:`~repro.dynamics.experiment.run_dynamic_gtd` classifies the
outcome (accurate map, stale map, deadlock, protocol error) and the phase
of the timeline it fell in.  The E11 benchmark sweeps mutation times and
tabulates the damage; ``bench_dynamics`` races the two backends on
churn-heavy workloads.
"""

from repro.dynamics.engine import (
    DynamicEngine,
    FlatDynamicEngine,
    WireMutation,
)
from repro.dynamics.experiment import (
    DynamicOutcome,
    DynamicRunResult,
    compile_timeline,
    run_dynamic_gtd,
)
from repro.dynamics.timeline import (
    PerturbationTimeline,
    TimelineProgram,
    parse_timeline,
)

__all__ = [
    "DynamicEngine",
    "FlatDynamicEngine",
    "WireMutation",
    "DynamicOutcome",
    "DynamicRunResult",
    "compile_timeline",
    "run_dynamic_gtd",
    "PerturbationTimeline",
    "TimelineProgram",
    "parse_timeline",
]
