"""Dynamic networks: what happens when the topology changes mid-protocol.

The paper's introduction motivates *fast* protocols with exactly this
hazard: "if a processor is randomly added or removed from the topology of
the network in the middle of the computation, a global topology
determination is likely to produce an incorrect result."  This package
makes that claim executable: a :class:`~repro.dynamics.engine.DynamicEngine`
can cut or add wires at scheduled ticks while the protocol runs, and
:func:`~repro.dynamics.experiment.run_dynamic_gtd` classifies the outcome
(accurate map, stale map, or deadlock).  The E11 benchmark sweeps mutation
times and tabulates the damage.
"""

from repro.dynamics.engine import DynamicEngine, WireMutation
from repro.dynamics.experiment import DynamicOutcome, DynamicRunResult, run_dynamic_gtd

__all__ = [
    "DynamicEngine",
    "WireMutation",
    "DynamicOutcome",
    "DynamicRunResult",
    "run_dynamic_gtd",
]
