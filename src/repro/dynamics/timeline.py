"""The perturbation timeline: a declarative program of mid-run wire faults.

The legacy fault axis (``none / shutdown:p / cut:t / add:t``) can express at
most one wiring change per run.  A **perturbation timeline** is an ordered,
seed-deterministic program of fault *events* — multi-wire cut/heal waves,
port flaps, periodic churn, adversarial frontier-targeted cuts, staged
shutdown storms — written in a small string grammar and lowered onto a
concrete :class:`~repro.dynamics.engine.WireMutation` program that either
engine backend executes tick-exactly.

Grammar
-------

A timeline is one or more events joined with ``+``.  Each event is
``kind:key=value,...`` with an optional ``@T`` suffix ("at T × the
undisturbed protocol runtime"); times and periods are fractions of that
baseline runtime, so the same spec scales across network sizes::

    churn:rate=0.05,period=0.25      # every 0.25·T: cut each wire w.p. 0.05,
                                     # heal each downed wire w.p. 0.05
    churn:rate=0.1,period=0.2,heal=0.5,until=1.5
    storm:p=0.1@0.5                  # at 0.5·T: each wire dies w.p. 0.1
    flap:wire=3:1,on=0.2,off=0.4     # wire out of port 1 of node 3 goes
                                     # down at 0.2·T, back up at 0.4·T
    flap:wire=3:1,on=0.2,off=0.4,cycles=3
    frontier:k=2@0.5                 # at 0.5·T: cut the 2 deepest wires
                                     # (BFS depth from the root — where the
                                     # DFS frontier is exploring)
    cut@0.5        cut:n=3@0.5       # wave of n random legal cuts
    heal@0.8       heal:n=2@0.8      # re-attach downed wires (all, or n)
    add@0.5        add:n=2@0.5       # wave of n additions on free ports
    storm:p=0.2@0.3+heal@0.9         # composition: staged storm, late heal

Formally (all times/periods are non-negative decimal fractions of the
undisturbed runtime ``T``; whitespace is not permitted)::

    timeline   ::=  event ( "+" event )*
    event      ::=  kind [ ":" params ] [ "@" time ]
    kind       ::=  "churn" | "storm" | "flap" | "frontier"
                  | "cut" | "heal" | "add"
    params     ::=  param ( "," param )*
    param      ::=  key "=" value
    key        ::=  "rate" | "period" | "heal" | "until"      (churn)
                  | "p"                                       (storm)
                  | "wire" | "on" | "off" | "cycles"          (flap)
                  | "k"                                       (frontier)
                  | "n"                                       (cut/heal/add)
    value      ::=  number | wirespec
    wirespec   ::=  node ":" out_port                         (two integers)
    time       ::=  number
    number     ::=  digits [ "." digits ]

Each kind accepts only its own keys (anything else raises), probabilities
must lie in ``[0, 1]``, and canonicalization — used for spec hashing and
the campaign store — renders numbers minimally so ``storm:p=0.10@0.50``
and ``storm:p=0.1@0.5`` share one cell.

Lowering (:meth:`PerturbationTimeline.compile`) is a pure function of
``(graph, horizon, seed, root)``: every stochastic choice draws from one
:func:`repro.util.rng.make_rng` stream in a fixed order, and every sampled
cut is **legality-checked** — it never strands a processor without an in-
or out-port and never disconnects the network (the
:class:`~repro.topology.faults.WireState` policy), so the damage a timeline
does is always the paper's kind: lost characters and stale port knowledge,
never an unmappable network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import ReproError, TopologyError
from repro.dynamics.engine import WireMutation
from repro.topology.faults import (
    WireState,
    apply_wire_events,
    frontier_targets,
    sample_cut_wave,
)
from repro.topology.portgraph import PortGraph, Wire
from repro.util.rng import Seed, make_rng

__all__ = [
    "TIMELINE_EVENT_KINDS",
    "TimelineEvent",
    "ChurnEvent",
    "StormEvent",
    "FlapEvent",
    "FrontierEvent",
    "CutWaveEvent",
    "HealWaveEvent",
    "AddWaveEvent",
    "PerturbationTimeline",
    "TimelineProgram",
    "parse_timeline",
]


def _fmt(value: float) -> str:
    """Canonical numeral: ``0.50`` and ``0.5`` print identically."""
    return f"{value:g}"


def _num(raw: str, what: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise ReproError(f"expected a number for {what}, got {raw!r}") from None


def _int(raw: str, what: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ReproError(f"expected an integer for {what}, got {raw!r}") from None


# One lowering step: (state, rng, root) -> applied (kind, wire) pairs.
_Action = Callable[[WireState, object, int], list[tuple[str, Wire]]]


@dataclass(frozen=True)
class TimelineEvent:
    """Base class: one named clause of a timeline spec."""

    def canonical(self) -> str:
        raise NotImplementedError

    def schedule(self, horizon: int) -> list[tuple[int, _Action]]:
        """The event's activation moments as ``(tick, action)`` pairs."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.canonical()


@dataclass(frozen=True)
class ChurnEvent(TimelineEvent):
    """Periodic background churn: probabilistic cut + heal waves."""

    rate: float
    period: float
    heal: float
    until: float

    def canonical(self) -> str:
        text = f"churn:rate={_fmt(self.rate)},period={_fmt(self.period)}"
        if self.heal != self.rate:
            text += f",heal={_fmt(self.heal)}"
        if self.until != 1.0:
            text += f",until={_fmt(self.until)}"
        return text

    def schedule(self, horizon: int) -> list[tuple[int, _Action]]:
        moments = []
        k = 1
        while k * self.period <= self.until + 1e-9:
            moments.append((int(k * self.period * horizon), self._wave))
            k += 1
        return moments

    def _wave(self, state: WireState, rng, root: int) -> list[tuple[str, Wire]]:
        # snapshot the heal candidates *before* the cut wave: a wire cut in
        # this wave must stay down at least one period (a same-tick
        # cut+heal pair would be a no-op and the effective churn rate
        # would silently become rate * (1 - heal))
        down_before = state.heal_candidates()
        applied = [("cut", w) for w in sample_cut_wave(state, self.rate, rng)]
        for wire in down_before:
            if rng.random() < self.heal and state.can_attach(wire):
                state.attach(wire)
                applied.append(("heal", wire))
        return applied


@dataclass(frozen=True)
class StormEvent(TimelineEvent):
    """One staged shutdown storm: every wire dies w.p. ``p`` at ``at``."""

    p: float
    at: float

    def canonical(self) -> str:
        return f"storm:p={_fmt(self.p)}@{_fmt(self.at)}"

    def schedule(self, horizon: int) -> list[tuple[int, _Action]]:
        return [(int(self.at * horizon), self._wave)]

    def _wave(self, state: WireState, rng, root: int) -> list[tuple[str, Wire]]:
        return [("cut", w) for w in sample_cut_wave(state, self.p, rng)]


@dataclass(frozen=True)
class FlapEvent(TimelineEvent):
    """One named wire flapping down and up (``cycles`` times, 50% duty)."""

    src: int
    out_port: int
    on: float
    off: float
    cycles: int

    def canonical(self) -> str:
        text = (
            f"flap:wire={self.src}:{self.out_port},"
            f"on={_fmt(self.on)},off={_fmt(self.off)}"
        )
        if self.cycles != 1:
            text += f",cycles={self.cycles}"
        return text

    def schedule(self, horizon: int) -> list[tuple[int, _Action]]:
        moments: list[tuple[int, _Action]] = []
        duty = self.off - self.on
        for j in range(self.cycles):
            shift = 2 * j * duty
            moments.append((int((self.on + shift) * horizon), self._down))
            moments.append((int((self.off + shift) * horizon), self._up))
        return moments

    def _wire(self, state: WireState) -> Wire:
        wire = state.graph.out_wire(self.src, self.out_port)
        if wire is None:
            raise TopologyError(
                f"flap names out-port {self.out_port} of node {self.src}, "
                f"which carries no wire in this network"
            )
        return wire

    def _down(self, state: WireState, rng, root: int) -> list[tuple[str, Wire]]:
        wire = self._wire(state)
        if state.can_cut(wire):
            state.cut(wire)
            return [("cut", wire)]
        return []  # already down (another event beat the flap to it)

    def _up(self, state: WireState, rng, root: int) -> list[tuple[str, Wire]]:
        wire = self._wire(state)
        if (wire.src, wire.out_port) in state.down and state.can_attach(wire):
            state.attach(wire)
            return [("heal", wire)]
        return []


@dataclass(frozen=True)
class FrontierEvent(TimelineEvent):
    """Adversarial cut of the ``k`` wires deepest from the root at ``at``."""

    k: int
    at: float

    def canonical(self) -> str:
        return f"frontier:k={self.k}@{_fmt(self.at)}"

    def schedule(self, horizon: int) -> list[tuple[int, _Action]]:
        return [(int(self.at * horizon), self._wave)]

    def _wave(self, state: WireState, rng, root: int) -> list[tuple[str, Wire]]:
        return [("cut", w) for w in frontier_targets(state, root, self.k)]


@dataclass(frozen=True)
class CutWaveEvent(TimelineEvent):
    """A wave of ``n`` uniformly-chosen legal cuts at ``at``."""

    n: int
    at: float

    def canonical(self) -> str:
        prefix = "cut" if self.n == 1 else f"cut:n={self.n}"
        return f"{prefix}@{_fmt(self.at)}"

    def schedule(self, horizon: int) -> list[tuple[int, _Action]]:
        return [(int(self.at * horizon), self._wave)]

    def _wave(self, state: WireState, rng, root: int) -> list[tuple[str, Wire]]:
        applied: list[tuple[str, Wire]] = []
        for _ in range(self.n):
            candidates = [w for w in state.wires() if state.can_cut(w)]
            if not candidates:
                raise TopologyError(
                    "no wire can be cut without making the network illegal"
                )
            wire = candidates[rng.randrange(len(candidates))]
            state.cut(wire)
            applied.append(("cut", wire))
        return applied


@dataclass(frozen=True)
class HealWaveEvent(TimelineEvent):
    """Re-attach downed base wires at ``at`` (all of them, or the first ``n``)."""

    n: int  # 0 means "all"
    at: float

    def canonical(self) -> str:
        prefix = "heal" if self.n == 0 else f"heal:n={self.n}"
        return f"{prefix}@{_fmt(self.at)}"

    def schedule(self, horizon: int) -> list[tuple[int, _Action]]:
        return [(int(self.at * horizon), self._wave)]

    def _wave(self, state: WireState, rng, root: int) -> list[tuple[str, Wire]]:
        applied: list[tuple[str, Wire]] = []
        for wire in state.heal_candidates():
            if self.n and len(applied) >= self.n:
                break
            state.attach(wire)
            applied.append(("heal", wire))
        return applied


@dataclass(frozen=True)
class AddWaveEvent(TimelineEvent):
    """A wave of ``n`` additions between currently-free ports at ``at``."""

    n: int
    at: float

    def canonical(self) -> str:
        prefix = "add" if self.n == 1 else f"add:n={self.n}"
        return f"{prefix}@{_fmt(self.at)}"

    def schedule(self, horizon: int) -> list[tuple[int, _Action]]:
        return [(int(self.at * horizon), self._wave)]

    def _wave(self, state: WireState, rng, root: int) -> list[tuple[str, Wire]]:
        graph = state.graph
        all_ports = range(1, graph.delta + 1)
        applied: list[tuple[str, Wire]] = []
        for _ in range(self.n):
            srcs = [
                (node, port)
                for node in graph.nodes()
                for port in all_ports
                if (node, port) not in state.present
            ]
            dsts = [
                (node, port)
                for node in graph.nodes()
                for port in all_ports
                if (node, port) not in state.in_use
            ]
            if not srcs or not dsts:
                raise TopologyError(
                    "no free ports for an 'add' wave; use a family with "
                    "spare ports (e.g. 'spare-ring')"
                )
            src, out_port = srcs[rng.randrange(len(srcs))]
            dst, in_port = dsts[rng.randrange(len(dsts))]
            wire = Wire(src, out_port, dst, in_port)
            state.attach(wire)
            applied.append(("add", wire))
        return applied


# ----------------------------------------------------------------------
# the compiled program
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TimelineProgram:
    """A timeline lowered onto one concrete network: ordered wire ops.

    ``phases`` partitions simulated time for the outcome statistics: the
    run starts in ``"pre"``, and each distinct op tick opens a new phase
    labeled ``kinds@tick`` (e.g. ``"cut+heal@120"``).  The program is what
    the dynamic engines consume (their timeline cursor walks :attr:`ops`)
    and what the per-phase outcome tables are keyed on.
    """

    ops: tuple[WireMutation, ...]
    phases: tuple[tuple[str, int], ...]  # (label, start_tick), ascending
    horizon: int
    source: str = ""

    def phase_at(self, tick: int) -> str:
        """The phase a run ending at ``tick`` ended in.

        An op at tick ``t`` applies after tick ``t``'s deliveries, so its
        phase covers ticks strictly greater than ``t``.
        """
        label = self.phases[0][0] if self.phases else "pre"
        for candidate, start in self.phases[1:]:
            if start < tick:
                label = candidate
        return label

    def final_topology(self, graph: PortGraph) -> PortGraph:
        """The wiring after every op, as a frozen legal :class:`PortGraph`.

        Raises :class:`TopologyError` if the program is not replayable on
        ``graph`` — it can be infeasible, never silently illegal.
        """
        return apply_wire_events(graph, ((op.kind, op.wire) for op in self.ops))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[WireMutation]:
        return iter(self.ops)


@dataclass(frozen=True)
class PerturbationTimeline:
    """A parsed timeline spec: an ordered tuple of fault events.

    Value semantics follow the canonical string — two spellings that
    canonicalize identically are the same timeline (same hash, same
    compiled program), which is what keeps scenario spec hashes stable
    across parameter spellings.
    """

    events: tuple[TimelineEvent, ...]

    def canonical(self) -> str:
        return "+".join(event.canonical() for event in self.events)

    def __str__(self) -> str:
        return self.canonical()

    def compile(
        self,
        graph: PortGraph,
        *,
        horizon: int,
        seed: Seed = 0,
        root: int = 0,
    ) -> TimelineProgram:
        """Lower the timeline onto ``graph``: sample every wave, in order.

        ``horizon`` is the undisturbed protocol runtime in ticks — the unit
        every event time is a fraction of.  Deterministic in
        ``(graph, horizon, seed, root)``.
        """
        horizon = max(1, int(horizon))
        rng = make_rng(seed)
        state = WireState(graph)
        moments: list[tuple[int, int, int, _Action]] = []
        for index, event in enumerate(self.events):
            for sub, (tick, action) in enumerate(event.schedule(horizon)):
                moments.append((max(0, tick), index, sub, action))
        moments.sort(key=lambda m: (m[0], m[1], m[2]))
        ops: list[WireMutation] = []
        for tick, _, _, action in moments:
            for kind, wire in action(state, rng, root):
                ops.append(WireMutation(tick=tick, kind=kind, wire=wire))
        phases: list[tuple[str, int]] = [("pre", 0)]
        for tick in sorted({op.tick for op in ops}):
            kinds = sorted({op.kind for op in ops if op.tick == tick})
            phases.append((f"{'+'.join(kinds)}@{tick}", tick))
        return TimelineProgram(
            ops=tuple(ops),
            phases=tuple(phases),
            horizon=horizon,
            source=self.canonical(),
        )


# ----------------------------------------------------------------------
# the parser
# ----------------------------------------------------------------------
#: kind -> (parameter grammar, one-line description) for the CLI listing.
TIMELINE_EVENT_KINDS: dict[str, tuple[str, str]] = {
    "churn": (
        "rate=R,period=P[,heal=H][,until=U]",
        "every P*T ticks until U*T (default U=1): cut each wire w.p. R, "
        "heal each downed wire w.p. H (default R)",
    ),
    "storm": (
        "p=P@F",
        "staged shutdown storm at F*T ticks: each wire dies w.p. P",
    ),
    "flap": (
        "wire=NODE:PORT,on=A,off=B[,cycles=C]",
        "the named wire goes down at A*T ticks, back up at B*T (C times)",
    ),
    "frontier": (
        "k=K@F",
        "adversarial: cut the K wires deepest from the root at F*T ticks",
    ),
    "cut": ("[n=N]@F", "wave of N random legal cuts at F*T ticks (default 1)"),
    "heal": ("[n=N]@F", "re-attach downed wires at F*T ticks (default all)"),
    "add": ("[n=N]@F", "wave of N additions on free ports at F*T ticks"),
}


def parse_timeline(spec: str) -> PerturbationTimeline:
    """Parse a ``+``-composed timeline spec into a :class:`PerturbationTimeline`."""
    parts = [part.strip() for part in spec.split("+")]
    if not any(parts):
        raise ReproError("empty timeline spec")
    if not all(parts):
        raise ReproError(f"empty event in timeline spec {spec!r}")
    return PerturbationTimeline(tuple(_parse_event(part) for part in parts))


def _parse_event(text: str) -> TimelineEvent:
    head, _, params = text.partition(":")
    at: float | None = None
    if "@" in head:
        head, _, raw = head.partition("@")
        at = _num(raw, f"@time in {text!r}")
    elif "@" in params:
        params, _, raw = params.rpartition("@")
        at = _num(raw, f"@time in {text!r}")
    kind = head.strip()
    kv: dict[str, str] = {}
    for item in params.split(",") if params else ():
        key, eq, value = item.partition("=")
        if not eq:
            raise ReproError(
                f"expected key=value in timeline event {text!r}, got {item!r}"
            )
        kv[key.strip()] = value.strip()
    if "at" in kv:
        if at is not None:
            raise ReproError(f"both @time and at= given in {text!r}")
        at = _num(kv.pop("at"), f"at= in {text!r}")
    try:
        builder = _EVENT_BUILDERS[kind]
    except KeyError:
        raise ReproError(
            f"unknown timeline event kind {kind!r} in {text!r}; "
            f"known: {sorted(TIMELINE_EVENT_KINDS)}"
        ) from None
    event = builder(text, kv, at)
    if kv:
        raise ReproError(
            f"unknown parameter(s) {sorted(kv)} for timeline event {text!r}"
        )
    return event


def _need(kv: dict[str, str], key: str, text: str) -> str:
    try:
        return kv.pop(key)
    except KeyError:
        raise ReproError(
            f"timeline event {text!r} needs the {key}= parameter"
        ) from None


def _need_at(at: float | None, text: str) -> float:
    if at is None:
        raise ReproError(f"timeline event {text!r} needs an @time (e.g. '@0.5')")
    if at < 0:
        raise ReproError(f"@time must be >= 0, got {at} in {text!r}")
    return at


def _probability(value: float, what: str, text: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ReproError(f"{what} must be in [0, 1], got {value} in {text!r}")
    return value


def _build_churn(text: str, kv: dict[str, str], at: float | None) -> ChurnEvent:
    if at is not None:
        raise ReproError(f"churn is periodic; it takes period=, not @time ({text!r})")
    rate = _probability(_num(_need(kv, "rate", text), "rate="), "rate", text)
    period = _num(_need(kv, "period", text), "period=")
    if period <= 0:
        raise ReproError(f"churn period must be > 0, got {period} in {text!r}")
    heal = (
        _probability(_num(kv.pop("heal"), "heal="), "heal", text)
        if "heal" in kv
        else rate
    )
    until = _num(kv.pop("until"), "until=") if "until" in kv else 1.0
    if until <= 0:
        raise ReproError(f"churn until must be > 0, got {until} in {text!r}")
    return ChurnEvent(rate=rate, period=period, heal=heal, until=until)


def _build_storm(text: str, kv: dict[str, str], at: float | None) -> StormEvent:
    p = _probability(_num(_need(kv, "p", text), "p="), "p", text)
    return StormEvent(p=p, at=_need_at(at, text))


def _build_flap(text: str, kv: dict[str, str], at: float | None) -> FlapEvent:
    if at is not None:
        raise ReproError(f"flap takes on=/off= windows, not @time ({text!r})")
    raw = _need(kv, "wire", text)
    src_raw, sep, port_raw = raw.partition(":")
    if not sep:
        raise ReproError(f"flap wire must be NODE:PORT, got {raw!r} in {text!r}")
    on = _num(_need(kv, "on", text), "on=")
    off = _num(_need(kv, "off", text), "off=")
    if not 0 <= on < off:
        raise ReproError(f"flap needs 0 <= on < off, got on={on} off={off}")
    cycles = _int(kv.pop("cycles"), "cycles=") if "cycles" in kv else 1
    if cycles < 1:
        raise ReproError(f"flap cycles must be >= 1, got {cycles}")
    return FlapEvent(
        src=_int(src_raw, "flap node"),
        out_port=_int(port_raw, "flap port"),
        on=on,
        off=off,
        cycles=cycles,
    )


def _build_frontier(text: str, kv: dict[str, str], at: float | None) -> FrontierEvent:
    k = _int(_need(kv, "k", text), "k=")
    if k < 1:
        raise ReproError(f"frontier k must be >= 1, got {k} in {text!r}")
    return FrontierEvent(k=k, at=_need_at(at, text))


def _build_count_wave(cls, default_n: int, minimum: int):
    def build(text: str, kv: dict[str, str], at: float | None):
        n = _int(kv.pop("n"), "n=") if "n" in kv else default_n
        if n < minimum:
            raise ReproError(f"n must be >= {minimum}, got {n} in {text!r}")
        return cls(n=n, at=_need_at(at, text))

    return build


_EVENT_BUILDERS: dict[str, Callable] = {
    "churn": _build_churn,
    "storm": _build_storm,
    "flap": _build_flap,
    "frontier": _build_frontier,
    "cut": _build_count_wave(CutWaveEvent, default_n=1, minimum=1),
    "heal": _build_count_wave(HealWaveEvent, default_n=0, minimum=0),
    "add": _build_count_wave(AddWaveEvent, default_n=1, minimum=1),
}
