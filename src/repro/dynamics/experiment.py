"""Classify what a topology change does to a running GTD protocol.

Outcomes:

* ``ACCURATE`` — the protocol terminated and its map matches the *final*
  topology (possible when the mutation lands on a part of the network the
  DFS had already fully finished, when a heal restored the wiring in time,
  or the mutation list is empty);
* ``STALE`` — the protocol terminated but its map differs from the final
  topology (it describes a network that no longer exists);
* ``DEADLOCK`` — the protocol never terminated (e.g. the DFS probe or an
  RCA flood crossed the cut and its answer was lost), detected by the tick
  watchdog;
* ``PROTOCOL_ERROR`` — a processor observed something the static protocol
  proves impossible (a truncated snake, a loop token off its loop) and the
  strict automaton refused to continue.

This is the paper's introductory caveat, made measurable.  A run driven by
a :class:`~repro.dynamics.timeline.TimelineProgram` additionally reports the
**phase** the run ended in (which segment of the perturbation program the
termination or deadlock fell into) — the per-phase outcome tables in
:mod:`repro.analysis.run_stats` aggregate those across a campaign.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import (
    ProtocolViolation,
    ReconstructionError,
    ReproError,
    TickBudgetExceeded,
    TranscriptError,
)
from repro.protocol.gtd import GTDProcessor
from repro.protocol.root_computer import MasterComputer, ReconstructedMap
from repro.protocol.runner import default_tick_budget, determine_topology
from repro.sim.batchcore import LaneOutcome, LaneRun, LaneTimelines
from repro.sim.metrics import TrafficMetrics
from repro.sim.run import (
    DEFAULT_BACKEND,
    EnginePool,
    RunConfig,
    check_backend,
    execute_run,
)
from repro.sim.transcript import Transcript
from repro.topology.isomorphism import port_isomorphic
from repro.topology.portgraph import PortGraph
from repro.topology.properties import diameter
from repro.dynamics.engine import (
    BatchDynamicEngine,
    DynamicEngine,
    FlatDynamicEngine,
    WireMutation,
)
from repro.dynamics.timeline import (
    PerturbationTimeline,
    TimelineProgram,
    parse_timeline,
)

__all__ = [
    "DYNAMIC_ENGINE_BACKENDS",
    "DynamicOutcome",
    "DynamicRunResult",
    "compile_timeline",
    "run_dynamic_gtd",
    "run_dynamic_gtd_lanes",
]

#: backend name -> dynamic engine class (mirrors
#: :data:`repro.sim.run.ENGINE_BACKENDS` for the mutating-wiring case).
DYNAMIC_ENGINE_BACKENDS = {
    "object": DynamicEngine,
    "flat": FlatDynamicEngine,
    "batch": BatchDynamicEngine,
}


class DynamicOutcome(enum.Enum):
    """What the topology change did to the run."""

    ACCURATE = "accurate"
    STALE = "stale"
    DEADLOCK = "deadlock"
    PROTOCOL_ERROR = "protocol-error"


@dataclass
class DynamicRunResult:
    """Outcome of one dynamic-network GTD run."""

    outcome: DynamicOutcome
    ticks: int
    recovered: ReconstructedMap | None
    final_topology: PortGraph
    lost_characters: int
    #: delivered character-hops (the simulator's work measure)
    hops: int = 0
    #: timeline phase the run ended in ("" for plain mutation lists)
    phase: str = ""
    #: how many wire ops had fired by the end of the run
    applied_ops: int = 0
    #: the root's I/O stream, for differential backend comparison
    transcript: Transcript = field(default_factory=Transcript)
    #: the engine's traffic counters at end of run
    metrics: TrafficMetrics = field(default_factory=TrafficMetrics)


def compile_timeline(
    timeline: PerturbationTimeline | str,
    graph: PortGraph,
    *,
    seed: int = 0,
    root: int = 0,
    horizon: int | None = None,
    backend: str = DEFAULT_BACKEND,
) -> TimelineProgram:
    """Lower a timeline (or its spec string) onto ``graph``.

    ``horizon`` defaults to the measured undisturbed protocol runtime — one
    clean baseline run — so event times written as fractions scale with the
    network.  Deterministic in ``(timeline, graph, seed, root, horizon)``.
    """
    if isinstance(timeline, str):
        timeline = parse_timeline(timeline)
    if horizon is None:
        horizon = determine_topology(graph, root=root, backend=backend).ticks
    return timeline.compile(graph, horizon=horizon, seed=seed, root=root)


def run_dynamic_gtd(
    graph: PortGraph,
    timeline: TimelineProgram | Sequence[WireMutation] = (),
    *,
    root: int = 0,
    max_ticks: int | None = None,
    backend: str = DEFAULT_BACKEND,
    pool: EnginePool | None = None,
) -> DynamicRunResult:
    """Run GTD on ``graph`` while applying ``timeline``; classify the result.

    ``timeline`` is a compiled :class:`TimelineProgram` (phases reported)
    or a plain list of :class:`WireMutation` (legacy single-op interface).
    With ``pool``, the dynamic engine is checked out of (and returned to)
    an :class:`~repro.sim.run.EnginePool`: a reused engine is reset to
    power-on wiring and loaded with this call's timeline, so consecutive
    perturbation runs on one network skip the whole table rebuild.
    """
    budget = max_ticks if max_ticks is not None else default_tick_budget(
        graph, diameter(graph)
    )
    engine_cls = DYNAMIC_ENGINE_BACKENDS[check_backend(backend)]
    if pool is not None:
        engine = pool.checkout(
            engine_cls, graph, GTDProcessor, root=root, timeline=timeline
        )
        processors = engine.processors
    else:
        processors = [GTDProcessor() for _ in graph.nodes()]
        engine = engine_cls(graph, list(processors), timeline, root=root)
    program = timeline if isinstance(timeline, TimelineProgram) else None
    root_proc = processors[root]

    def result(outcome: DynamicOutcome, ticks: int, recovered, final) -> DynamicRunResult:
        return DynamicRunResult(
            outcome=outcome,
            ticks=ticks,
            recovered=recovered,
            final_topology=final,
            lost_characters=engine.lost_characters,
            hops=engine.metrics.total_delivered,
            phase=program.phase_at(ticks) if program is not None else "",
            applied_ops=len(engine.applied_mutations),
            transcript=engine.transcript,
            metrics=engine.metrics,
        )

    try:
        run = execute_run(
            engine,
            RunConfig(
                max_ticks=budget,
                until=lambda: root_proc.terminal,
                drain=False,
                backend=backend,
            ),
        )
        ticks = run.ticks
        final = engine.effective_topology()
        try:
            recovered = MasterComputer(strict=False).reconstruct(run.transcript)
            recovered_graph = recovered.to_portgraph(delta=graph.delta)
            accurate = port_isomorphic(
                final, root, recovered_graph, ReconstructedMap.ROOT
            )
        except (ReconstructionError, TranscriptError):
            # The transcript itself was corrupted by the change: clearly stale.
            return result(DynamicOutcome.STALE, ticks, None, final)
        outcome = DynamicOutcome.ACCURATE if accurate else DynamicOutcome.STALE
        return result(outcome, ticks, recovered, final)
    except (TickBudgetExceeded, ProtocolViolation) as exc:
        outcome = (
            DynamicOutcome.DEADLOCK
            if isinstance(exc, TickBudgetExceeded)
            else DynamicOutcome.PROTOCOL_ERROR
        )
        return result(outcome, engine.tick, None, engine.effective_topology())
    finally:
        if pool is not None:
            pool.checkin(engine)


def run_dynamic_gtd_lanes(
    graph: PortGraph,
    timelines: Sequence[TimelineProgram | Sequence[WireMutation]],
    budgets: Sequence[int],
    *,
    root: int = 0,
    pool: EnginePool | None = None,
) -> list[DynamicRunResult]:
    """Run several dynamic GTD lanes over one graph, lock-step batched.

    The lane-parallel sibling of :func:`run_dynamic_gtd`: lane ``i`` runs
    ``timelines[i]`` under ``budgets[i]`` ticks on the ``batch`` backend,
    all lanes advancing together through
    :meth:`~repro.sim.batchcore.BatchLaneMixin.run_lanes`.  Each lane's
    classification — transcript reconstruction, isomorphism check, phase
    attribution — is byte-for-byte what a solo :func:`run_dynamic_gtd` of
    the same program would produce (the batched-executor parity tests
    enforce it); a deadlocked or protocol-violating lane is classified in
    place instead of aborting its siblings.
    """
    check_backend("batch")
    if len(budgets) != len(timelines):
        raise ReproError(
            f"got {len(budgets)} budgets for {len(timelines)} lane timelines"
        )
    lanes = len(timelines)
    if lanes == 0:
        return []
    programs = LaneTimelines(tuple(timelines))
    if pool is not None:
        engine = pool.checkout(
            BatchDynamicEngine,
            graph,
            GTDProcessor,
            root=root,
            timeline=programs,
            lanes=lanes,
        )
    else:
        processors = [GTDProcessor() for _ in graph.nodes()]
        engine = BatchDynamicEngine(
            graph, processors, programs, root=root, lanes=lanes
        )
    try:
        runs = [
            LaneRun(
                max_ticks=int(budgets[i]),
                until=(lambda p=engine.lane_engines[i].processors[root]: p.terminal),
                drain=False,
            )
            for i in range(lanes)
        ]
        outcomes = engine.run_lanes(runs)
        return [
            _classify_lane(graph, root, timelines[i], outcomes[i])
            for i in range(lanes)
        ]
    finally:
        if pool is not None:
            pool.checkin(engine)


def _classify_lane(
    graph: PortGraph,
    root: int,
    timeline: TimelineProgram | Sequence[WireMutation],
    lane: LaneOutcome,
) -> DynamicRunResult:
    """One lane's :class:`DynamicRunResult`, mirroring :func:`run_dynamic_gtd`."""
    eng = lane.engine
    program = timeline if isinstance(timeline, TimelineProgram) else None

    def result(outcome: DynamicOutcome, recovered, final) -> DynamicRunResult:
        return DynamicRunResult(
            outcome=outcome,
            ticks=lane.ticks,
            recovered=recovered,
            final_topology=final,
            lost_characters=eng.lost_characters,
            hops=eng.metrics.total_delivered,
            phase=program.phase_at(lane.ticks) if program is not None else "",
            applied_ops=len(eng.applied_mutations),
            transcript=eng.transcript,
            metrics=eng.metrics,
        )

    final = eng.effective_topology()
    if lane.error == "budget":
        return result(DynamicOutcome.DEADLOCK, None, final)
    if lane.error == "protocol":
        return result(DynamicOutcome.PROTOCOL_ERROR, None, final)
    try:
        recovered = MasterComputer(strict=False).reconstruct(eng.transcript)
        recovered_graph = recovered.to_portgraph(delta=graph.delta)
        accurate = port_isomorphic(final, root, recovered_graph, ReconstructedMap.ROOT)
    except (ReconstructionError, TranscriptError):
        return result(DynamicOutcome.STALE, None, final)
    return result(
        DynamicOutcome.ACCURATE if accurate else DynamicOutcome.STALE,
        recovered,
        final,
    )
