"""Classify what a topology change does to a running GTD protocol.

Outcomes:

* ``ACCURATE`` — the protocol terminated and its map matches the *final*
  topology (possible when the mutation lands on a part of the network the
  DFS had already fully finished, or the mutation list is empty);
* ``STALE`` — the protocol terminated but its map differs from the final
  topology (it describes a network that no longer exists);
* ``DEADLOCK`` — the protocol never terminated (e.g. the DFS probe or an
  RCA flood crossed the cut and its answer was lost), detected by the tick
  watchdog;
* ``PROTOCOL_ERROR`` — a processor observed something the static protocol
  proves impossible (a truncated snake, a loop token off its loop) and the
  strict automaton refused to continue.

This is the paper's introductory caveat, made measurable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import (
    ProtocolViolation,
    ReconstructionError,
    TickBudgetExceeded,
    TranscriptError,
)
from repro.protocol.gtd import GTDProcessor
from repro.protocol.root_computer import MasterComputer, ReconstructedMap
from repro.protocol.runner import default_tick_budget
from repro.sim.run import DEFAULT_BACKEND, RunConfig, check_backend, execute_run
from repro.topology.isomorphism import port_isomorphic
from repro.topology.portgraph import PortGraph
from repro.topology.properties import diameter
from repro.dynamics.engine import DynamicEngine, FlatDynamicEngine, WireMutation

__all__ = [
    "DYNAMIC_ENGINE_BACKENDS",
    "DynamicOutcome",
    "DynamicRunResult",
    "run_dynamic_gtd",
]

#: backend name -> dynamic engine class (mirrors
#: :data:`repro.sim.run.ENGINE_BACKENDS` for the mutating-wiring case).
DYNAMIC_ENGINE_BACKENDS = {
    "object": DynamicEngine,
    "flat": FlatDynamicEngine,
}


class DynamicOutcome(enum.Enum):
    """What the topology change did to the run."""

    ACCURATE = "accurate"
    STALE = "stale"
    DEADLOCK = "deadlock"
    PROTOCOL_ERROR = "protocol-error"


@dataclass
class DynamicRunResult:
    """Outcome of one dynamic-network GTD run."""

    outcome: DynamicOutcome
    ticks: int
    recovered: ReconstructedMap | None
    final_topology: PortGraph
    lost_characters: int


def run_dynamic_gtd(
    graph: PortGraph,
    mutations: list[WireMutation],
    *,
    root: int = 0,
    max_ticks: int | None = None,
    backend: str = DEFAULT_BACKEND,
) -> DynamicRunResult:
    """Run GTD on ``graph`` while applying ``mutations``; classify the result."""
    budget = max_ticks if max_ticks is not None else default_tick_budget(
        graph, diameter(graph)
    )
    processors = [GTDProcessor() for _ in graph.nodes()]
    engine_cls = DYNAMIC_ENGINE_BACKENDS[check_backend(backend)]
    engine = engine_cls(graph, list(processors), mutations, root=root)
    root_proc = processors[root]
    try:
        run = execute_run(
            engine,
            RunConfig(
                max_ticks=budget,
                until=lambda: root_proc.terminal,
                drain=False,
                backend=backend,
            ),
        )
    except (TickBudgetExceeded, ProtocolViolation) as exc:
        outcome = (
            DynamicOutcome.DEADLOCK
            if isinstance(exc, TickBudgetExceeded)
            else DynamicOutcome.PROTOCOL_ERROR
        )
        return DynamicRunResult(
            outcome=outcome,
            ticks=engine.tick,
            recovered=None,
            final_topology=engine.effective_topology(),
            lost_characters=engine.lost_characters,
        )
    ticks = run.ticks
    final = engine.effective_topology()
    try:
        recovered = MasterComputer(strict=False).reconstruct(run.transcript)
        recovered_graph = recovered.to_portgraph(delta=graph.delta)
        accurate = port_isomorphic(final, root, recovered_graph, ReconstructedMap.ROOT)
    except (ReconstructionError, TranscriptError):
        # The transcript itself was corrupted by the change: clearly stale.
        return DynamicRunResult(
            outcome=DynamicOutcome.STALE,
            ticks=ticks,
            recovered=None,
            final_topology=final,
            lost_characters=engine.lost_characters,
        )
    return DynamicRunResult(
        outcome=DynamicOutcome.ACCURATE if accurate else DynamicOutcome.STALE,
        ticks=ticks,
        recovered=recovered,
        final_topology=final,
        lost_characters=engine.lost_characters,
    )
