"""An engine whose wiring can change while the clock is running.

Mutation semantics (chosen to model physical link changes):

* **cut**: from the scheduled tick on, characters emitted through the wire
  are lost (the cable is unplugged).  Characters already in flight (at most
  one tick) still arrive.  Processors are *not* told — their port-awareness
  was established at power-on, which is precisely why mid-protocol changes
  are dangerous.
* **add**: a new wire appears between previously unconnected ports.
  Characters can flow over it, but processors attached earlier never probe
  the new out-port (their ``NodeContext`` predates it), so a mapping
  protocol will silently miss it.

The static :class:`~repro.sim.engine.Engine` rejects emissions through
unconnected ports as a simulation bug; the dynamic engine turns exactly the
mutated cases into modeled behaviour and keeps the strictness everywhere
else.

The mutation machinery lives in :class:`DynamicWiringMixin`, which layers
its cut/add overlay over *any* engine backend's emission path:
:class:`DynamicEngine` composes it with the object backend,
:class:`FlatDynamicEngine` with the compiled flat-core backend
(:mod:`repro.sim.flatcore`) — both are registered in the backend registry
(:data:`repro.sim.run.ENGINE_BACKENDS`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError, TopologyError
from repro.sim.characters import Char
from repro.sim.engine import Engine
from repro.sim.flatcore import FlatEngine
from repro.sim.processor import Processor
from repro.topology.portgraph import PortGraph, Wire

__all__ = [
    "WireMutation",
    "DynamicWiringMixin",
    "DynamicEngine",
    "FlatDynamicEngine",
]


@dataclass(frozen=True)
class WireMutation:
    """One scheduled wiring change.

    ``kind`` is ``"cut"`` (wire must exist in the base graph) or ``"add"``
    (both endpoint ports must be free in the base graph).
    """

    tick: int
    kind: str
    wire: Wire

    def __post_init__(self) -> None:
        if self.kind not in ("cut", "add"):
            raise ValueError(f"unknown mutation kind {self.kind!r}")
        if self.tick < 0:
            raise ValueError("mutation tick must be >= 0")


class DynamicWiringMixin:
    """Scheduled wire cuts/additions over any engine backend.

    Intercepts the emission path: characters sent through a cut wire are
    lost, characters sent through an added wire are routed via the backend's
    generic ``_emit`` helper, everything else falls through to the backend's
    own fast path.  Compose it *before* a concrete engine class in the MRO
    (see :class:`DynamicEngine` / :class:`FlatDynamicEngine`).

    Args:
        graph: the base (power-on) wiring.
        processors: as for :class:`Engine`.
        mutations: wiring changes to apply at their scheduled ticks.
        root: the transcript-recording root processor.
    """

    def __init__(
        self,
        graph: PortGraph,
        processors: list[Processor],
        mutations: list[WireMutation],
        *,
        root: int = 0,
        record_transcript: bool = True,
    ) -> None:
        super().__init__(graph, processors, root=root, record_transcript=record_transcript)
        self._validate_mutations(graph, mutations)
        self._pending_mutations = sorted(mutations, key=lambda m: m.tick)
        self._cut: set[tuple[int, int]] = set()         # (node, out_port)
        self._added: dict[tuple[int, int], Wire] = {}   # (node, out_port) -> wire
        self.lost_characters = 0
        self.applied_mutations: list[WireMutation] = []
        self._apply_due_mutations()  # tick-0 mutations

    @staticmethod
    def _validate_mutations(graph: PortGraph, mutations: list[WireMutation]) -> None:
        for m in mutations:
            if m.kind == "cut":
                existing = graph.out_wire(m.wire.src, m.wire.out_port)
                if existing != m.wire:
                    raise TopologyError(f"cannot cut non-existent wire {m.wire}")
            else:
                if graph.out_wire(m.wire.src, m.wire.out_port) is not None:
                    raise TopologyError(
                        f"out-port {m.wire.out_port} of {m.wire.src} already wired"
                    )
                if graph.in_wire(m.wire.dst, m.wire.in_port) is not None:
                    raise TopologyError(
                        f"in-port {m.wire.in_port} of {m.wire.dst} already wired"
                    )

    # ------------------------------------------------------------------
    def step_tick(self) -> None:
        super().step_tick()
        self._apply_due_mutations()

    def _next_event_tick(self) -> int | None:
        """Bound the engine's fast-forward by the next scheduled mutation.

        Wire changes are external events: the clock must not skip past the
        tick a mutation is due, or ``applied_mutations`` /
        :meth:`effective_topology` would lag behind simulated time.
        """
        nxt = super()._next_event_tick()
        if self._pending_mutations:
            mutation_tick = self._pending_mutations[0].tick
            if nxt is None or mutation_tick < nxt:
                return mutation_tick
        return nxt

    def _apply_due_mutations(self) -> None:
        while self._pending_mutations and self._pending_mutations[0].tick <= self.tick:
            mutation = self._pending_mutations.pop(0)
            key = (mutation.wire.src, mutation.wire.out_port)
            if mutation.kind == "cut":
                self._cut.add(key)
                self._added.pop(key, None)
            else:
                self._added[key] = mutation.wire
                self._cut.discard(key)
            self.applied_mutations.append(mutation)

    def _put_on_wire(self, node: int, out_port: int, char: Char) -> None:
        key = (node, out_port)
        if key in self._cut:
            # The cable is unplugged: the character vanishes.
            self.lost_characters += 1
            return
        added = self._added.get(key)
        if added is not None:
            self._emit(added, node, out_port, char)
            return
        super()._put_on_wire(node, out_port, char)

    # ------------------------------------------------------------------
    def effective_topology(self) -> PortGraph:
        """The wiring as it stands *now* (base minus cuts plus additions).

        Raises :class:`SimulationError` if the current wiring is not a
        legal network (a processor lost its last in- or out-port) — the
        comparison experiments need a legal graph to compare against.
        """
        current = PortGraph(self.graph.num_nodes, self.graph.delta)
        for wire in self.graph.wires():
            if (wire.src, wire.out_port) not in self._cut:
                current.add_wire(wire.src, wire.out_port, wire.dst, wire.in_port)
        for wire in self._added.values():
            current.add_wire(wire.src, wire.out_port, wire.dst, wire.in_port)
        try:
            return current.freeze()
        except TopologyError as exc:
            raise SimulationError(f"mutated network is not legal: {exc}") from exc


class DynamicEngine(DynamicWiringMixin, Engine):
    """The object backend with scheduled wire cuts/additions."""


class FlatDynamicEngine(DynamicWiringMixin, FlatEngine):
    """The compiled flat-core backend with scheduled wire cuts/additions."""
