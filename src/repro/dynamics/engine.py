"""Engines whose wiring can change while the clock is running.

Mutation semantics (chosen to model physical link changes):

* **cut**: from the scheduled tick on, characters emitted through the wire
  are lost (the cable is unplugged).  Characters already in flight (at most
  one tick) still arrive.  Processors are *not* told — their port-awareness
  was established at power-on, which is precisely why mid-protocol changes
  are dangerous.
* **heal**: a previously-cut wire is plugged back in.  Characters emitted
  through the port flow again from the next tick; characters that were
  resting in the sender when the wire was down leave normally if they come
  due after the heal (the cable was back by the time they departed).
* **add**: a new wire appears between previously unconnected ports.
  Characters can flow over it, but processors attached earlier never probe
  the new out-port (their ``NodeContext`` predates it), so a mapping
  protocol will silently miss it.

The static engines reject emissions through unconnected ports as a
simulation bug; the dynamic engines turn exactly the mutated cases into
modeled behaviour and keep the strictness everywhere else.

The shared machinery lives in :class:`DynamicWiringMixin`: it owns the
**timeline cursor** — an ordered program of :class:`WireMutation` ops
(usually compiled from a :class:`~repro.dynamics.timeline.PerturbationTimeline`)
replay-validated against the base graph and applied as the clock passes
each op's tick — plus the current-wiring bookkeeping behind
:meth:`~DynamicWiringMixin.effective_topology`.  How an applied op reaches
the data plane is backend-specific:

* :class:`DynamicEngine` (object backend) overlays the emission path:
  ``_put_on_wire`` consults the cut/added maps per character.
* :class:`FlatDynamicEngine` (compiled flat-core backend) **patches the
  compiled CSR tables in place** through a
  :class:`~repro.topology.compile.TopologyPatcher`: a cut stamps the
  :data:`~repro.topology.compile.CUT` sentinel into the wire slot, a heal
  restores it, an add rewires it — so the packed-wheel fast path (fused
  drains, send-time direct sinks) keeps running between mutations instead
  of falling back to a per-character overlay.  Only the handful of nodes
  whose *own* out-wiring is currently degraded have their direct sinks
  parked (their characters must rest in the outbox so a cut is judged at
  departure time, exactly as the object backend does); everyone else stays
  on the full compiled fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError, TopologyError
from repro.sim.batchcore import BatchLaneMixin, lane_timelines, require_numpy
from repro.sim.characters import Char
from repro.sim.engine import Engine
from repro.sim.flatcore import (
    CODE_MASK,
    PORT_MASK,
    PORT_SHIFT,
    SEQ_BITS,
    SEQ_SHIFT,
    FlatEngine,
)
from repro.sim.processor import Processor
from repro.topology.compile import CUT, TopologyPatcher
from repro.topology.portgraph import PortGraph, Wire

__all__ = [
    "MUTATION_KINDS",
    "WireMutation",
    "validate_wire_ops",
    "DynamicWiringMixin",
    "DynamicEngine",
    "FlatDynamicEngine",
    "BatchDynamicEngine",
]

#: The wire-operation vocabulary a timeline program lowers to.
MUTATION_KINDS = ("cut", "add", "heal")


@dataclass(frozen=True)
class WireMutation:
    """One scheduled wiring change.

    ``kind`` is ``"cut"`` (the wire must be present when the op fires),
    ``"heal"`` (re-attach a wire whose ports are free again — normally one
    cut earlier), or ``"add"`` (attach a wire between ports that have been
    free since power-on).  Heal and add share legality rules; they are kept
    distinct because they model different physical events and the flat
    backend restores vs. rewires the compiled slot accordingly.
    """

    tick: int
    kind: str
    wire: Wire

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ValueError(f"unknown mutation kind {self.kind!r}")
        if self.tick < 0:
            raise ValueError("mutation tick must be >= 0")


def validate_wire_ops(
    graph: PortGraph, ops: Sequence[WireMutation]
) -> tuple[WireMutation, ...]:
    """Replay-validate a wire-op program against ``graph``; return it sorted.

    A cut must hit a wire that is present *at that point of the program*
    (base wiring minus earlier cuts plus earlier heals/adds); a heal or add
    must land on ports that are free at that point.  The stable sort keeps
    the declared order of same-tick ops — application order is part of the
    program's meaning.
    """
    ordered = sorted(ops, key=lambda m: m.tick)
    out_state = {(w.src, w.out_port): w for w in graph.wires()}
    in_state = {(w.dst, w.in_port): w for w in graph.wires()}
    for m in ordered:
        w = m.wire
        out_key = (w.src, w.out_port)
        in_key = (w.dst, w.in_port)
        if m.kind == "cut":
            if out_state.get(out_key) != w:
                raise TopologyError(f"cannot cut non-existent wire {w}")
            del out_state[out_key]
            del in_state[in_key]
        else:
            if out_key in out_state:
                raise TopologyError(
                    f"out-port {w.out_port} of {w.src} already wired"
                )
            if in_key in in_state:
                raise TopologyError(
                    f"in-port {w.in_port} of {w.dst} already wired"
                )
            out_state[out_key] = w
            in_state[in_key] = w
    return tuple(ordered)


class DynamicWiringMixin:
    """Timeline-cursor wiring changes over any engine backend.

    Compose it *before* a concrete engine class in the MRO (see
    :class:`DynamicEngine` / :class:`FlatDynamicEngine`).

    Args:
        graph: the base (power-on) wiring.
        processors: as for :class:`Engine`.
        timeline: the wire-op program — a sequence of
            :class:`WireMutation` or anything exposing a ``.ops`` tuple of
            them (a compiled :class:`~repro.dynamics.timeline.TimelineProgram`).
        root: the transcript-recording root processor.
    """

    def __init__(
        self,
        graph: PortGraph,
        processors: list[Processor],
        timeline: Sequence[WireMutation] = (),
        *,
        root: int = 0,
        record_transcript: bool = True,
    ) -> None:
        super().__init__(graph, processors, root=root, record_transcript=record_transcript)
        ops = getattr(timeline, "ops", timeline)
        self._ops = validate_wire_ops(graph, ops)
        self._cursor = 0
        # current-wiring overlay state, shared by both backends:
        # a key (node, out_port) is in exactly one of three states —
        # pristine (in neither map), cut (in _cut), rewired (in _added).
        self._cut: set[tuple[int, int]] = set()
        self._added: dict[tuple[int, int], Wire] = {}
        self.lost_characters = 0
        self.applied_mutations: list[WireMutation] = []
        self._init_dynamic_backend()
        self._apply_due_mutations()  # tick-0 ops

    # -- backend hooks ---------------------------------------------------
    def _init_dynamic_backend(self) -> None:
        """Backend-specific setup before any op applies (default: none)."""

    def _on_wire_op(self, op: WireMutation) -> None:
        """Backend-specific reaction to one applied op (default: none)."""

    def _reset_wiring(self) -> None:
        """Backend hook: put the data plane's wiring back to power-on."""

    # ------------------------------------------------------------------
    def reset(self, timeline: Sequence[WireMutation] = ()) -> None:
        """Restore power-on state and load a new wire-op program.

        Engine reuse for dynamic runs: the base engine reset
        (:meth:`repro.sim.engine.Engine.reset` via whichever concrete
        engine this mixin composes with) restores clocks, queues and
        processors; this override additionally restores the wiring to the
        base graph (backend hook), swaps in the next run's timeline —
        replay-validated exactly as at construction — and applies its
        tick-0 ops.  A reset run is byte-identical to a fresh engine
        constructed with the same timeline (the reuse parity suite
        enforces it).
        """
        super().reset()
        self._reset_wiring()
        ops = getattr(timeline, "ops", timeline)
        self._ops = validate_wire_ops(self.graph, ops)
        self._cursor = 0
        self._cut.clear()
        self._added.clear()
        self.lost_characters = 0
        self.applied_mutations = []
        self._apply_due_mutations()

    # ------------------------------------------------------------------
    def step_tick(self) -> None:
        super().step_tick()
        self._apply_due_mutations()

    def _next_event_tick(self) -> int | None:
        """Bound the engine's fast-forward by the next scheduled op.

        Wire changes are external events: the clock must not skip past the
        tick an op is due, or ``applied_mutations`` /
        :meth:`effective_topology` would lag behind simulated time.
        """
        nxt = super()._next_event_tick()
        if self._cursor < len(self._ops):
            op_tick = self._ops[self._cursor].tick
            if nxt is None or op_tick < nxt:
                return op_tick
        return nxt

    def _apply_due_mutations(self) -> None:
        ops = self._ops
        while self._cursor < len(ops) and ops[self._cursor].tick <= self.tick:
            op = ops[self._cursor]
            self._cursor += 1
            key = (op.wire.src, op.wire.out_port)
            if op.kind == "cut":
                self._added.pop(key, None)
                self._cut.add(key)
            else:  # heal / add
                self._cut.discard(key)
                if self.graph.out_wire(op.wire.src, op.wire.out_port) != op.wire:
                    self._added[key] = op.wire
                # else: healed back to the base wire — pristine again
            self._on_wire_op(op)
            self.applied_mutations.append(op)

    # ------------------------------------------------------------------
    def effective_topology(self) -> PortGraph:
        """The wiring as it stands *now* (base minus cuts plus rewires).

        Raises :class:`SimulationError` if the current wiring is not a
        legal network (a processor lost its last in- or out-port) — the
        comparison experiments need a legal graph to compare against.
        Timeline programs compiled through the legality-checked samplers
        never reach that state.
        """
        current = PortGraph(self.graph.num_nodes, self.graph.delta)
        for wire in self.graph.wires():
            key = (wire.src, wire.out_port)
            if key not in self._cut and key not in self._added:
                current.add_wire(wire.src, wire.out_port, wire.dst, wire.in_port)
        for wire in self._added.values():
            current.add_wire(wire.src, wire.out_port, wire.dst, wire.in_port)
        try:
            return current.freeze()
        except TopologyError as exc:
            raise SimulationError(f"mutated network is not legal: {exc}") from exc


class DynamicEngine(DynamicWiringMixin, Engine):
    """The object backend with scheduled wire mutations (emission overlay)."""

    def _put_on_wire(self, node: int, out_port: int, char: Char) -> None:
        key = (node, out_port)
        if key in self._cut:
            # The cable is unplugged: the character vanishes.
            self.lost_characters += 1
            return
        added = self._added.get(key)
        if added is not None:
            self._emit(added, node, out_port, char)
            return
        super()._put_on_wire(node, out_port, char)


class FlatDynamicEngine(DynamicWiringMixin, FlatEngine):
    """The compiled flat-core backend with in-place CSR patching.

    Stays on the packed event wheel throughout: ops patch the compiled
    wire tables (cut sentinel / slot rewiring) instead of interposing on
    every emission, so between mutations the data plane is byte-for-byte
    the static flat engine's.  Send-time direct sinks are parked only for
    nodes whose own out-wiring is currently degraded — their characters
    must rest in the outbox so that a cut/heal racing the residence window
    is judged at departure time, exactly like the object backend.
    """

    #: patch the compiled tables in place — construction must fork the
    #: shared cached artifact (see FlatEngine.MUTATES_TOPOLOGY)
    MUTATES_TOPOLOGY = True

    def _init_dynamic_backend(self) -> None:
        self._patcher = TopologyPatcher(self._topo)
        # stash the per-node fast-path closures installed by FlatEngine so
        # degradation can park and later restore them
        self._saved_sinks = {
            node: (proc._direct_sink, proc._direct_broadcast)
            for node, proc in enumerate(self.processors)
            if proc._direct_sink is not None
        }
        #: node -> set of currently degraded out-ports (cut or rewired)
        self._degraded_ports: dict[int, set[int]] = {}

    def _reset_wiring(self) -> None:
        """Restore the compiled tables and fast paths to power-on state.

        O(touched): only slots the previous run's ops degraded are
        restored.  The ``_in_shift`` companion table is re-derived for
        exactly those slots, and the parked-sink bookkeeping is cleared —
        the base engine reset already re-installed every sink, which is
        the correct power-on state (no node starts degraded).
        """
        patcher = self._patcher
        wire_in_port = self._topo.wire_in_port
        in_shift = self._in_shift
        for slot in list(patcher.touched):
            patcher.restore(slot)
            port = wire_in_port[slot]
            in_shift[slot] = (port << PORT_SHIFT) if port >= 0 else -1
        self._degraded_ports.clear()

    # ------------------------------------------------------------------
    def _on_wire_op(self, op: WireMutation) -> None:
        wire = op.wire
        patcher = self._patcher
        slot = patcher.slot(wire.src, wire.out_port)
        if op.kind == "cut":
            self._rehome_wire_entries(wire)
            patcher.cut(slot)
            self._in_shift[slot] = -1
        else:  # heal / add
            patcher.attach(slot, wire.dst, wire.in_port)
            self._in_shift[slot] = wire.in_port << PORT_SHIFT
        degraded = self._degraded_ports.setdefault(wire.src, set())
        if patcher.is_pristine(slot):
            degraded.discard(wire.out_port)
        else:
            degraded.add(wire.out_port)
        self._toggle_sinks(wire.src, parked=bool(degraded))

    def _toggle_sinks(self, node: int, *, parked: bool) -> None:
        saved = self._saved_sinks.get(node)
        if saved is None:
            return  # root, or a processor that never had the fast path
        proc = self.processors[node]
        if parked:
            proc._direct_sink = None
            proc._direct_broadcast = None
            # code handlers emit at send time through wire lists resolved
            # at build time — both wrong for a degraded node — so they park
            # and restore in lock-step with the object sinks
            self._chandlers[node] = None
        else:
            proc._direct_sink, proc._direct_broadcast = saved
            self._chandlers[node] = self._chandlers_all[node]

    def _rehome_wire_entries(self, wire: Wire) -> None:
        """Move pre-scheduled, still-resting characters off a cut wire.

        The direct sink files a character into its arrival bucket at send
        time; under outbox semantics it would still be *resting in the
        sender* until its departure tick.  A cut at tick ``t`` must lose
        exactly the characters departing from ``t + 1`` on — so every wheel
        entry through the wire with arrival ``>= t + 2`` is pulled back
        into the sender's outbox (emission counters rolled back: the object
        backend never counts them as emitted).  From there the normal drain
        decides their fate at departure time: lost if the wire is still
        cut, delivered if a heal raced the residence window.  Entries with
        arrival ``t + 1`` already departed and still arrive, as the model
        requires.
        """
        wheel = self._wheel
        chars = self._chars
        emitted = self._emitted_by_code
        proc = self.processors[wire.src]
        in_port = wire.in_port
        dst = wire.dst
        seq_field = ((1 << SEQ_BITS) - 1) << SEQ_SHIFT
        horizon = self.tick + 1
        rehomed: list[tuple[int, Char]] = []
        for arrival in sorted(wheel._buckets):
            if arrival <= horizon:
                continue
            bucket = wheel._buckets[arrival]
            lane = bucket.lanes.get(dst)
            if not lane:
                continue
            kept: list[int] | None = None
            for index, packed in enumerate(lane):
                if ((packed >> PORT_SHIFT) & PORT_MASK) == in_port:
                    if kept is None:
                        kept = list(lane[:index])
                    code = packed & CODE_MASK
                    emitted[code] -= 1
                    rehomed.append((arrival, chars[code]))
                elif kept is not None:
                    kept.append(packed)
            if kept is not None:
                del lane[:]
                for index, packed in enumerate(kept):
                    lane.append((packed & ~seq_field) | (index << SEQ_SHIFT))
                if not lane:
                    bucket.nodes.remove(dst)
                if not bucket.nodes:
                    del wheel._buckets[arrival]
                    wheel.recycle(bucket)
        if rehomed:
            # ascending arrival == ascending departure; ties keep lane
            # (i.e. send) order, so outbox seq order matches the object
            # backend's send-time seq assignment
            for arrival, char in rehomed:
                proc._queue(wire.out_port, char, arrival - 1)
            self._active.update(wire.src, proc.next_due_tick())

    # ------------------------------------------------------------------
    def _blocked_emission(self, node: int, out_port: int, char: Char, dst: int) -> bool:
        if dst == CUT:
            # unplugged cable, judged at departure time: the character is
            # lost — never emitted, never delivered, exactly the object
            # backend's accounting
            self.lost_characters += 1
            return True
        return super()._blocked_emission(node, out_port, char, dst)


class BatchDynamicEngine(BatchLaneMixin, FlatDynamicEngine):
    """The ``batch`` backend with per-lane wire programs.

    Lane 0 is this engine (a full :class:`FlatDynamicEngine`); lanes
    1..S-1 are sibling flat dynamic engines over the same graph, each
    loaded with its own lane's wire program.  The ``timeline`` argument
    (construction and :meth:`reset`) accepts either a single program —
    the scalar, ``lanes=1`` form every front-end uses — or a
    :class:`~repro.sim.batchcore.LaneTimelines` carrying one program per
    lane, which is how the batched campaign executor loads a fused
    chunk's cohorts.
    """

    def __init__(
        self,
        graph: PortGraph,
        processors: list[Processor],
        timeline: Sequence[WireMutation] = (),
        *,
        root: int = 0,
        record_transcript: bool = True,
        lanes: int = 1,
    ) -> None:
        require_numpy()
        programs = lane_timelines(timeline, lanes)
        self._lane_programs = programs
        super().__init__(
            graph,
            processors,
            programs[0],
            root=root,
            record_transcript=record_transcript,
        )
        self._init_lanes(lanes)

    def _make_lane_sibling(self, lane: int) -> FlatEngine:
        return FlatDynamicEngine(
            self.graph,
            self._sibling_processors(),
            self._lane_programs[lane],
            root=self.root,
            record_transcript=self.transcript.enabled,
        )

    def reset(self, timeline: Sequence[WireMutation] = ()) -> None:
        """Power-on reset of every lane, loading the next wire programs."""
        programs = lane_timelines(timeline, self.lanes)
        self._lane_programs = programs
        super().reset(programs[0])
        for eng, program in zip(self.lane_engines[1:], programs[1:]):
            eng.reset(program)
        self._reset_lane_registers()
