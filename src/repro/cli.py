"""Command-line interface: ``repro-topology`` / ``python -m repro``.

Subcommands:

* ``map`` — run Global Topology Determination on a generated network and
  print the recovered map plus statistics;
* ``families`` — list the built-in network families;
* ``lower-bound`` — print the Theorem 5.1 implied lower-bound table.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.transcripts import lower_bound_curve
from repro.protocol.runner import determine_topology
from repro.topology import generators
from repro.topology.properties import diameter
from repro.util.tables import format_table
from repro.viz.ascii_map import render_adjacency, render_recovered_map
from repro.viz.timeline import render_traffic_profile

__all__ = ["main", "build_parser"]

_FAMILIES = {
    "directed-ring": lambda n, seed: generators.directed_ring(n),
    "bidirectional-ring": lambda n, seed: generators.bidirectional_ring(n),
    "de-bruijn": lambda n, seed: _de_bruijn_at_least(n),
    "torus": lambda n, seed: _torus_at_least(n),
    "random": lambda n, seed: generators.random_strongly_connected(
        n, extra_edges=n, seed=seed
    ),
    "tree-with-loop": lambda n, seed: _tree_at_least(n, seed),
    "manhattan": lambda n, seed: _manhattan_at_least(n),
    "ring-of-rings": lambda n, seed: _ring_of_rings_at_least(n),
}


def _de_bruijn_at_least(n: int):
    length = 1
    while 2**length < n:
        length += 1
    return generators.de_bruijn(2, length)


def _torus_at_least(n: int):
    side = 2
    while side * side < n:
        side += 1
    return generators.directed_torus(side, side)


def _tree_at_least(n: int, seed: int | None):
    depth = 1
    while (1 << (depth + 1)) - 1 < n:
        depth += 1
    return generators.tree_with_loop(depth, seed=seed)


def _manhattan_at_least(n: int):
    side = 2
    while side * side < n:
        side += 2
    return generators.manhattan_grid(side, side)


def _ring_of_rings_at_least(n: int):
    outer = 2
    while outer * 3 < n:
        outer += 1
    return generators.ring_of_rings(outer, 3)


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-topology",
        description="Goldstein (IPPS 2002): map a directed network of "
        "finite-state processors from its root.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_map = sub.add_parser("map", help="run the protocol and print the map")
    p_map.add_argument("--family", choices=sorted(_FAMILIES), default="de-bruijn")
    p_map.add_argument("--size", type=int, default=8, help="approximate N")
    p_map.add_argument("--seed", type=int, default=0)
    p_map.add_argument("--traffic", action="store_true", help="show traffic profile")
    p_map.add_argument(
        "--verify-cleanup", action="store_true",
        help="assert the Lemma 4.2 invariant after every RCA/BCA",
    )
    p_map.add_argument(
        "--json", metavar="PATH",
        help="also write the recovered map + stats as JSON to PATH",
    )

    sub.add_parser("families", help="list built-in network families")

    p_lb = sub.add_parser("lower-bound", help="Theorem 5.1 implied bound table")
    p_lb.add_argument("--delta", type=int, default=5)
    p_lb.add_argument("--max-depth", type=int, default=10)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "families":
        for name, graph in generators.all_families().items():
            print(
                f"{name:28s} N={graph.num_nodes:4d} delta={graph.delta} "
                f"D={diameter(graph)}"
            )
        return 0
    if args.command == "lower-bound":
        rows = [
            (n, ticks)
            for n, ticks in lower_bound_curve(
                list(range(1, args.max_depth + 1)), args.delta
            )
        ]
        print(
            format_table(
                ["N (family size)", "min ticks (Thm 5.1)"],
                rows,
                title=f"Implied lower bound, delta={args.delta}",
            )
        )
        return 0
    # map
    graph = _FAMILIES[args.family](args.size, args.seed)
    print(f"network: {args.family}, N={graph.num_nodes}, delta={graph.delta}")
    print(render_adjacency(graph, root=0))
    result = determine_topology(graph, verify_cleanup=args.verify_cleanup)
    print()
    print(render_recovered_map(result.recovered))
    print()
    print(
        f"ticks={result.ticks}  D={result.diameter}  N*D="
        f"{graph.num_nodes * max(1, result.diameter)}  "
        f"RCAs={result.rca_runs}  BCAs={result.bca_runs}  "
        f"exact={result.matches(graph)}"
    )
    if args.traffic:
        print()
        print(render_traffic_profile(result.metrics))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(result.to_json())
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
