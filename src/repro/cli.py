"""Command-line interface: ``repro-topology`` / ``python -m repro``.

Subcommands:

* ``map`` — run Global Topology Determination on a generated network and
  print the recovered map plus statistics; with ``--repeats``/``--jobs``
  the run becomes a seed sweep over the campaign machinery;
* ``campaign`` — run a declarative scenario matrix (family × size ×
  fault model × seed) over the :mod:`repro.campaigns` executor; with
  ``--store DIR`` results persist to a content-addressed store and
  overlapping matrices reuse stored cells; ``--resume RUN_DIR`` picks an
  interrupted run back up, skipping completed scenarios; ``--artifacts
  DIR`` persists compiled topologies to an mmap-shared library so warm
  re-runs skip every previously-seen compile;
* ``store`` — inspect a result store: record count, outcome counts, and
  the aggregate statistics mined from its JSONL shards; ``--verify``
  runs an offline integrity scan of the shards (keys re-checked against
  recomputed spec hashes); with ``--artifacts`` the directory is a
  compiled-artifact library instead (``--verify`` validates every
  artifact, ``--gc [--keep-mb MB]`` removes invalid ones and evicts to
  a byte budget);
* ``bench-compare`` — diff a fresh benchmark snapshot against a committed
  baseline with a regression threshold (the CI perf gate);
* ``families`` — list the built-in network families;
* ``faults`` — list the fault-model vocabulary: the legacy kinds and the
  perturbation-timeline event grammar;
* ``lower-bound`` — print the Theorem 5.1 implied lower-bound table.

Dynamic-topology runs thread through ``--timeline``: ``map --timeline``
runs one perturbed GTD and reports the outcome per phase, ``campaign
--timeline`` adds the timeline to the fault axis (repeatable; kept apart
from ``--faults`` because timeline specs contain commas).

Network families are resolved through the shared campaign registry
(:data:`repro.campaigns.spec.FAMILY_BUILDERS`), so the shell and the
programmatic matrix runner accept exactly the same names, and every run is
reproducible from ``--seed`` alone.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.run_stats import phase_outcome_counts
from repro.analysis.transcripts import lower_bound_curve
from repro.bench.baseline import compare_files
from repro.campaigns import CampaignSpec, Scenario, SupervisionPolicy, run_campaign
from repro.campaigns.spec import FAMILY_BUILDERS, build_family
from repro.dynamics import compile_timeline, parse_timeline, run_dynamic_gtd
from repro.dynamics.timeline import TIMELINE_EVENT_KINDS
from repro.errors import ReproError, TranscriptError
from repro.protocol.runner import determine_topology
from repro.sim.run import DEFAULT_BACKEND, ENGINE_BACKENDS
from repro.store import ResultStore, verify_result_store
from repro.topology.properties import diameter
from repro.util.tables import format_table
from repro.viz.ascii_map import render_adjacency, render_recovered_map
from repro.viz.timeline import render_traffic_profile

__all__ = ["main", "build_parser"]


def _csv(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _csv_ints(text: str) -> list[int]:
    return [int(item) for item in _csv(text)]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-topology",
        description="Goldstein (IPPS 2002): map a directed network of "
        "finite-state processors from its root.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_map = sub.add_parser("map", help="run the protocol and print the map")
    p_map.add_argument("--family", choices=sorted(FAMILY_BUILDERS), default="de-bruijn")
    p_map.add_argument("--size", type=int, default=8, help="approximate N")
    p_map.add_argument(
        "--seed", type=int, default=0,
        help="seed for network generation; the run is reproducible from it",
    )
    p_map.add_argument(
        "--repeats", type=int, default=1, metavar="K",
        help="run K seeds (--seed .. --seed+K-1) as a mini-campaign",
    )
    p_map.add_argument(
        "--jobs", type=int, default=1, metavar="J",
        help="worker processes for --repeats > 1 (results are identical "
        "for any J)",
    )
    p_map.add_argument(
        "--backend", choices=sorted(ENGINE_BACKENDS), default=DEFAULT_BACKEND,
        help="engine backend: 'object' (reference) or 'flat' (compiled "
        "tables, same results tick-for-tick, faster on large runs)",
    )
    p_map.add_argument(
        "--timeline", metavar="SPEC",
        help="run under a perturbation timeline (e.g. "
        "'storm:p=0.1@0.5+heal@0.9') and classify the outcome per phase; "
        "see 'repro-topology faults' for the grammar",
    )
    p_map.add_argument("--traffic", action="store_true", help="show traffic profile")
    p_map.add_argument(
        "--verify-cleanup", action="store_true",
        help="assert the Lemma 4.2 invariant after every RCA/BCA",
    )
    p_map.add_argument(
        "--json", metavar="PATH",
        help="also write the recovered map + stats as JSON to PATH",
    )
    p_map.add_argument(
        "--profile", nargs="?", const="", metavar="FILE",
        help="run under cProfile and print the top-20 functions by "
        "cumulative time; with FILE, also dump the raw pstats data "
        "there (inspect with 'python -m pstats FILE')",
    )

    p_camp = sub.add_parser(
        "campaign",
        help="run a scenario matrix (family x size x fault x seed)",
    )
    p_camp.add_argument(
        "--families", type=_csv, default=["de-bruijn"],
        metavar="A,B,...", help=f"from: {', '.join(sorted(FAMILY_BUILDERS))}",
    )
    p_camp.add_argument("--sizes", type=_csv_ints, default=[8], metavar="N,N,...")
    p_camp.add_argument(
        "--faults", type=_csv, default=["none"], metavar="F,F,...",
        help="none | shutdown:RATE | cut:FRACTION | add:FRACTION",
    )
    p_camp.add_argument(
        "--timeline", action="append", default=[], metavar="SPEC",
        help="add a perturbation timeline to the fault axis (repeatable; "
        "timeline specs contain commas, so they cannot ride in --faults); "
        "see 'repro-topology faults' for the grammar",
    )
    p_camp.add_argument(
        "--seeds", type=int, default=1, metavar="K",
        help="seeds per cell: --seed, --seed+1, ..., --seed+K-1",
    )
    p_camp.add_argument("--seed", type=int, default=0, help="first seed of the sweep")
    p_camp.add_argument(
        "--backend", choices=sorted(ENGINE_BACKENDS), default=DEFAULT_BACKEND,
        help="engine backend for every cell; the store keeps object- and "
        "flat-backend results under distinct keys",
    )
    p_camp.add_argument(
        "--jobs", type=int, default=1, metavar="J",
        help="worker processes (results are identical for any J)",
    )
    p_camp.add_argument(
        "--lanes", type=int, default=None, metavar="S",
        help="with --backend batch: cap how many cells fuse into one "
        "lock-step lane run (default: the chunker's worker-balancing cap; "
        "results are identical for any S)",
    )
    p_camp.add_argument(
        "--start-method", choices=("fork", "forkserver", "spawn"), default=None,
        help="multiprocessing start method for the worker pool (default: "
        "fork where available, else the platform default; results are "
        "identical for any method)",
    )
    p_camp.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECS",
        help="per-cell wall-clock budget: a parallel chunk outliving "
        "SECS x cells (+ grace) is presumed wedged, its pool is recycled "
        "and the chunk retried/bisected (default 120; 0 disables deadlines)",
    )
    p_camp.add_argument(
        "--max-retries", type=int, default=None, metavar="K",
        help="attributed failures a chunk may accrue before it is bisected "
        "down to the poison cell and that cell is quarantined (default 1)",
    )
    p_camp.add_argument(
        "--on-error", choices=("quarantine", "raise"), default="quarantine",
        help="what a failing cell does to the campaign: 'quarantine' "
        "(default) records it as outcome=error and completes every other "
        "cell; 'raise' aborts on the first failure (the strict mode)",
    )
    p_camp.add_argument(
        "--episodes", action="store_true",
        help="also print the Lemma 4.3 episode-scaling fit over the matrix",
    )
    p_camp.add_argument("--json", metavar="PATH", help="write all results as JSON")
    p_camp.add_argument(
        "--store", metavar="DIR",
        help="persist results to a store at DIR (created if absent); "
        "scenarios already recorded there are loaded instead of re-run",
    )
    p_camp.add_argument(
        "--resume", metavar="RUN_DIR",
        help="resume an interrupted campaign from an existing store: skip "
        "its completed scenarios, run the rest, write through to it",
    )
    p_camp.add_argument(
        "--artifacts", metavar="DIR",
        help="persist compiled topologies to an mmap-shared artifact "
        "library at DIR (created if absent); warm libraries skip every "
        "previously-seen compile, across processes and campaigns",
    )
    p_camp.add_argument(
        "--profile", nargs="?", const="", metavar="FILE",
        help="run under cProfile — aggregated across every worker process "
        "with --jobs — and print the top-20 functions by cumulative time; "
        "with FILE, also dump the merged pstats data there (inspect with "
        "'python -m pstats FILE')",
    )

    p_store = sub.add_parser(
        "store",
        help="inspect a result store or (--artifacts) an artifact library",
    )
    p_store.add_argument("dir", metavar="DIR", help="path of the store")
    p_store.add_argument(
        "--json", metavar="PATH",
        help="also write the aggregate stats as canonical JSON to PATH "
        "('-' for stdout)",
    )
    p_store.add_argument(
        "--artifacts", action="store_true",
        help="DIR is a compiled-artifact library, not a result store: "
        "print artifact count and total bytes",
    )
    p_store.add_argument(
        "--verify", action="store_true",
        help="offline integrity scan; exit 1 on corruption.  For a result "
        "store: parse every shard record and check its key against the "
        "recomputed spec hash (torn trailing lines are warnings).  With "
        "--artifacts: fully validate every artifact (checksums, versions)",
    )
    p_store.add_argument(
        "--gc", action="store_true",
        help="with --artifacts: remove invalid artifacts (and, with "
        "--keep-mb, evict oldest artifacts down to the byte budget)",
    )
    p_store.add_argument(
        "--keep-mb", type=float, metavar="MB",
        help="with --gc: byte budget the library must fit after eviction",
    )

    p_bc = sub.add_parser(
        "bench-compare",
        help="diff a fresh benchmark snapshot against a committed baseline",
    )
    p_bc.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="committed baseline JSON (benchmarks/baselines/BENCH_*.json)",
    )
    p_bc.add_argument(
        "--fresh", required=True, metavar="PATH",
        help="fresh snapshot JSON (benchmarks/out/BENCH_*.json)",
    )
    p_bc.add_argument(
        "--threshold", type=float, default=0.25, metavar="T",
        help="relative slack before a metric counts as regressed "
        "(default 0.25 = 25%%)",
    )
    p_bc.add_argument(
        "--require-all", action="store_true",
        help="treat baseline metrics missing from the fresh snapshot as "
        "regressions (default: skip them)",
    )

    sub.add_parser("families", help="list built-in network families")

    sub.add_parser(
        "faults",
        help="list the fault-model vocabulary (legacy kinds + timeline grammar)",
    )

    p_lb = sub.add_parser("lower-bound", help="Theorem 5.1 implied bound table")
    p_lb.add_argument("--delta", type=int, default=5)
    p_lb.add_argument("--max-depth", type=int, default=10)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "families":
        # exactly the names map --family / campaign --families accept,
        # instantiated at the default size for a feel of their shape
        for name in sorted(FAMILY_BUILDERS):
            graph = build_family(name, 8, seed=0)
            print(
                f"{name:28s} N={graph.num_nodes:4d} delta={graph.delta} "
                f"D={diameter(graph)}"
            )
        return 0
    if args.command == "lower-bound":
        rows = [
            (n, ticks)
            for n, ticks in lower_bound_curve(
                list(range(1, args.max_depth + 1)), args.delta
            )
        ]
        print(
            format_table(
                ["N (family size)", "min ticks (Thm 5.1)"],
                rows,
                title=f"Implied lower bound, delta={args.delta}",
            )
        )
        return 0
    if args.command == "faults":
        return _run_faults_command()
    if args.command == "campaign":
        if args.profile is not None:
            return _run_campaign_profiled(args)
        return _run_campaign_command(args)
    if args.command == "store":
        return _run_store_command(args)
    if args.command == "bench-compare":
        return _run_bench_compare(args)
    # map
    if args.timeline and args.repeats > 1:
        raise ReproError(
            "--timeline applies to a single map run; for a sweep, use "
            "'campaign --timeline'"
        )
    if args.profile is not None:
        return _run_map_profiled(args)
    return _run_map(args)


def _run_map_profiled(args: argparse.Namespace) -> int:
    """Run any map variant under cProfile (the ``--profile`` hook).

    Prints the top-20 functions by cumulative time — the view that keeps
    the hot-loop split visible: code-space dispatch shows up under the
    engine's ``step_tick`` while object-path fallbacks surface the
    ``ProtocolProcessor.handle`` tree — and optionally dumps the raw
    pstats data for offline digging.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        if args.repeats > 1:
            code = _run_map_sweep(args)
        elif args.timeline:
            code = _run_map_timeline(args)
        else:
            code = _run_map(args)
    finally:
        profiler.disable()
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(20)
    if args.profile:
        profiler.dump_stats(args.profile)
        print(f"wrote profile stats to {args.profile}")
    return code


def _run_map(args: argparse.Namespace) -> int:
    if args.repeats > 1:
        return _run_map_sweep(args)
    if args.timeline:
        return _run_map_timeline(args)
    graph = build_family(args.family, args.size, args.seed)
    print(
        f"network: {args.family}, N={graph.num_nodes}, delta={graph.delta}, "
        f"backend={args.backend}"
    )
    print(render_adjacency(graph, root=0))
    result = determine_topology(
        graph, verify_cleanup=args.verify_cleanup, backend=args.backend
    )
    print()
    print(render_recovered_map(result.recovered))
    print()
    print(
        f"ticks={result.ticks}  D={result.diameter}  N*D="
        f"{graph.num_nodes * max(1, result.diameter)}  "
        f"RCAs={result.rca_runs}  BCAs={result.bca_runs}  "
        f"exact={result.matches(graph)}"
    )
    if args.traffic:
        print()
        print(render_traffic_profile(result.metrics))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(result.to_json())
        print(f"wrote {args.json}")
    return 0


def _run_faults_command() -> int:
    """``faults``: the fault-model vocabulary, legacy kinds first."""
    legacy = [
        ("none", "", "the healthy network"),
        ("shutdown", "shutdown:RATE", "pre-run: each wire dies w.p. RATE"),
        ("cut", "cut:T", "one wire cut at T x the undisturbed runtime"),
        ("add", "add:T", "one wire added at T x the undisturbed runtime"),
    ]
    print(
        format_table(
            ["kind", "spec", "meaning"],
            [(name, spec or name, doc) for name, spec, doc in legacy],
            title="fault models (campaign --faults / scenario fault axis)",
        )
    )
    print()
    print(
        format_table(
            ["event", "parameters", "meaning"],
            [
                (kind, params, doc)
                for kind, (params, doc) in sorted(TIMELINE_EVENT_KINDS.items())
            ],
            title="timeline events (--timeline; compose with '+', times are "
            "fractions of the undisturbed runtime T)",
        )
    )
    print()
    print("example: repro-topology campaign --families spare-ring --sizes 10 \\")
    print("             --timeline 'storm:p=0.2@0.4+heal@0.9' --seeds 5")
    return 0


def _run_map_timeline(args: argparse.Namespace) -> int:
    """``map --timeline``: one perturbed GTD run, classified per phase."""
    if args.verify_cleanup:
        raise ReproError(
            "--verify-cleanup asserts the static protocol's invariants; "
            "a perturbed run violates them by design"
        )
    timeline = parse_timeline(args.timeline)  # fail fast, before any run
    graph = build_family(args.family, args.size, args.seed)
    print(
        f"network: {args.family}, N={graph.num_nodes}, delta={graph.delta}, "
        f"backend={args.backend}, timeline={timeline.canonical()}"
    )
    program = compile_timeline(
        timeline, graph, seed=args.seed, backend=args.backend
    )
    result = run_dynamic_gtd(
        graph,
        program,
        max_ticks=program.horizon * 3 + 1000,
        backend=args.backend,
    )
    # the "pre" phase precedes every op by definition; each later phase
    # opens with the ops that fired at its start tick
    rows = [("pre", 0, 0)] + [
        (label, start, sum(1 for op in program.ops if op.tick == start))
        for label, start in program.phases[1:]
    ]
    print()
    print(
        format_table(
            ["phase", "starts at tick", "wire ops"],
            rows,
            title=f"timeline program: {len(program.ops)} wire op(s), "
            f"horizon {program.horizon} ticks (undisturbed runtime)",
        )
    )
    print()
    print(
        f"outcome={result.outcome.value}  ended in phase '{result.phase}'  "
        f"ticks={result.ticks}  hops={result.hops}  "
        f"lost={result.lost_characters}  "
        f"ops applied={result.applied_ops}/{len(program.ops)}"
    )
    if args.traffic:
        print()
        print(render_traffic_profile(result.metrics))
    if args.json:
        import json as _json

        doc = {
            "format": "repro.map-timeline/v1",
            "family": args.family,
            "size": graph.num_nodes,
            "seed": args.seed,
            "backend": args.backend,
            "timeline": program.source,
            "horizon": program.horizon,
            "phases": [list(p) for p in program.phases],
            "outcome": result.outcome.value,
            "phase": result.phase,
            "ticks": result.ticks,
            "hops": result.hops,
            "lost_characters": result.lost_characters,
            "applied_ops": result.applied_ops,
        }
        with open(args.json, "w") as fh:
            fh.write(_json.dumps(doc, indent=2))
        print(f"wrote {args.json}")
    return 0


def _run_map_sweep(args: argparse.Namespace) -> int:
    """``map --repeats K [--jobs J]``: a seed sweep over the campaign runner."""
    if args.verify_cleanup or args.traffic:
        raise ReproError(
            "--verify-cleanup and --traffic apply to a single map run; "
            "drop --repeats (or run the seeds one at a time)"
        )
    scenarios = [
        Scenario(
            family=args.family, size=args.size, seed=args.seed + i,
            backend=args.backend,
        )
        for i in range(args.repeats)
    ]
    campaign = run_campaign(scenarios, jobs=args.jobs)
    print(campaign.summary())
    exact = sum(1 for r in campaign.results if r.ok)
    print(f"\nexact maps: {exact}/{len(campaign)}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(campaign.to_json())
        print(f"wrote {args.json}")
    return 0 if exact == len(campaign) else 1


def _open_campaign_store(args: argparse.Namespace) -> ResultStore | None:
    """Resolve --store / --resume into an open store (or None)."""
    if args.resume and args.store and args.resume != args.store:
        raise ReproError(
            "--resume and --store point at different directories; "
            "--resume already implies storing into RUN_DIR"
        )
    if args.resume:
        if not Path(args.resume).is_dir():
            raise ReproError(
                f"--resume: no store at {args.resume!r} (start one with "
                f"--store, then resume it after an interruption)"
            )
        return ResultStore(args.resume)
    return ResultStore(args.store) if args.store else None


def _run_campaign_profiled(args: argparse.Namespace) -> int:
    """``campaign --profile``: one merged cProfile report for the matrix.

    Mirrors ``map --profile``, extended across the worker pool: the parent
    process (chunking, store round-trips, serial runs) is profiled
    in-process, every pool worker dumps per-pid pstats snapshots after
    each chunk, and the views are merged into a single top-20 cumulative
    report — so the hot-loop split reads the same whether the matrix ran
    with ``--jobs 1`` or fanned out.  With FILE, the merged stats are also
    dumped for offline digging.
    """
    import cProfile
    import os
    import pstats
    import tempfile

    from repro.campaigns.executor import shutdown_worker_pool

    with tempfile.TemporaryDirectory(prefix="repro-campaign-profile-") as tmp:
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            code = _run_campaign_command(args, profile_dir=tmp)
        finally:
            profiler.disable()
            # retire the armed pool: the terminate flushes nothing (chunk
            # dumps are already complete snapshots), it just stops the
            # profiler overhead from leaking into later campaigns
            shutdown_worker_pool()
        print()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        worker_files = sorted(
            os.path.join(tmp, name)
            for name in os.listdir(tmp)
            if name.endswith(".pstats")
        )
        for path in worker_files:
            stats.add(path)
        if worker_files:
            print(
                f"aggregated {len(worker_files)} worker profile(s) "
                f"into the parent's"
            )
        stats.sort_stats("cumulative").print_stats(20)
        if args.profile:
            stats.dump_stats(args.profile)
            print(f"wrote merged profile stats to {args.profile}")
    return code


def _run_campaign_command(
    args: argparse.Namespace, profile_dir: str | None = None
) -> int:
    if args.lanes is not None and args.backend != "batch":
        raise ReproError(
            f"--lanes requires --backend batch (got backend {args.backend!r})"
        )
    spec = CampaignSpec(
        families=tuple(args.families),
        sizes=tuple(args.sizes),
        faults=tuple(args.faults) + tuple(args.timeline),
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        backends=(args.backend,),
    )
    store = _open_campaign_store(args)
    reused = len(spec) - len(store.missing(spec)) if store is not None else 0
    policy_kwargs: dict = {"on_error": args.on_error}
    if args.cell_timeout is not None:
        # 0 disables deadlines entirely (the policy models that as None)
        policy_kwargs["cell_timeout"] = args.cell_timeout or None
    if args.max_retries is not None:
        policy_kwargs["max_retries"] = args.max_retries
    campaign = run_campaign(
        spec,
        jobs=args.jobs,
        store=store,
        start_method=args.start_method,
        lanes=args.lanes,
        artifacts=args.artifacts,
        profile_dir=profile_dir,
        policy=SupervisionPolicy(**policy_kwargs),
    )
    print(campaign.summary())
    for family, size, seed, reason in campaign.prewarm_skipped:
        print(f"prewarm skipped {family}({size}) s{seed}: {reason}")
    quarantined = campaign.quarantined()
    if quarantined:
        print()
        print(
            format_table(
                ["quarantined cell", "error kind", "digest"],
                [(r.scenario.label, r.error, r.error_digest) for r in quarantined],
                title="cells quarantined by the supervisor",
            )
        )
    phase_rows = phase_outcome_counts(campaign.results)
    if phase_rows:
        print()
        print(
            format_table(
                ["timeline phase", "outcome", "runs"],
                list(phase_rows),
                title="outcomes by timeline phase",
            )
        )
    if store is not None:
        print(
            f"\nstore {store.root}: reused {reused} stored scenario(s), "
            f"ran {len(spec) - reused} fresh, {len(store)} record(s) total"
        )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(campaign.to_json())
        print(f"wrote {args.json}")
    if args.episodes:
        try:
            fit = campaign.episode_fit()
        except TranscriptError:
            # dynamic-fault matrices can legitimately yield < 2 episodes
            print("\nepisode scaling: not enough RCA episodes in this matrix")
        else:
            print(
                f"\nepisode scaling (Lemma 4.3): duration ~ "
                f"{fit.slope:.2f} * loop_length + {fit.intercept:.2f} "
                f"(R^2 = {fit.r_squared:.4f})"
            )
    # Outcomes (stale/deadlock/...) are the campaign's *data*, not command
    # failures — dynamics sweeps produce them by design — so the exit code
    # only reflects whether the matrix itself ran.
    return 0


def _run_store_command(args: argparse.Namespace) -> int:
    """``store DIR``: aggregate a result store from its JSONL shards."""
    if args.artifacts:
        return _run_artifacts_store_command(args)
    if args.gc or args.keep_mb is not None:
        raise ReproError("--gc/--keep-mb apply to --artifacts libraries")
    if not Path(args.dir).is_dir():
        raise ReproError(f"no result store at {args.dir!r}")
    if args.verify:
        # Offline scan: reports without opening (or truncating) anything.
        # Torn trailing lines are warnings — the loader handles them — so
        # only genuinely corrupt records fail the exit code.
        report = verify_result_store(args.dir)
        print(report.summary())
        return 0 if report.ok else 1
    store = ResultStore(args.dir)
    stats = store.stats()
    outcomes = {outcome: n for outcome, n in stats.outcomes}
    print(f"store {store.root}: {len(store)} record(s)")
    print(f"outcomes: {outcomes}")
    print(
        f"total ticks={stats.total_ticks}  hops={stats.total_hops}  "
        f"work={stats.total_work}  episodes={stats.episode_count}  "
        f"ok={stats.ok_fraction:.0%}"
    )
    if stats.fit is not None:
        print(
            f"episode scaling (Lemma 4.3): duration ~ "
            f"{stats.fit.slope:.2f} * loop_length + {stats.fit.intercept:.2f} "
            f"(R^2 = {stats.fit.r_squared:.4f})"
        )
    if args.json == "-":
        print(stats.to_json())
    elif args.json:
        with open(args.json, "w") as fh:
            fh.write(stats.to_json() + "\n")
        print(f"wrote {args.json}")
    return 0


def _run_artifacts_store_command(args: argparse.Namespace) -> int:
    """``store DIR --artifacts``: inspect/verify/GC a compiled-artifact library."""
    from repro.store.artifacts import ArtifactLibrary

    if not Path(args.dir).is_dir():
        raise ReproError(f"no artifact library at {args.dir!r}")
    if args.keep_mb is not None and not args.gc:
        raise ReproError("--keep-mb requires --gc")
    library = ArtifactLibrary(args.dir)
    if args.gc:
        budget = int(args.keep_mb * 1024 * 1024) if args.keep_mb is not None else None
        removed = library.gc(max_bytes=budget)
        for entry in removed:
            reason = entry.error or "evicted (byte budget)"
            print(f"removed {entry.key[:16]}… ({entry.size} bytes): {reason}")
        print(f"gc: removed {len(removed)} artifact(s)")
    stats = library.stats()
    print(
        f"artifact library {stats['root']}: {stats['artifacts']} artifact(s), "
        f"{stats['bytes']} bytes"
    )
    if args.verify:
        bad = [entry for entry in library.entries(validate=True) if not entry.ok]
        for entry in bad:
            print(f"INVALID {entry.key[:16]}…: {entry.error}")
        print(f"verify: {len(bad)} invalid artifact(s)")
        return 1 if bad else 0
    return 0


def _run_bench_compare(args: argparse.Namespace) -> int:
    """``bench-compare``: the perf regression gate; exit 1 on regression."""
    report = compare_files(
        args.baseline,
        args.fresh,
        threshold=args.threshold,
        require_all=args.require_all,
    )
    print(report.summary())
    if not report.ok:
        names = ", ".join(row.name for row in report.regressions)
        print(f"\nregressed beyond {args.threshold:.0%}: {names}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
