"""Convenience builder that assigns ports automatically.

Most generators and tests only care about *which* processors are connected;
the builder picks the lowest free out-port of the source and the lowest free
in-port of the destination, mirroring how a technician would wire a rack.
Explicit port control remains available through
:meth:`PortGraph.add_wire` for tests that need specific port labels.
"""

from __future__ import annotations

from repro.errors import DegreeBoundError
from repro.topology.portgraph import PortGraph, Wire
from repro.util.validation import check_positive

__all__ = ["PortGraphBuilder"]


class PortGraphBuilder:
    """Incrementally build a :class:`PortGraph` with automatic port numbers.

    Args:
        num_nodes: number of processors.
        delta: degree bound.  If ``None`` the builder buffers connections and
            sizes ``delta`` to the maximum degree actually used (minimum 2,
            the paper's lower limit) when :meth:`build` is called.
    """

    def __init__(self, num_nodes: int, delta: int | None = None) -> None:
        check_positive("num_nodes", num_nodes)
        if delta is not None:
            check_positive("delta", delta, minimum=2)
        self._n = num_nodes
        self._delta = delta
        self._edges: list[tuple[int, int]] = []

    @property
    def num_nodes(self) -> int:
        """Number of processors the built graph will have."""
        return self._n

    def connect(self, src: int, dst: int) -> "PortGraphBuilder":
        """Queue a unidirectional wire ``src -> dst`` (auto ports)."""
        if not 0 <= src < self._n or not 0 <= dst < self._n:
            raise ValueError(f"node ids must be in [0, {self._n})")
        self._edges.append((src, dst))
        return self

    def connect_bidirectional(self, a: int, b: int) -> "PortGraphBuilder":
        """Queue wires in both directions, simulating a bidirectional link.

        The paper notes a bidirectional link is exactly a pair of opposed
        unidirectional links.
        """
        return self.connect(a, b).connect(b, a)

    def build(self) -> PortGraph:
        """Materialize the :class:`PortGraph` (frozen, ports assigned).

        Raises:
            DegreeBoundError: if an explicit ``delta`` is too small for the
                queued connections.
        """
        out_deg = [0] * self._n
        in_deg = [0] * self._n
        for src, dst in self._edges:
            out_deg[src] += 1
            in_deg[dst] += 1
        needed = max([2, *out_deg, *in_deg])
        if self._delta is None:
            delta = needed
        else:
            delta = self._delta
            if needed > delta:
                raise DegreeBoundError(
                    f"connections need degree {needed} but delta={delta}"
                )
        graph = PortGraph(self._n, delta)
        next_out = [1] * self._n
        next_in = [1] * self._n
        for src, dst in self._edges:
            graph.add_wire(src, next_out[src], dst, next_in[dst])
            next_out[src] += 1
            next_in[dst] += 1
        return graph.freeze()

    def queued_edges(self) -> list[tuple[int, int]]:
        """The (src, dst) pairs queued so far, in insertion order."""
        return list(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PortGraphBuilder(num_nodes={self._n}, delta={self._delta}, "
            f"edges={len(self._edges)})"
        )


def wire_endpoints(wire: Wire) -> tuple[int, int]:
    """Return ``(src, dst)`` of a wire (helper for builders and tests)."""
    return wire.src, wire.dst
