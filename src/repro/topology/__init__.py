"""Port-labeled directed multigraphs: the paper's network model.

A network is a set of identical processors, each with in-ports and out-ports
numbered ``1..delta``; a *wire* connects one processor's out-port to another
processor's in-port and carries constant-size characters unidirectionally
(paper §1.1).  :class:`~repro.topology.portgraph.PortGraph` is the immutable
wiring description consumed by the simulator; generators produce the network
families used in examples, tests and benchmarks.
"""

from repro.topology.portgraph import PortGraph, Wire
from repro.topology.builder import PortGraphBuilder
from repro.topology.properties import (
    bfs_distances,
    diameter,
    eccentricity,
    is_strongly_connected,
)
from repro.topology.isomorphism import port_isomorphic, rooted_port_map
from repro.topology.serialize import from_json, to_dot, to_json
from repro.topology import generators
from repro.topology.faults import shutdown_out_ports, degrade_bidirectional

__all__ = [
    "PortGraph",
    "Wire",
    "PortGraphBuilder",
    "bfs_distances",
    "diameter",
    "eccentricity",
    "is_strongly_connected",
    "port_isomorphic",
    "rooted_port_map",
    "to_json",
    "from_json",
    "to_dot",
    "generators",
    "shutdown_out_ports",
    "degrade_bidirectional",
]
