"""The :class:`PortGraph`: a port-labeled directed multigraph.

This is the paper's network model made concrete:

* processors (nodes) are integers ``0..n-1`` — note the *protocol* never uses
  these identifiers; they exist only for the simulator and for ground-truth
  comparison (the paper's processors are anonymous);
* each processor owns out-ports and in-ports numbered ``1..delta`` (the paper
  numbers ports from 1 and we follow it so transcripts read like the paper);
* a :class:`Wire` attaches exactly one out-port to exactly one in-port;
  a port carries at most one wire;
* parallel edges between a pair of processors are legal (they use distinct
  ports) and so are self-loops — both occur in the paper's model ("a pair of
  processors is allowed to be connected with two communication links").

The class is append-only while building and can be frozen; the simulator and
all analyses treat it as immutable.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.errors import (
    DegreeBoundError,
    NotStronglyConnectedError,
    PortInUseError,
    TopologyError,
)
from repro.util.validation import check_positive

__all__ = ["Wire", "PortGraph"]


class Wire(NamedTuple):
    """One unidirectional communication link.

    ``src`` sends through its ``out_port``; ``dst`` receives through its
    ``in_port``.  Ports are 1-based, matching the paper's notation
    ``FORWARD token (4, 1)`` for "out of out-port 4, into in-port 1".
    """

    src: int
    out_port: int
    dst: int
    in_port: int


class PortGraph:
    """A directed network of ``n`` processors with degree bound ``delta``.

    Args:
        num_nodes: number of processors ``N >= 1``.
        delta: uniform bound on the number of in-ports and out-ports per
            processor.  The paper requires ``delta >= 2``.

    The graph starts with no wires; use :meth:`add_wire` (or the friendlier
    :class:`~repro.topology.builder.PortGraphBuilder`) and then
    :meth:`freeze`.
    """

    def __init__(self, num_nodes: int, delta: int) -> None:
        check_positive("num_nodes", num_nodes)
        check_positive("delta", delta, minimum=2)
        self._n = num_nodes
        self._delta = delta
        # _out[u][p] / _in[u][p] -> Wire for 1-based port p (index 0 unused).
        self._out: list[list[Wire | None]] = [
            [None] * (delta + 1) for _ in range(num_nodes)
        ]
        self._in: list[list[Wire | None]] = [
            [None] * (delta + 1) for _ in range(num_nodes)
        ]
        self._wires: list[Wire] = []
        self._frozen = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_wire(self, src: int, out_port: int, dst: int, in_port: int) -> Wire:
        """Attach a wire from ``(src, out_port)`` to ``(dst, in_port)``.

        Raises:
            TopologyError: if the graph is frozen or a node id is invalid.
            DegreeBoundError: if a port number exceeds ``delta``.
            PortInUseError: if either endpoint port already has a wire.
        """
        if self._frozen:
            raise TopologyError("cannot add wires to a frozen PortGraph")
        self._check_node(src)
        self._check_node(dst)
        self._check_port(out_port)
        self._check_port(in_port)
        if self._out[src][out_port] is not None:
            raise PortInUseError(f"out-port {out_port} of node {src} already wired")
        if self._in[dst][in_port] is not None:
            raise PortInUseError(f"in-port {in_port} of node {dst} already wired")
        wire = Wire(src, out_port, dst, in_port)
        self._out[src][out_port] = wire
        self._in[dst][in_port] = wire
        self._wires.append(wire)
        return wire

    def freeze(self) -> "PortGraph":
        """Mark the graph immutable and validate basic model constraints.

        Every processor must have at least one connected in-port and one
        connected out-port (paper §1.1).  Returns ``self`` for chaining.
        """
        for u in range(self._n):
            if not self.connected_out_ports(u):
                raise TopologyError(f"node {u} has no connected out-port")
            if not self.connected_in_ports(u):
                raise TopologyError(f"node {u} has no connected in-port")
        self._frozen = True
        return self

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of processors ``N``."""
        return self._n

    @property
    def delta(self) -> int:
        """The degree bound ``delta`` (max in-ports = max out-ports)."""
        return self._delta

    @property
    def num_wires(self) -> int:
        """Number of wires (directed edges)."""
        return len(self._wires)

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def nodes(self) -> range:
        """Iterate over processor ids."""
        return range(self._n)

    def wires(self) -> Iterator[Wire]:
        """Iterate over all wires in insertion order."""
        return iter(self._wires)

    def out_wire(self, node: int, port: int) -> Wire | None:
        """The wire attached to ``(node, out-port)``, or ``None``."""
        self._check_node(node)
        self._check_port(port)
        return self._out[node][port]

    def in_wire(self, node: int, port: int) -> Wire | None:
        """The wire attached to ``(node, in-port)``, or ``None``."""
        self._check_node(node)
        self._check_port(port)
        return self._in[node][port]

    def connected_out_ports(self, node: int) -> tuple[int, ...]:
        """Sorted tuple of out-port numbers of ``node`` that carry a wire."""
        self._check_node(node)
        return tuple(p for p in range(1, self._delta + 1) if self._out[node][p])

    def connected_in_ports(self, node: int) -> tuple[int, ...]:
        """Sorted tuple of in-port numbers of ``node`` that carry a wire."""
        self._check_node(node)
        return tuple(p for p in range(1, self._delta + 1) if self._in[node][p])

    def successors(self, node: int) -> list[Wire]:
        """Wires leaving ``node``, ordered by out-port number."""
        self._check_node(node)
        return [w for w in self._out[node][1:] if w is not None]

    def predecessors(self, node: int) -> list[Wire]:
        """Wires entering ``node``, ordered by in-port number."""
        self._check_node(node)
        return [w for w in self._in[node][1:] if w is not None]

    def edge_set(self) -> frozenset[Wire]:
        """The set of wires, for equality comparisons between graphs."""
        return frozenset(self._wires)

    def out_degree(self, node: int) -> int:
        """Number of connected out-ports of ``node``."""
        return len(self.connected_out_ports(node))

    def in_degree(self, node: int) -> int:
        """Number of connected in-ports of ``node``."""
        return len(self.connected_in_ports(node))

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PortGraph(num_nodes={self._n}, delta={self._delta}, "
            f"num_wires={len(self._wires)}, frozen={self._frozen})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same size, bound and exact wire set.

        This is *labeled* equality (node ids matter).  For the anonymous
        equivalence the protocol recovers, use
        :func:`repro.topology.isomorphism.port_isomorphic`.
        """
        if not isinstance(other, PortGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._delta == other._delta
            and self.edge_set() == other.edge_set()
        )

    def __hash__(self) -> int:
        return hash((self._n, self._delta, self.edge_set()))

    def require_strongly_connected(self) -> "PortGraph":
        """Raise :class:`NotStronglyConnectedError` unless strongly connected."""
        from repro.topology.properties import is_strongly_connected

        if not is_strongly_connected(self):
            raise NotStronglyConnectedError(
                "the Global Topology Determination protocol requires a "
                "strongly-connected network"
            )
        return self

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not isinstance(node, int) or isinstance(node, bool):
            raise TopologyError(f"node id must be int, got {type(node).__name__}")
        if not 0 <= node < self._n:
            raise TopologyError(f"node id {node} out of range [0, {self._n})")

    def _check_port(self, port: int) -> None:
        if not isinstance(port, int) or isinstance(port, bool):
            raise TopologyError(f"port must be int, got {type(port).__name__}")
        if not 1 <= port <= self._delta:
            raise DegreeBoundError(
                f"port {port} outside [1, {self._delta}] (degree bound delta)"
            )
