"""Lower a frozen :class:`PortGraph` into flat integer tables.

The object engine resolves every emission through ``dict`` lookups on
per-node ``{out_port: Wire}`` maps.  For the flat-core backend
(:mod:`repro.sim.flatcore`) the wiring is compiled **once per run** into
dense ``array('q')`` tables, so the hot loop resolves a wire with two
integer indexings and no hashing:

* ``wire_dst`` / ``wire_in_port`` — port-indexed tables of length
  ``num_nodes * (delta + 1)``.  Slot ``node * stride + out_port`` holds the
  destination node and its in-port, or ``-1`` for an unconnected out-port
  (port 0 is unused; keeping it makes the slot arithmetic a single
  multiply-add).
* ``out_start`` / ``out_ports`` — a CSR pair: node ``u``'s connected
  out-ports are ``out_ports[out_start[u]:out_start[u+1]]``, ascending.
  ``in_start`` / ``in_ports`` is the same for in-ports.

The compilation is a pure function of the frozen graph; the compiled form
never mutates (the dynamic backend layers its cut/add overlays *on top*,
exactly as the object backend overlays the base graph).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.topology.portgraph import PortGraph

__all__ = ["CompiledTopology", "compile_topology"]


@dataclass(frozen=True)
class CompiledTopology:
    """A frozen :class:`PortGraph` as dense integer tables (read-only)."""

    num_nodes: int
    delta: int
    stride: int                # slot(node, out_port) = node * stride + out_port
    wire_dst: array            # slot -> destination node, -1 if unconnected
    wire_in_port: array        # slot -> destination in-port, -1 if unconnected
    out_start: array           # CSR offsets into out_ports, length num_nodes + 1
    out_ports: array           # concatenated connected out-ports, ascending per node
    in_start: array            # CSR offsets into in_ports, length num_nodes + 1
    in_ports: array            # concatenated connected in-ports, ascending per node

    # ------------------------------------------------------------------
    # conveniences (cold paths only; the hot loop indexes the arrays)
    # ------------------------------------------------------------------
    def dst_of(self, node: int, out_port: int) -> tuple[int, int] | None:
        """``(dst, in_port)`` for a wired out-port, else ``None``."""
        slot = node * self.stride + out_port
        dst = self.wire_dst[slot]
        if dst < 0:
            return None
        return dst, self.wire_in_port[slot]

    def out_ports_of(self, node: int) -> tuple[int, ...]:
        """Connected out-ports of ``node``, ascending (CSR slice)."""
        return tuple(self.out_ports[self.out_start[node]:self.out_start[node + 1]])

    def in_ports_of(self, node: int) -> tuple[int, ...]:
        """Connected in-ports of ``node``, ascending (CSR slice)."""
        return tuple(self.in_ports[self.in_start[node]:self.in_start[node + 1]])


def compile_topology(graph: PortGraph) -> CompiledTopology:
    """Compile a frozen graph into :class:`CompiledTopology` tables."""
    if not graph.frozen:
        raise SimulationError("can only compile a frozen PortGraph")
    n = graph.num_nodes
    delta = graph.delta
    stride = delta + 1
    wire_dst = array("q", [-1]) * (n * stride)
    wire_in_port = array("q", [-1]) * (n * stride)
    for wire in graph.wires():
        slot = wire.src * stride + wire.out_port
        wire_dst[slot] = wire.dst
        wire_in_port[slot] = wire.in_port

    out_start = array("q", [0]) * (n + 1)
    in_start = array("q", [0]) * (n + 1)
    out_ports = array("q")
    in_ports = array("q")
    for node in range(n):
        out_ports.extend(graph.connected_out_ports(node))
        in_ports.extend(graph.connected_in_ports(node))
        out_start[node + 1] = len(out_ports)
        in_start[node + 1] = len(in_ports)

    return CompiledTopology(
        num_nodes=n,
        delta=delta,
        stride=stride,
        wire_dst=wire_dst,
        wire_in_port=wire_in_port,
        out_start=out_start,
        out_ports=out_ports,
        in_start=in_start,
        in_ports=in_ports,
    )
