"""Lower a frozen :class:`PortGraph` into flat integer tables.

The object engine resolves every emission through ``dict`` lookups on
per-node ``{out_port: Wire}`` maps.  For the flat-core backend
(:mod:`repro.sim.flatcore`) the wiring is compiled **once per run** into
dense ``array('q')`` tables, so the hot loop resolves a wire with two
integer indexings and no hashing:

* ``wire_dst`` / ``wire_in_port`` — port-indexed tables of length
  ``num_nodes * (delta + 1)``.  Slot ``node * stride + out_port`` holds the
  destination node and its in-port, or ``-1`` for an unconnected out-port
  (port 0 is unused; keeping it makes the slot arithmetic a single
  multiply-add).
* ``out_start`` / ``out_ports`` — a CSR pair: node ``u``'s connected
  out-ports are ``out_ports[out_start[u]:out_start[u+1]]``, ascending.
  ``in_start`` / ``in_ports`` is the same for in-ports.

The compilation is a pure function of the frozen graph.  For *static* runs
the compiled form never mutates — which is why it is also **cached**, in
two tiers.  :func:`compiled_topology` keeps one compiled artifact per
wiring (process-wide, LRU-bounded), so every engine built over the same
frozen graph shares a single set of tables instead of re-lowering them.
Below the in-memory tier sits the optional **on-disk artifact library**
(:mod:`repro.store.artifacts`): when one is configured — explicitly, via a
campaign ``artifacts=`` argument, or through the ``REPRO_ARTIFACTS``
environment variable — a cache miss first tries an ``mmap`` load of the
serialized tables (zero-copy ``memoryview`` rows shared across processes
through the page cache), and only compiles on a true library miss, at
which point the fresh compile is atomically published back.  A cold
process with a warm library therefore reaches the hot loop without ever
invoking :func:`compile_topology` (``compile_calls()`` counts invocations
so tests can assert exactly that).  Anything that must mutate the tables
(the dynamic engines) takes a private copy-on-write view first via
:meth:`CompiledTopology.fork`: the two wire tables are copied (they are
what a patch touches) — materializing them to mutable ``array('q')`` even
when the base rows live on a read-only mapping — the CSR port census is
shared (and for mmap-backed artifacts never leaves the mapping), and the
fork remembers the :attr:`~CompiledTopology.pristine` original so undo
records need no extra copies.

Dynamic runs patch their fork **incrementally** through a
:class:`TopologyPatcher`: a cut stamps the :data:`CUT` sentinel into the
wire tables, a heal or an add rewires the slot in place, and the patcher
keeps a free-list of touched slots plus pristine base values, so any slot
can be restored in O(1) and the whole topology reset in O(touched).  The
CSR port census (``out_start``/``out_ports``/``in_start``/``in_ports``) is
deliberately **not** patched: it feeds the processors'
:class:`~repro.sim.engine.NodeContext` and the engine's per-node sinks,
i.e. it models *port awareness established at power-on* — exactly the
knowledge the paper says processors keep when the physical wiring changes
under them.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from repro.errors import SimulationError
from repro.sim.characters import kernel_for
from repro.topology.portgraph import PortGraph

__all__ = [
    "UNWIRED",
    "CUT",
    "COMPILER_VERSION",
    "TABLE_NAMES",
    "CompiledTopology",
    "TopologyPatcher",
    "compile_topology",
    "compiled_topology",
    "clear_compiled_cache",
    "compile_calls",
]

#: Version tag of the lowering itself.  Part of every on-disk artifact
#: key and header: bump it whenever :func:`compile_topology` changes the
#: *meaning* of the emitted tables (new sentinel values, different CSR
#: ordering, …) so previously published artifacts miss instead of being
#: served with stale semantics.
COMPILER_VERSION = 1

#: The fourteen dense tables every :class:`CompiledTopology` carries, in
#: canonical order — the order they are serialized in on disk.  The first
#: six lower the *wiring*; the last eight lower the *character algebra*
#: (the :class:`~repro.sim.characters.CharKernel` tables — a pure function
#: of ``delta``, serialized so a cold process reaches the code-space hot
#: loop without enumerating the alphabet).  ``char_trans`` — the protocol
#: automaton's transition program, artifact format v3 — is the newest: a
#: ``K * (delta + 1) * n_phases(delta)`` row tensor the flat backend's
#: table-walking stepper executes directly.
TABLE_NAMES = (
    "wire_dst",
    "wire_in_port",
    "out_start",
    "out_ports",
    "in_start",
    "in_ports",
    "char_flags",
    "char_family",
    "char_role",
    "char_out_port",
    "char_in_port",
    "char_fill",
    "char_convert",
    "char_trans",
)

#: ``wire_dst`` value of an out-port that never carried a wire.  Emitting
#: through it is a simulation bug (the processor cannot know the port).
UNWIRED = -1

#: ``wire_dst`` value of an out-port whose wire has been cut mid-run.  The
#: processor still believes the port is connected — emissions through it
#: are *modeled* as lost characters, not rejected as bugs.
CUT = -2


@dataclass(frozen=True, eq=False)
class CompiledTopology:
    """A frozen :class:`PortGraph` as dense integer tables.

    The dataclass is frozen and compares/hashes by identity (``eq=False``),
    which is exactly what the process-wide cache needs: one artifact per
    wiring, usable as a dict key, never rebound.  Instances handed out by
    :func:`compiled_topology` are **shared** and must be treated as
    read-only; a caller that needs to patch the tables (the dynamic
    engines) takes a private view with :meth:`fork` first.
    """

    num_nodes: int
    delta: int
    stride: int                # slot(node, out_port) = node * stride + out_port
    wire_dst: array            # slot -> destination node, -1 if unconnected
    wire_in_port: array        # slot -> destination in-port, -1 if unconnected
    out_start: array           # CSR offsets into out_ports, length num_nodes + 1
    out_ports: array           # concatenated connected out-ports, ascending per node
    in_start: array            # CSR offsets into in_ports, length num_nodes + 1
    in_ports: array            # concatenated connected in-ports, ascending per node
    # Character-kernel tables (format v3; see repro.sim.characters.CharKernel).
    # ``K = kernel_size(delta)`` codes; never patched, shared by forks as-is.
    char_flags: array = field(default=None, repr=False)     # K predicate masks
    char_family: array = field(default=None, repr=False)    # K family indices
    char_role: array = field(default=None, repr=False)      # K role indices
    char_out_port: array = field(default=None, repr=False)  # K first entries
    char_in_port: array = field(default=None, repr=False)   # K second entries
    char_fill: array = field(default=None, repr=False)      # K*(delta+1) fill map
    char_convert: array = field(default=None, repr=False)   # K*6 convert map
    char_trans: array = field(default=None, repr=False)     # K*(delta+1)*P rows
    #: the shared artifact this view was forked from (``None`` on originals).
    #: A fork's pristine tables double as the patcher's undo record.
    pristine: "CompiledTopology | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        # Derived read-only tables, computed lazily and memoized per shared
        # artifact.  The dataclass is frozen, so the cache dict is installed
        # through object.__setattr__; it never appears in repr/fields.
        object.__setattr__(self, "_derived", {})

    def shifted_in_ports(self, shift: int) -> list[int]:
        """``wire_in_port`` pre-shifted for packed-entry composition.

        Slot ``s`` holds ``in_port << shift`` for a wired slot and ``-1``
        otherwise — exactly the table the flat backends index per hop.  The
        list is computed once per (artifact, shift) and **shared**: static
        engines may alias it directly, mutating engines must take a
        ``list(...)`` copy first.  Forks delegate to their pristine
        original, so every engine over one wiring shares one table.
        """
        base = self.pristine if self.pristine is not None else self
        if base is not self:
            return base.shifted_in_ports(shift)
        derived: dict = self._derived  # type: ignore[attr-defined]
        key = ("in_shift", shift)
        table = derived.get(key)
        if table is None:
            table = derived[key] = [
                (p << shift) if p >= 0 else -1 for p in self.wire_in_port
            ]
        return table

    def fork(self) -> "CompiledTopology":
        """A private copy-on-write view for callers that patch the tables.

        Only the two wire tables are copied (a patch never touches the CSR
        port census, which models power-on port awareness); the fork keeps
        a reference to the pristine original so a :class:`TopologyPatcher`
        can restore slots without copying the base tables again.
        """
        base = self.pristine if self.pristine is not None else self
        return replace(
            base,
            wire_dst=array("q", base.wire_dst),
            wire_in_port=array("q", base.wire_in_port),
            pristine=base,
        )

    # ------------------------------------------------------------------
    # conveniences (cold paths only; the hot loop indexes the arrays)
    # ------------------------------------------------------------------
    def dst_of(self, node: int, out_port: int) -> tuple[int, int] | None:
        """``(dst, in_port)`` for a wired out-port, else ``None``."""
        slot = node * self.stride + out_port
        dst = self.wire_dst[slot]
        if dst < 0:
            return None
        return dst, self.wire_in_port[slot]

    def out_ports_of(self, node: int) -> tuple[int, ...]:
        """Connected out-ports of ``node``, ascending (CSR slice)."""
        return tuple(self.out_ports[self.out_start[node]:self.out_start[node + 1]])

    def in_ports_of(self, node: int) -> tuple[int, ...]:
        """Connected in-ports of ``node``, ascending (CSR slice)."""
        return tuple(self.in_ports[self.in_start[node]:self.in_start[node + 1]])


class TopologyPatcher:
    """Incremental, reversible edits to a :class:`CompiledTopology`.

    Owns the mutation story of the compiled tables: every edit goes through
    :meth:`cut` / :meth:`attach`, which stamp the slot and remember it in
    :attr:`touched` — the free-list of slots that differ from the pristine
    compile.  :meth:`restore` puts one slot back; a slot whose re-attached
    wire equals its base wire drops off the free-list automatically, so
    ``touched`` is always exactly the set of degraded slots (the flat
    dynamic engine keys its per-node fast-path toggling off it).
    """

    def __init__(self, topo: CompiledTopology) -> None:
        if not isinstance(topo.wire_dst, array):
            # mmap-backed artifacts expose read-only memoryview tables; the
            # dynamic engines must fork() before patching (they all do —
            # hitting this means a caller skipped the copy-on-write step).
            raise SimulationError(
                "cannot patch a read-only (mmap-backed) topology; fork() it first"
            )
        self.topo = topo
        # The undo record every restore reads from.  A fork already carries
        # its pristine original (same values, never mutated), so its tables
        # serve as the base without another copy; a directly-compiled
        # topology gets defensive copies, as before.
        if topo.pristine is not None:
            self._base_dst = topo.pristine.wire_dst
            self._base_in = topo.pristine.wire_in_port
        else:
            self._base_dst = array("q", topo.wire_dst)
            self._base_in = array("q", topo.wire_in_port)
        #: slots currently differing from the pristine compile
        self.touched: set[int] = set()

    def slot(self, node: int, out_port: int) -> int:
        return node * self.topo.stride + out_port

    def cut(self, slot: int) -> None:
        """Stamp ``slot`` as cut: emissions lose their character."""
        self.topo.wire_dst[slot] = CUT
        self.topo.wire_in_port[slot] = CUT
        self.touched.add(slot)

    def attach(self, slot: int, dst: int, in_port: int) -> None:
        """Wire ``slot`` to ``(dst, in_port)`` (a heal or an addition)."""
        self.topo.wire_dst[slot] = dst
        self.topo.wire_in_port[slot] = in_port
        if self._base_dst[slot] == dst and self._base_in[slot] == in_port:
            self.touched.discard(slot)  # healed back to the base wiring
        else:
            self.touched.add(slot)

    def restore(self, slot: int) -> None:
        """Put ``slot`` back to its pristine compiled value."""
        self.topo.wire_dst[slot] = self._base_dst[slot]
        self.topo.wire_in_port[slot] = self._base_in[slot]
        self.touched.discard(slot)

    def reset(self) -> None:
        """Restore every touched slot (O(touched), via the free-list)."""
        for slot in list(self.touched):
            self.restore(slot)

    def is_pristine(self, slot: int) -> bool:
        return slot not in self.touched


def compile_topology(graph: PortGraph) -> CompiledTopology:
    """Compile a frozen graph into :class:`CompiledTopology` tables."""
    global _COMPILE_CALLS
    if not graph.frozen:
        raise SimulationError("can only compile a frozen PortGraph")
    _COMPILE_CALLS += 1
    n = graph.num_nodes
    delta = graph.delta
    stride = delta + 1
    wire_dst = array("q", [-1]) * (n * stride)
    wire_in_port = array("q", [-1]) * (n * stride)
    for wire in graph.wires():
        slot = wire.src * stride + wire.out_port
        wire_dst[slot] = wire.dst
        wire_in_port[slot] = wire.in_port

    out_start = array("q", [0]) * (n + 1)
    in_start = array("q", [0]) * (n + 1)
    out_ports = array("q")
    in_ports = array("q")
    for node in range(n):
        out_ports.extend(graph.connected_out_ports(node))
        in_ports.extend(graph.connected_in_ports(node))
        out_start[node + 1] = len(out_ports)
        in_start[node + 1] = len(in_ports)

    kernel = kernel_for(delta)
    return CompiledTopology(
        num_nodes=n,
        delta=delta,
        stride=stride,
        wire_dst=wire_dst,
        wire_in_port=wire_in_port,
        out_start=out_start,
        out_ports=out_ports,
        in_start=in_start,
        in_ports=in_ports,
        char_flags=kernel.char_flags,
        char_family=kernel.char_family,
        char_role=kernel.char_role,
        char_out_port=kernel.char_out_port,
        char_in_port=kernel.char_in_port,
        char_fill=kernel.char_fill,
        char_convert=kernel.char_convert,
        char_trans=kernel.char_trans,
    )


# ----------------------------------------------------------------------
# the process-wide compiled-artifact cache
# ----------------------------------------------------------------------
#: wiring -> compiled artifact, most-recently-used last.  Keyed by the
#: :class:`PortGraph` itself: frozen graphs hash/compare structurally
#: (size, degree bound, exact wire set), so two equal wirings — however
#: they were built — share one compiled artifact.
_COMPILED_CACHE: "OrderedDict[PortGraph, CompiledTopology]" = OrderedDict()

#: Cache bound.  An entry is a few dense ``array('q')`` rows (O(N * delta)
#: ints), so even the cap costs at most a few MB; eviction is LRU.
_COMPILED_CACHE_MAX = 128

#: Times :func:`compile_topology` has actually run in this process.  The
#: artifact-library cold-start contract is asserted against this: a warm
#: library must serve every wiring without a single compile.
_COMPILE_CALLS = 0

#: The on-disk artifact library below the in-memory cache.  ``compile.py``
#: never imports :mod:`repro.store.artifacts` (that module imports *us*);
#: instead the library registers itself here via :func:`_set_artifact_library`
#: when configured, and :func:`_resolve_library` lazily triggers the
#: env-var (``REPRO_ARTIFACTS``) resolution exactly once.
_LIBRARY = None
_LIBRARY_RESOLVED = False


def _set_artifact_library(library) -> None:
    """Install the on-disk tier (called by ``repro.store.artifacts`` only)."""
    global _LIBRARY, _LIBRARY_RESOLVED
    _LIBRARY = library
    _LIBRARY_RESOLVED = True


def _resolve_library():
    """The active on-disk library, resolving ``REPRO_ARTIFACTS`` lazily."""
    if not _LIBRARY_RESOLVED:
        _set_artifact_library(None)  # break recursion if resolution re-enters
        import os

        if os.environ.get("REPRO_ARTIFACTS"):
            from repro.store.artifacts import active_artifact_library

            _set_artifact_library(active_artifact_library())
    return _LIBRARY


def compile_calls() -> int:
    """How many real compiles this process has performed (cache misses)."""
    return _COMPILE_CALLS


def compiled_topology(graph: PortGraph) -> CompiledTopology:
    """The shared compiled artifact for ``graph`` (compile once per wiring).

    Returns the same :class:`CompiledTopology` instance for every frozen
    graph with the same wiring.  Resolution order: in-memory LRU → mmap
    artifact library (when configured) → :func:`compile_topology`, with a
    fresh compile atomically published back to the library so the next
    process mmap-loads it instead.  The shared instance is read-only by
    contract — mutating callers must :meth:`~CompiledTopology.fork` it
    first (the dynamic engines do).
    """
    cache = _COMPILED_CACHE
    topo = cache.get(graph)
    if topo is not None:
        cache.move_to_end(graph)
        return topo
    library = _resolve_library()
    if library is not None:
        topo = library.load(graph)
    if topo is None:
        topo = compile_topology(graph)
        if library is not None:
            library.publish(graph, topo)
    cache[graph] = topo
    if len(cache) > _COMPILED_CACHE_MAX:
        cache.popitem(last=False)
    return topo


def clear_compiled_cache() -> None:
    """Drop every cached compiled artifact (tests, cold-cache baselines)."""
    _COMPILED_CACHE.clear()
