"""Network family generators.

Each generator returns a frozen, strongly-connected
:class:`~repro.topology.portgraph.PortGraph`.  The families cover:

* the paper's motivating scenarios (§1.2.2): one-way radio networks,
  degraded bidirectional networks, satellite constellations;
* classic bounded-degree interconnects used by the HPC community (rings,
  tori, hypercubes, de Bruijn and Kautz graphs) so scaling experiments can
  control ``N`` and ``D`` independently;
* the **Lemma 5.1 family** (``tree_with_loop``): a full binary tree of
  bidirectional edges with a directed loop through a permutation of the
  bottom-level leaves — the family whose ``N^{CN}`` count drives the
  ``Ω(N log N)`` lower bound;
* random strongly-connected digraphs for property-based testing.

All generators are deterministic for a fixed seed.
"""

from __future__ import annotations

import itertools
import random

from repro.errors import TopologyError
from repro.topology.builder import PortGraphBuilder
from repro.topology.portgraph import PortGraph
from repro.topology.properties import is_strongly_connected
from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = [
    "directed_ring",
    "bidirectional_ring",
    "bidirectional_line",
    "de_bruijn",
    "kautz",
    "hypercube",
    "directed_torus",
    "complete_bidirectional",
    "random_strongly_connected",
    "random_regular_digraph",
    "tree_with_loop",
    "tree_with_loop_leaf_count",
    "wrapped_butterfly",
    "shuffle_exchange",
    "ring_of_rings",
    "manhattan_grid",
    "all_families",
]


def directed_ring(n: int) -> PortGraph:
    """A unidirectional cycle ``0 -> 1 -> ... -> n-1 -> 0``.

    The smallest strongly-connected directed network; diameter ``n - 1``.
    This is the worst case for backwards communication: the BCA must route a
    reply all the way around the ring.
    """
    check_positive("n", n)
    b = PortGraphBuilder(n)
    for u in range(n):
        b.connect(u, (u + 1) % n)
    return b.build()


def bidirectional_ring(n: int) -> PortGraph:
    """A cycle with links in both directions; diameter ``n // 2``."""
    check_positive("n", n, minimum=2)
    b = PortGraphBuilder(n)
    for u in range(n):
        b.connect_bidirectional(u, (u + 1) % n)
    return b.build()


def bidirectional_line(n: int) -> PortGraph:
    """A path with links in both directions; diameter ``n - 1``.

    Useful for sweeping ``D`` linearly in ``N`` with tiny degree.
    """
    check_positive("n", n, minimum=2)
    b = PortGraphBuilder(n)
    for u in range(n - 1):
        b.connect_bidirectional(u, u + 1)
    return b.build()


def de_bruijn(symbols: int, word_length: int) -> PortGraph:
    """The de Bruijn digraph ``B(symbols, word_length)``.

    ``symbols ** word_length`` nodes, out-degree = in-degree = ``symbols``,
    diameter exactly ``word_length`` — the canonical family with
    ``D = O(log N)`` at constant degree, which is the regime where the
    paper's protocol is asymptotically optimal (Theorem 5.1).  Contains
    self-loops (at constant words), exercising the protocol's self-loop
    handling.
    """
    check_positive("symbols", symbols, minimum=2)
    check_positive("word_length", word_length)
    n = symbols**word_length
    b = PortGraphBuilder(n, delta=symbols)
    for u in range(n):
        for s in range(symbols):
            v = (u * symbols + s) % n
            b.connect(u, v)
    return b.build()


def kautz(symbols: int, word_length: int) -> PortGraph:
    """The Kautz digraph ``K(symbols, word_length)``.

    ``(symbols + 1) * symbols**word_length`` nodes of degree ``symbols``;
    like de Bruijn but self-loop-free with slightly better diameter per
    node count.  Nodes are words ``a_0 a_1 ... a_wl`` over an alphabet of
    ``symbols + 1`` letters with no two consecutive letters equal; edges
    shift one letter in.
    """
    check_positive("symbols", symbols, minimum=2)
    check_positive("word_length", word_length)
    alphabet = range(symbols + 1)
    words = []
    for word in itertools.product(alphabet, repeat=word_length + 1):
        if all(word[i] != word[i + 1] for i in range(word_length)):
            words.append(word)
    index = {w: i for i, w in enumerate(words)}
    b = PortGraphBuilder(len(words), delta=symbols)
    for word, u in index.items():
        for letter in alphabet:
            if letter == word[-1]:
                continue
            b.connect(u, index[word[1:] + (letter,)])
    return b.build()


def hypercube(dimension: int) -> PortGraph:
    """The ``dimension``-cube with bidirectional links.

    ``2**dimension`` nodes of degree ``dimension``; diameter ``dimension``.
    """
    check_positive("dimension", dimension)
    n = 1 << dimension
    b = PortGraphBuilder(n, delta=max(2, dimension))
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                b.connect_bidirectional(u, v)
    return b.build()


def directed_torus(rows: int, cols: int) -> PortGraph:
    """A unidirectional 2-D torus (wires go right and down only).

    Strongly connected with degree 2 and diameter ``(rows-1) + (cols-1)``
    (you can only wrap forward).  A common NoC-style substrate that gives a
    two-parameter handle on ``N = rows * cols`` and ``D``.
    """
    check_positive("rows", rows, minimum=2)
    check_positive("cols", cols, minimum=2)

    def node(r: int, c: int) -> int:
        return r * cols + c

    b = PortGraphBuilder(rows * cols, delta=2)
    for r in range(rows):
        for c in range(cols):
            b.connect(node(r, c), node(r, (c + 1) % cols))
            b.connect(node(r, c), node((r + 1) % rows, c))
    return b.build()


def complete_bidirectional(n: int) -> PortGraph:
    """The complete graph on ``n`` nodes with links both ways (D = 1).

    Degree grows with ``n`` so this family deliberately stresses the
    ``delta``-dependence of alphabet sizes and port scanning.
    """
    check_positive("n", n, minimum=2)
    b = PortGraphBuilder(n)
    for u in range(n):
        for v in range(u + 1, n):
            b.connect_bidirectional(u, v)
    return b.build()


def random_strongly_connected(
    n: int,
    *,
    extra_edges: int = 0,
    seed: int | random.Random | None = None,
    allow_self_loops: bool = False,
) -> PortGraph:
    """A random strongly-connected digraph.

    Construction: a directed Hamiltonian cycle through a random permutation
    of the nodes (guaranteeing strong connectivity), plus ``extra_edges``
    uniformly random additional wires (skipping duplicates of *ports*, which
    cannot occur by construction, and self-loops unless allowed).  Degree
    bound adapts to the realized degrees.
    """
    check_positive("n", n)
    if extra_edges < 0:
        raise ValueError(f"extra_edges must be >= 0, got {extra_edges}")
    rng = make_rng(seed)
    b = PortGraphBuilder(n)
    order = list(range(n))
    rng.shuffle(order)
    if n == 1:
        b.connect(0, 0)  # the minimal legal network: one self-loop
    else:
        for i in range(n):
            b.connect(order[i], order[(i + 1) % n])
    placed = 0
    attempts = 0
    max_attempts = 50 * (extra_edges + 1)
    while placed < extra_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v and not allow_self_loops:
            continue
        b.connect(u, v)
        placed += 1
    graph = b.build()
    assert is_strongly_connected(graph)
    return graph


def random_regular_digraph(
    n: int,
    degree: int,
    *,
    seed: int | random.Random | None = None,
    max_tries: int = 200,
) -> PortGraph:
    """A random digraph where every node has out-degree = in-degree = ``degree``.

    Built as the union of ``degree`` random permutations (each permutation
    contributes out-degree 1 and in-degree 1 everywhere); resampled until the
    result is strongly connected.  Parallel edges and self-loops may occur —
    both are legal in the model.

    Raises :class:`TopologyError` if no strongly-connected sample is found in
    ``max_tries`` attempts (vanishingly unlikely for ``degree >= 2``).
    """
    check_positive("n", n, minimum=2)
    check_positive("degree", degree, minimum=2)
    rng = make_rng(seed)
    for _ in range(max_tries):
        b = PortGraphBuilder(n, delta=degree)
        for _ in range(degree):
            perm = list(range(n))
            rng.shuffle(perm)
            for u in range(n):
                b.connect(u, perm[u])
        graph = b.build()
        if is_strongly_connected(graph):
            return graph
    raise TopologyError(
        f"no strongly-connected {degree}-regular digraph on {n} nodes found "
        f"in {max_tries} tries"
    )


def tree_with_loop_leaf_count(depth: int) -> int:
    """Number of bottom-level leaves of the Lemma 5.1 tree (``2**depth``)."""
    check_positive("depth", depth)
    return 1 << depth


def tree_with_loop(
    depth: int,
    leaf_order: list[int] | None = None,
    *,
    seed: int | random.Random | None = None,
) -> PortGraph:
    """A member of the paper's Lemma 5.1 lower-bound family.

    A full binary tree of ``depth`` levels below the root, every tree edge
    bidirectional, plus a *directed* simple loop visiting all ``2**depth``
    bottom-level leaves in the order given by ``leaf_order`` (a permutation
    of ``range(2**depth)``; random under ``seed`` when omitted).

    Every member is strongly connected with degree ``<= 5`` (3 tree port
    pairs + loop in + loop out) and diameter ``O(depth) = O(log N)``;
    distinct leaf orders yield (mostly) non-isomorphic topologies, and there
    are ``(2**depth)!`` orders — the counting heart of Lemma 5.1.

    Node ids follow heap layout: root 0, children of ``u`` are ``2u+1`` and
    ``2u+2``; leaves occupy the last ``2**depth`` ids.
    """
    check_positive("depth", depth)
    leaves = 1 << depth
    n = (1 << (depth + 1)) - 1
    if leaf_order is None:
        rng = make_rng(seed)
        leaf_order = list(range(leaves))
        rng.shuffle(leaf_order)
    if sorted(leaf_order) != list(range(leaves)):
        raise TopologyError(
            f"leaf_order must be a permutation of range({leaves})"
        )
    first_leaf = (1 << depth) - 1
    b = PortGraphBuilder(n, delta=5)
    for u in range((1 << depth) - 1):  # internal nodes
        b.connect_bidirectional(u, 2 * u + 1)
        b.connect_bidirectional(u, 2 * u + 2)
    for i in range(leaves):
        src = first_leaf + leaf_order[i]
        dst = first_leaf + leaf_order[(i + 1) % leaves]
        b.connect(src, dst)
    return b.build()


def wrapped_butterfly(dimension: int) -> PortGraph:
    """The directed wrapped butterfly ``WB(dimension)``.

    ``dimension * 2**dimension`` nodes of out-degree 2 (straight and cross
    wires to the next level, levels wrap); strongly connected with diameter
    ``O(dimension) = O(log N)`` — another constant-degree, low-diameter
    family for the Theorem 5.1 optimality regime.  Node ``(level, row)``
    has id ``level * 2**dimension + row``.
    """
    check_positive("dimension", dimension)
    rows = 1 << dimension
    b = PortGraphBuilder(dimension * rows, delta=2)
    for level in range(dimension):
        nxt = (level + 1) % dimension
        for row in range(rows):
            src = level * rows + row
            b.connect(src, nxt * rows + row)                    # straight
            b.connect(src, nxt * rows + (row ^ (1 << level)))   # cross
    return b.build()


def shuffle_exchange(dimension: int) -> PortGraph:
    """The directed shuffle-exchange network on ``2**dimension`` nodes.

    Out-port 1 is the *shuffle* wire (left-rotate the address), out-port 2
    the *exchange* wire (flip the lowest bit).  Degree 2, diameter
    ``O(dimension)``; contains the self-loops at all-zeros/all-ones (the
    shuffle fixes them), exercising self-loop handling at scale.
    """
    check_positive("dimension", dimension)
    n = 1 << dimension
    b = PortGraphBuilder(n, delta=2)
    for u in range(n):
        shuffled = ((u << 1) | (u >> (dimension - 1))) & (n - 1)
        b.connect(u, shuffled)
        b.connect(u, u ^ 1)
    return b.build()


def ring_of_rings(outer: int, inner: int) -> PortGraph:
    """A hierarchical network: a directed ring of ``outer`` gateway nodes,
    each also the entry point of its own directed ring of ``inner`` nodes.

    Models backbone-plus-site topologies (the site rings are only
    reachable through their gateway).  ``outer * inner`` nodes, degree
    ``<= 2``, strongly connected; diameter ``O(outer + inner)``.
    Gateway of site ``s`` is node ``s * inner``.
    """
    check_positive("outer", outer, minimum=2)
    check_positive("inner", inner, minimum=2)
    b = PortGraphBuilder(outer * inner, delta=2)
    for s in range(outer):
        base = s * inner
        for k in range(inner):
            b.connect(base + k, base + (k + 1) % inner)  # site ring
        next_gateway = ((s + 1) % outer) * inner
        b.connect(base, next_gateway)                    # backbone hop
    return b.build()


def manhattan_grid(rows: int, cols: int) -> PortGraph:
    """A Manhattan-street network: a grid of one-way streets.

    Rows alternate east/west, columns alternate north/south (wrapping at
    the edges), like midtown traffic.  Degree 2; strongly connected for
    even ``rows`` and ``cols`` (odd dimensions can strand a direction, so
    they are rejected).  The classic example of a *physically* directed
    communication network.
    """
    check_positive("rows", rows, minimum=2)
    check_positive("cols", cols, minimum=2)
    if rows % 2 or cols % 2:
        raise TopologyError(
            "manhattan_grid needs even rows and cols to be strongly connected"
        )

    def node(r: int, c: int) -> int:
        return r * cols + c

    b = PortGraphBuilder(rows * cols, delta=2)
    for r in range(rows):
        for c in range(cols):
            dc = 1 if r % 2 == 0 else -1       # even rows go east
            b.connect(node(r, c), node(r, (c + dc) % cols))
            dr = 1 if c % 2 == 0 else -1       # even cols go south
            b.connect(node(r, c), node((r + dr) % rows, c))
    return b.build()


def all_families() -> dict[str, "PortGraph"]:
    """A small instance of every family, keyed by name.

    Handy for smoke tests and the E1 correctness sweep.
    """
    return {
        "directed_ring": directed_ring(7),
        "bidirectional_ring": bidirectional_ring(8),
        "bidirectional_line": bidirectional_line(6),
        "de_bruijn": de_bruijn(2, 3),
        "kautz": kautz(2, 2),
        "hypercube": hypercube(3),
        "directed_torus": directed_torus(3, 4),
        "complete_bidirectional": complete_bidirectional(5),
        "random_strongly_connected": random_strongly_connected(
            10, extra_edges=6, seed=7
        ),
        "random_regular_digraph": random_regular_digraph(9, 2, seed=11),
        "tree_with_loop": tree_with_loop(2, seed=3),
        "wrapped_butterfly": wrapped_butterfly(2),
        "shuffle_exchange": shuffle_exchange(3),
        "ring_of_rings": ring_of_rings(3, 3),
        "manhattan_grid": manhattan_grid(4, 4),
    }
