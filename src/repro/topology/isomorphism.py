"""Port-preserving isomorphism between rooted port graphs.

The master computer outputs a port-labeled digraph with its own node names;
"correct recovery" (Theorem 4.1) means this graph and the ground truth are
identical *up to renaming processors*, with every wire's (out-port, in-port)
labels preserved, and the two roots corresponding.

Because an out-port carries at most one wire, a rooted port-preserving
isomorphism is *forced*: starting from ``root1 -> root2``, following out-port
``p`` from matched nodes must lead to matched nodes.  So the check is a
deterministic parallel BFS — no search — and runs in ``O(N * delta)``.
"""

from __future__ import annotations

from collections import deque

from repro.topology.portgraph import PortGraph

__all__ = ["rooted_port_map", "port_isomorphic"]


def rooted_port_map(
    g1: PortGraph, root1: int, g2: PortGraph, root2: int
) -> dict[int, int] | None:
    """The unique root-anchored port isomorphism, or ``None`` if none exists.

    Returns a bijection ``g1 node -> g2 node`` with ``root1 -> root2`` such
    that ``(u, p)`` is wired to ``(v, q)`` in ``g1`` iff
    ``(map[u], p)`` is wired to ``(map[v], q)`` in ``g2``.
    """
    if g1.num_nodes != g2.num_nodes or g1.num_wires != g2.num_wires:
        return None
    mapping: dict[int, int] = {root1: root2}
    reverse: dict[int, int] = {root2: root1}
    queue: deque[int] = deque([root1])
    while queue:
        u1 = queue.popleft()
        u2 = mapping[u1]
        if g1.connected_out_ports(u1) != g2.connected_out_ports(u2):
            return None
        if g1.connected_in_ports(u1) != g2.connected_in_ports(u2):
            return None
        for p in g1.connected_out_ports(u1):
            w1 = g1.out_wire(u1, p)
            w2 = g2.out_wire(u2, p)
            assert w1 is not None and w2 is not None
            if w1.in_port != w2.in_port:
                return None
            v1, v2 = w1.dst, w2.dst
            if v1 in mapping:
                if mapping[v1] != v2:
                    return None
            elif v2 in reverse:
                return None
            else:
                mapping[v1] = v2
                reverse[v2] = v1
                queue.append(v1)
    if len(mapping) != g1.num_nodes:
        # strong connectivity should make this impossible for legal inputs,
        # but a reconstructed map might be missing nodes: not isomorphic.
        return None
    return mapping


def port_isomorphic(g1: PortGraph, root1: int, g2: PortGraph, root2: int) -> bool:
    """Whether the rooted port graphs are identical up to processor renaming."""
    return rooted_port_map(g1, root1, g2, root2) is not None
