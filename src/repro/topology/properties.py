"""Graph-theoretic properties of :class:`~repro.topology.portgraph.PortGraph`.

These are our own implementations (plain BFS) because the simulator must not
depend on networkx; the test suite cross-checks them against networkx.

``D`` in the paper is the *directed* diameter: the maximum over ordered pairs
``(u, v)`` of the shortest directed path length from ``u`` to ``v``.  For a
strongly-connected graph this is finite.
"""

from __future__ import annotations

from collections import deque

from repro.errors import NotStronglyConnectedError
from repro.topology.portgraph import PortGraph

__all__ = [
    "bfs_distances",
    "edges_strongly_connected",
    "is_strongly_connected",
    "eccentricity",
    "diameter",
    "shortest_path_ports",
]


def bfs_distances(graph: PortGraph, source: int) -> list[int]:
    """Hop distances from ``source`` to every node (``-1`` if unreachable)."""
    dist = [-1] * graph.num_nodes
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for wire in graph.successors(u):
            if dist[wire.dst] < 0:
                dist[wire.dst] = dist[u] + 1
                queue.append(wire.dst)
    return dist


def is_strongly_connected(graph: PortGraph) -> bool:
    """Whether every node reaches every other node along directed wires.

    Checked as: all nodes reachable from node 0, and node 0 reachable from
    all nodes (BFS on the reversed graph).
    """
    if graph.num_nodes == 1:
        return True
    if any(d < 0 for d in bfs_distances(graph, 0)):
        return False
    # reverse reachability to node 0
    rev: list[list[int]] = [[] for _ in range(graph.num_nodes)]
    for wire in graph.wires():
        rev[wire.dst].append(wire.src)
    seen = [False] * graph.num_nodes
    seen[0] = True
    queue: deque[int] = deque([0])
    count = 1
    while queue:
        u = queue.popleft()
        for v in rev[u]:
            if not seen[v]:
                seen[v] = True
                count += 1
                queue.append(v)
    return count == graph.num_nodes


def edges_strongly_connected(num_nodes: int, edges) -> bool:
    """:func:`is_strongly_connected` over a raw ``(src, dst)`` edge iterable.

    The timeline fault generators probe many candidate wire removals per
    wave; this variant answers the connectivity question without
    constructing (and freezing) a throwaway :class:`PortGraph` per probe.
    """
    if num_nodes == 1:
        return True
    fwd: list[list[int]] = [[] for _ in range(num_nodes)]
    rev: list[list[int]] = [[] for _ in range(num_nodes)]
    for src, dst in edges:
        fwd[src].append(dst)
        rev[dst].append(src)
    for adjacency in (fwd, rev):
        seen = [False] * num_nodes
        seen[0] = True
        queue: deque[int] = deque([0])
        count = 1
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    queue.append(v)
        if count != num_nodes:
            return False
    return True


def eccentricity(graph: PortGraph, source: int) -> int:
    """Longest shortest-path distance from ``source``.

    Raises :class:`NotStronglyConnectedError` if some node is unreachable.
    """
    dist = bfs_distances(graph, source)
    if min(dist) < 0:
        raise NotStronglyConnectedError(
            f"node {dist.index(-1)} unreachable from {source}"
        )
    return max(dist)


def diameter(graph: PortGraph) -> int:
    """The directed diameter ``D`` (max eccentricity over all sources)."""
    return max(eccentricity(graph, u) for u in graph.nodes())


def shortest_path_ports(
    graph: PortGraph, source: int, target: int
) -> list[tuple[int, int]] | None:
    """One BFS shortest path from ``source`` to ``target`` as (out, in) hops.

    The hop list has the same form as the canonical paths carried by snakes:
    element ``k`` is ``(out-port used at the k-th node, in-port entered at
    the (k+1)-th node)``.  Ties are broken toward *lower out-port numbers*,
    which matches the deterministic flood order of the protocol (a snake is
    broadcast through every out-port simultaneously; the tie that matters,
    simultaneous head arrival, is broken by lowest in-port at the receiver —
    this helper is only used for diagnostics and tests, not by the protocol).

    Returns ``None`` when ``target`` is unreachable; the empty list when
    ``source == target``.
    """
    if source == target:
        return []
    prev: dict[int, tuple[int, int, int]] = {}  # node -> (pred, out, in)
    dist = [-1] * graph.num_nodes
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for wire in graph.successors(u):
            if dist[wire.dst] < 0:
                dist[wire.dst] = dist[u] + 1
                prev[wire.dst] = (u, wire.out_port, wire.in_port)
                if wire.dst == target:
                    queue.clear()
                    break
                queue.append(wire.dst)
    if dist[target] < 0:
        return None
    hops: list[tuple[int, int]] = []
    node = target
    while node != source:
        pred, out_port, in_port = prev[node]
        hops.append((out_port, in_port))
        node = pred
    hops.reverse()
    return hops
