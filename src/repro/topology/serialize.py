"""Serialization of port graphs: JSON round-trip and Graphviz DOT export."""

from __future__ import annotations

import json
from typing import Any

from repro.errors import TopologyError
from repro.topology.portgraph import PortGraph

__all__ = ["to_json", "from_json", "to_dot"]

_FORMAT = "repro.portgraph/v1"


def to_json(graph: PortGraph, *, indent: int | None = None) -> str:
    """Serialize ``graph`` to a JSON string (stable wire order)."""
    doc: dict[str, Any] = {
        "format": _FORMAT,
        "num_nodes": graph.num_nodes,
        "delta": graph.delta,
        "wires": [
            {"src": w.src, "out_port": w.out_port, "dst": w.dst, "in_port": w.in_port}
            for w in graph.wires()
        ],
    }
    return json.dumps(doc, indent=indent)


def from_json(text: str) -> PortGraph:
    """Parse a graph serialized by :func:`to_json` (returns it frozen)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TopologyError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise TopologyError(f"not a {_FORMAT} document")
    try:
        graph = PortGraph(int(doc["num_nodes"]), int(doc["delta"]))
        for w in doc["wires"]:
            graph.add_wire(
                int(w["src"]), int(w["out_port"]), int(w["dst"]), int(w["in_port"])
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise TopologyError(f"malformed portgraph document: {exc}") from exc
    return graph.freeze()


def to_dot(graph: PortGraph, *, name: str = "network", root: int | None = None) -> str:
    """Render ``graph`` as Graphviz DOT with port labels on edges.

    Edge label ``o:i`` means "out of out-port o, into in-port i", the paper's
    FORWARD-token convention.  The optional ``root`` is drawn doubled.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for u in graph.nodes():
        shape = "doublecircle" if u == root else "circle"
        lines.append(f'  n{u} [label="{u}", shape={shape}];')
    for w in graph.wires():
        lines.append(f'  n{w.src} -> n{w.dst} [label="{w.out_port}:{w.in_port}"];')
    lines.append("}")
    return "\n".join(lines)
