"""Fault injection: port-shutdown failures.

The paper motivates general directed networks partly as *bidirectional
networks with in-port or out-port shutdown failures at individual
processors* (§1.2.2).  These helpers produce such degraded networks: start
from a healthy (typically bidirectional) graph, kill a random subset of
wires, and keep the result only if it is still a legal, strongly-connected
network — exactly the population on which a topology-mapping protocol would
be deployed after partial failures.
"""

from __future__ import annotations

import random

from repro.errors import TopologyError
from repro.topology.portgraph import PortGraph, Wire
from repro.topology.properties import is_strongly_connected
from repro.util.rng import make_rng

__all__ = ["remove_wires", "shutdown_out_ports", "degrade_bidirectional"]


def remove_wires(graph: PortGraph, dead: set[Wire]) -> PortGraph:
    """A copy of ``graph`` without the wires in ``dead`` (same ports kept).

    Raises :class:`TopologyError` if a processor would lose its last in- or
    out-port (the model requires at least one of each).
    """
    survivor = PortGraph(graph.num_nodes, graph.delta)
    for wire in graph.wires():
        if wire not in dead:
            survivor.add_wire(wire.src, wire.out_port, wire.dst, wire.in_port)
    return survivor.freeze()


def shutdown_out_ports(
    graph: PortGraph,
    failure_rate: float,
    *,
    seed: int | random.Random | None = None,
    require_strongly_connected: bool = True,
    max_tries: int = 100,
) -> PortGraph:
    """Kill each wire independently with probability ``failure_rate``.

    Retries up to ``max_tries`` fault patterns until the degraded network is
    still legal (and strongly connected when required); raises
    :class:`TopologyError` otherwise.  Deterministic per seed.
    """
    if not 0.0 <= failure_rate < 1.0:
        raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
    rng = make_rng(seed)
    for _ in range(max_tries):
        dead = {w for w in graph.wires() if rng.random() < failure_rate}
        try:
            degraded = remove_wires(graph, dead)
        except TopologyError:
            continue
        if not require_strongly_connected or is_strongly_connected(degraded):
            return degraded
    raise TopologyError(
        f"no legal degraded network found at failure_rate={failure_rate} "
        f"after {max_tries} tries"
    )


def degrade_bidirectional(
    graph: PortGraph,
    one_way_fraction: float,
    *,
    seed: int | random.Random | None = None,
    max_tries: int = 100,
) -> PortGraph:
    """Turn a fraction of bidirectional links into one-way links.

    For each opposed wire pair ``u->v`` / ``v->u``, with probability
    ``one_way_fraction`` one random direction is shut down.  This is the
    paper's "bidirectional network with shutdown failures" scenario and the
    workload of the ``degraded_datacenter`` example.  Retries until strongly
    connected.
    """
    if not 0.0 <= one_way_fraction <= 1.0:
        raise ValueError(
            f"one_way_fraction must be in [0, 1], got {one_way_fraction}"
        )
    pairs: dict[tuple[int, int], list[Wire]] = {}
    for wire in graph.wires():
        pairs.setdefault((min(wire.src, wire.dst), max(wire.src, wire.dst)), []).append(
            wire
        )
    rng = make_rng(seed)
    for _ in range(max_tries):
        dead: set[Wire] = set()
        for key, wires in pairs.items():
            if len(wires) < 2:
                continue
            forward = [w for w in wires if w.src == key[0]]
            backward = [w for w in wires if w.src == key[1]]
            if forward and backward and rng.random() < one_way_fraction:
                dead.add(rng.choice(forward + backward))
        try:
            degraded = remove_wires(graph, dead)
        except TopologyError:
            continue
        if is_strongly_connected(degraded):
            return degraded
    raise TopologyError(
        f"no strongly-connected degraded network at "
        f"one_way_fraction={one_way_fraction} after {max_tries} tries"
    )
