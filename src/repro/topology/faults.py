"""Fault injection: port-shutdown failures and timeline wire waves.

The paper motivates general directed networks partly as *bidirectional
networks with in-port or out-port shutdown failures at individual
processors* (§1.2.2).  These helpers produce such degraded networks: start
from a healthy (typically bidirectional) graph, kill a random subset of
wires, and keep the result only if it is still a legal, strongly-connected
network — exactly the population on which a topology-mapping protocol would
be deployed after partial failures.

Beyond the static pre-run generators, this module is the sampling layer of
the perturbation-timeline subsystem (:mod:`repro.dynamics.timeline`): a
:class:`WireState` tracks the evolving wiring while a timeline is lowered
to concrete wire operations, and the wave samplers (:func:`sample_cut_wave`,
:func:`frontier_targets`, :func:`pick_cut_victim`, :func:`pick_free_wire`)
choose *legal* victims — a sampled cut never strands a processor without an
in- or out-port and, under the default policy, never disconnects the
network.  Every stochastic choice draws from a :func:`repro.util.rng.make_rng`
generator, so a fault pattern is a pure function of its seed — identical in
every worker process and interpreter invocation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TopologyError
from repro.topology.portgraph import PortGraph, Wire
from repro.topology.properties import (
    edges_strongly_connected,
    is_strongly_connected,
)
from repro.util.rng import Seed, make_rng

__all__ = [
    "remove_wires",
    "shutdown_out_ports",
    "degrade_bidirectional",
    "WireState",
    "pick_cut_victim",
    "pick_free_wire",
    "sample_cut_wave",
    "frontier_targets",
    "apply_wire_events",
]


def remove_wires(graph: PortGraph, dead: set[Wire]) -> PortGraph:
    """A copy of ``graph`` without the wires in ``dead`` (same ports kept).

    Raises :class:`TopologyError` if a processor would lose its last in- or
    out-port (the model requires at least one of each).
    """
    survivor = PortGraph(graph.num_nodes, graph.delta)
    for wire in graph.wires():
        if wire not in dead:
            survivor.add_wire(wire.src, wire.out_port, wire.dst, wire.in_port)
    return survivor.freeze()


def shutdown_out_ports(
    graph: PortGraph,
    failure_rate: float,
    *,
    seed: Seed = None,
    require_strongly_connected: bool = True,
    max_tries: int = 100,
) -> PortGraph:
    """Kill each wire independently with probability ``failure_rate``.

    Retries up to ``max_tries`` fault patterns until the degraded network is
    still legal (and strongly connected when required); raises
    :class:`TopologyError` otherwise.  Deterministic per seed.
    """
    if not 0.0 <= failure_rate < 1.0:
        raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
    rng = make_rng(seed)
    for _ in range(max_tries):
        dead = {w for w in graph.wires() if rng.random() < failure_rate}
        try:
            degraded = remove_wires(graph, dead)
        except TopologyError:
            continue
        if not require_strongly_connected or is_strongly_connected(degraded):
            return degraded
    raise TopologyError(
        f"no legal degraded network found at failure_rate={failure_rate} "
        f"after {max_tries} tries"
    )


def degrade_bidirectional(
    graph: PortGraph,
    one_way_fraction: float,
    *,
    seed: Seed = None,
    max_tries: int = 100,
) -> PortGraph:
    """Turn a fraction of bidirectional links into one-way links.

    For each opposed wire pair ``u->v`` / ``v->u``, with probability
    ``one_way_fraction`` one random direction is shut down.  This is the
    paper's "bidirectional network with shutdown failures" scenario and the
    workload of the ``degraded_datacenter`` example.  Retries until strongly
    connected.
    """
    if not 0.0 <= one_way_fraction <= 1.0:
        raise ValueError(
            f"one_way_fraction must be in [0, 1], got {one_way_fraction}"
        )
    pairs: dict[tuple[int, int], list[Wire]] = {}
    for wire in graph.wires():
        pairs.setdefault((min(wire.src, wire.dst), max(wire.src, wire.dst)), []).append(
            wire
        )
    rng = make_rng(seed)
    for _ in range(max_tries):
        dead: set[Wire] = set()
        for key, wires in pairs.items():
            if len(wires) < 2:
                continue
            forward = [w for w in wires if w.src == key[0]]
            backward = [w for w in wires if w.src == key[1]]
            if forward and backward and rng.random() < one_way_fraction:
                dead.add(rng.choice(forward + backward))
        try:
            degraded = remove_wires(graph, dead)
        except TopologyError:
            continue
        if is_strongly_connected(degraded):
            return degraded
    raise TopologyError(
        f"no strongly-connected degraded network at "
        f"one_way_fraction={one_way_fraction} after {max_tries} tries"
    )


# ----------------------------------------------------------------------
# single-victim pickers (one mid-run cut / one mid-run addition)
# ----------------------------------------------------------------------
def pick_cut_victim(graph: PortGraph, rng) -> Wire:
    """A deterministic-per-seed wire whose cut keeps every node legal.

    This is the sampler behind the legacy ``cut:T`` fault model; its draw
    sequence is part of the stored-result contract (the same scenario must
    pick the same victim forever), so it stays exactly one ``randrange``
    over the degree-legal candidates, in wire insertion order.
    """
    candidates = [
        w
        for w in graph.wires()
        if graph.out_degree(w.src) > 1 and graph.in_degree(w.dst) > 1
    ]
    if not candidates:
        raise TopologyError("no wire can be cut without making the network illegal")
    return candidates[rng.randrange(len(candidates))]


def pick_free_wire(graph: PortGraph, rng) -> Wire:
    """A deterministic-per-seed new wire between free ports.

    The sampler behind the legacy ``add:T`` fault model (same draw-sequence
    contract as :func:`pick_cut_victim`).
    """
    all_ports = set(range(1, graph.delta + 1))
    srcs = [
        (node, min(free))
        for node in graph.nodes()
        if (free := all_ports - set(graph.connected_out_ports(node)))
    ]
    dsts = [
        (node, min(free))
        for node in graph.nodes()
        if (free := all_ports - set(graph.connected_in_ports(node)))
    ]
    if not srcs or not dsts:
        raise TopologyError(
            "no free ports for an 'add' fault; use a family with spare ports "
            "(e.g. 'spare-ring')"
        )
    src, out_port = srcs[rng.randrange(len(srcs))]
    dst, in_port = dsts[rng.randrange(len(dsts))]
    return Wire(src, out_port, dst, in_port)


# ----------------------------------------------------------------------
# evolving-wiring state for timeline lowering
# ----------------------------------------------------------------------
class WireState:
    """The wiring of a network as a timeline mutates it, with legality checks.

    Tracks the set of present wires (base wires minus cuts plus additions),
    per-node degrees, and which base wires are currently down (the heal
    candidates).  All queries are deterministic: candidate enumerations
    follow base-graph wire insertion order, then addition order.

    ``keep_connected`` (default True) makes :meth:`can_cut` reject any cut
    that would disconnect the network, so every intermediate wiring a
    compiled timeline visits is a legal, strongly-connected
    :class:`PortGraph` — mid-run damage comes from lost characters and
    stale port knowledge, never from an unmappable network.
    """

    def __init__(self, graph: PortGraph, *, keep_connected: bool = True) -> None:
        self.graph = graph
        self.keep_connected = keep_connected
        #: (src, out_port) -> Wire, every wire currently present
        self.present: dict[tuple[int, int], Wire] = {
            (w.src, w.out_port): w for w in graph.wires()
        }
        #: (dst, in_port) occupancy mirror of :attr:`present`
        self.in_use: dict[tuple[int, int], Wire] = {
            (w.dst, w.in_port): w for w in graph.wires()
        }
        #: base wires currently down, in cut order (heal candidates)
        self.down: dict[tuple[int, int], Wire] = {}
        self.out_deg = [graph.out_degree(u) for u in graph.nodes()]
        self.in_deg = [graph.in_degree(u) for u in graph.nodes()]

    # -- queries ---------------------------------------------------------
    def wires(self) -> Iterator[Wire]:
        """Present wires: base order first, additions in attach order."""
        return iter(self.present.values())

    def can_cut(self, wire: Wire) -> bool:
        """Whether cutting ``wire`` keeps the network legal (and connected)."""
        if self.present.get((wire.src, wire.out_port)) != wire:
            return False
        if self.out_deg[wire.src] <= 1 or self.in_deg[wire.dst] <= 1:
            return False
        if self.keep_connected:
            return edges_strongly_connected(
                self.graph.num_nodes,
                (
                    (w.src, w.dst)
                    for w in self.present.values()
                    if w is not wire
                ),
            )
        return True

    def can_attach(self, wire: Wire) -> bool:
        """Whether both endpoint ports of ``wire`` are currently free."""
        return (
            (wire.src, wire.out_port) not in self.present
            and (wire.dst, wire.in_port) not in self.in_use
        )

    def heal_candidates(self) -> list[Wire]:
        """Base wires currently down whose ports are still free, cut order."""
        return [w for w in self.down.values() if self.can_attach(w)]

    # -- transitions -----------------------------------------------------
    def cut(self, wire: Wire) -> None:
        key = (wire.src, wire.out_port)
        if self.present.get(key) != wire:
            raise TopologyError(f"cannot cut absent wire {wire}")
        del self.present[key]
        del self.in_use[(wire.dst, wire.in_port)]
        self.out_deg[wire.src] -= 1
        self.in_deg[wire.dst] -= 1
        if self.graph.out_wire(wire.src, wire.out_port) == wire:
            self.down[key] = wire

    def attach(self, wire: Wire) -> None:
        if not self.can_attach(wire):
            raise TopologyError(f"ports of {wire} are not free")
        key = (wire.src, wire.out_port)
        self.present[key] = wire
        self.in_use[(wire.dst, wire.in_port)] = wire
        self.out_deg[wire.src] += 1
        self.in_deg[wire.dst] += 1
        # only a heal of the downed base wire itself clears it from the
        # heal-candidate set; an *added* wire borrowing the out-port keeps
        # the base wire healable for after the addition is cut again
        # (heal_candidates filters occupied ports through can_attach)
        if self.down.get(key) == wire:
            del self.down[key]

    def snapshot(self) -> PortGraph:
        """The current wiring as a frozen :class:`PortGraph`.

        Raises :class:`TopologyError` if the state is not a legal network
        (cannot happen through the legality-checked samplers).
        """
        current = PortGraph(self.graph.num_nodes, self.graph.delta)
        for wire in self.present.values():
            current.add_wire(wire.src, wire.out_port, wire.dst, wire.in_port)
        return current.freeze()


def sample_cut_wave(state: WireState, rate: float, rng) -> list[Wire]:
    """One shutdown wave: each present wire dies with probability ``rate``.

    Draws one uniform variate per present wire (in deterministic order)
    *before* filtering for legality, so the random stream does not depend
    on which earlier victims survived the legality check; illegal victims
    are then skipped in order.  Returns the cut wires (already applied to
    ``state``).
    """
    marked = [w for w in list(state.wires()) if rng.random() < rate]
    cut: list[Wire] = []
    for wire in marked:
        if state.can_cut(wire):
            state.cut(wire)
            cut.append(wire)
    return cut


def frontier_targets(state: WireState, root: int, k: int) -> list[Wire]:
    """The ``k`` legally-cuttable wires farthest from ``root``, by BFS depth.

    An adversarial choice: the DFS of the mapping protocol explores outward
    from the root, so at any moment the deep wires are the ones its
    frontier is touching — cutting them maximizes the chance the probe (or
    its answer) is lost.  Deterministic: depth descending, ties by base
    wire order.  Returns the cut wires (already applied to ``state``).
    """
    successors: list[list[int]] = [[] for _ in range(state.graph.num_nodes)]
    for wire in state.present.values():
        successors[wire.src].append(wire.dst)
    depth = [-1] * state.graph.num_nodes
    depth[root] = 0
    frontier = [root]
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            for dst in successors[u]:
                if depth[dst] < 0:
                    depth[dst] = depth[u] + 1
                    nxt.append(dst)
        frontier = nxt
    ranked = sorted(
        enumerate(state.wires()),
        key=lambda pair: (-(depth[pair[1].src] + 1), pair[0]),
    )
    cut: list[Wire] = []
    for _, wire in ranked:
        if len(cut) >= k:
            break
        if state.can_cut(wire):
            state.cut(wire)
            cut.append(wire)
    return cut


def apply_wire_events(
    graph: PortGraph, events: Iterable[tuple[str, Wire]]
) -> PortGraph:
    """Replay ``(kind, wire)`` events over ``graph``; return the final wiring.

    ``kind`` is ``"cut"`` (wire must be present), or ``"add"`` / ``"heal"``
    (both ports must be free).  Raises :class:`TopologyError` on any illegal
    step or if the final wiring is not a legal network — a fault program can
    be infeasible, but it can never *silently* produce an illegal graph.
    """
    state = WireState(graph, keep_connected=False)
    for kind, wire in events:
        if kind == "cut":
            state.cut(wire)
        elif kind in ("add", "heal"):
            state.attach(wire)
        else:
            raise TopologyError(f"unknown wire event kind {kind!r}")
    return state.snapshot()
