"""Benchmark baselines: recorded performance snapshots and their diffing.

A *baseline* is a small committed JSON document — one per experiment —
holding named scalar metrics with a direction (``"higher"`` is better for
throughput, ``"lower"`` for wall time or tick counts).  The benchmark
drivers write fresh snapshots of the same shape into ``benchmarks/out/``
on every run; :func:`compare_baselines` diffs a fresh snapshot against the
committed one with a relative threshold, and the ``repro-topology
bench-compare`` command turns the diff into an exit code CI can gate on.

The threshold is *relative slack*, not a target, and it is direction-
symmetric: the better/worse quotient (``fresh/baseline`` for "higher"
metrics, ``baseline/fresh`` for "lower" ones) must stay above
``1 - threshold`` — with ``threshold=0.35``, throughput regresses when it
drops below 65% of baseline and a tick count regresses when it grows past
~1.54x.  Wall-clock metrics need generous slack (CI machines differ);
simulated-tick metrics are deterministic and tolerate tight ones.

Metrics present in the baseline but absent from the fresh run are reported
as ``skipped`` rather than failed — CI intentionally runs subsets (the E13
smoke job excludes the large case) and a partial fresh run must still gate
the metrics it *did* produce.  Use ``--require-all`` to harden this.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import BaselineError
from repro.util.tables import format_table

__all__ = [
    "BASELINE_FORMAT",
    "Metric",
    "write_baseline",
    "record_metric",
    "load_baseline",
    "MetricComparison",
    "ComparisonReport",
    "compare_baselines",
    "compare_files",
]

#: Format tag stamped into every baseline document.
BASELINE_FORMAT = "repro.bench-baseline/v1"

_DIRECTIONS = ("higher", "lower")


@dataclass(frozen=True)
class Metric:
    """One recorded scalar: its value and which way "better" points."""

    value: float
    direction: str = "higher"
    unit: str = ""

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise BaselineError(
                f"metric direction must be one of {_DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        if not math.isfinite(self.value):
            raise BaselineError(f"metric value must be finite, got {self.value!r}")


# ----------------------------------------------------------------------
# reading and writing baseline documents
# ----------------------------------------------------------------------
def _to_doc(experiment: str, metrics: dict[str, Metric], meta: dict | None) -> dict:
    return {
        "format": BASELINE_FORMAT,
        "experiment": experiment,
        "metrics": {
            name: {"value": m.value, "direction": m.direction, "unit": m.unit}
            for name, m in metrics.items()
        },
        "meta": meta or {},
    }


def _metrics_of(doc: dict) -> dict[str, Metric]:
    out = {}
    for name, raw in doc["metrics"].items():
        try:
            out[name] = Metric(
                value=float(raw["value"]),
                direction=raw.get("direction", "higher"),
                unit=raw.get("unit", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(f"malformed metric {name!r}: {exc}") from exc
    return out


def load_baseline(path: str | os.PathLike) -> dict:
    """Read and validate a baseline document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise BaselineError(f"no baseline file at {path}") from None
    except json.JSONDecodeError as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != BASELINE_FORMAT:
        raise BaselineError(
            f"{path} is not a {BASELINE_FORMAT} document "
            f"(found {doc.get('format') if isinstance(doc, dict) else type(doc)!r})"
        )
    if not isinstance(doc.get("metrics"), dict):
        raise BaselineError(f"{path} has no metrics mapping")
    _metrics_of(doc)  # validates eagerly
    return doc


def write_baseline(
    path: str | os.PathLike,
    experiment: str,
    metrics: dict[str, Metric],
    *,
    meta: dict | None = None,
) -> None:
    """Write a complete baseline document (pretty-printed, stable order)."""
    doc = _to_doc(experiment, metrics, meta)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def record_metric(
    path: str | os.PathLike,
    experiment: str,
    name: str,
    value: float,
    *,
    direction: str = "higher",
    unit: str = "",
    meta: dict | None = None,
) -> None:
    """Merge one metric into the snapshot at ``path``, creating it if needed.

    The benchmark drivers call this once per measured quantity; tests of
    one module accumulate into a single ``BENCH_<experiment>.json``.  A
    file from a different experiment (or an older format) is replaced
    outright rather than merged into.
    """
    path = Path(path)
    try:
        doc = load_baseline(path)
        if doc.get("experiment") != experiment:
            raise BaselineError("experiment changed")
        metrics = _metrics_of(doc)
        merged_meta = {**doc.get("meta", {}), **(meta or {})}
    except BaselineError:
        metrics = {}
        merged_meta = dict(meta or {})
    metrics[name] = Metric(value=value, direction=direction, unit=unit)
    path.parent.mkdir(parents=True, exist_ok=True)
    write_baseline(path, experiment, metrics, meta=merged_meta)


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricComparison:
    """One metric's verdict: baseline vs fresh under the threshold."""

    name: str
    direction: str
    baseline: float
    fresh: float | None
    status: str  # "ok" | "improved" | "regression" | "skipped"

    @property
    def ratio(self) -> float | None:
        """fresh / baseline (``None`` when skipped or baseline is 0)."""
        if self.fresh is None or self.baseline == 0:
            return None
        return self.fresh / self.baseline


@dataclass
class ComparisonReport:
    """The full diff of a fresh snapshot against a baseline."""

    experiment: str
    threshold: float
    rows: list[MetricComparison] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricComparison]:
        return [row for row in self.rows if row.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        """A paper-style verdict table."""
        table = [
            (
                row.name,
                row.direction,
                f"{row.baseline:g}",
                "-" if row.fresh is None else f"{row.fresh:g}",
                "-" if row.ratio is None else f"{row.ratio:.2f}x",
                row.status.upper() if row.status == "regression" else row.status,
            )
            for row in self.rows
        ]
        verdict = "PASS" if self.ok else f"FAIL ({len(self.regressions)} regressed)"
        return format_table(
            ["metric", "better", "baseline", "fresh", "ratio", "status"],
            table,
            title=(
                f"bench-compare [{self.experiment}] "
                f"threshold {self.threshold:.0%}: {verdict}"
            ),
        )


def compare_baselines(
    baseline_doc: dict,
    fresh_doc: dict,
    *,
    threshold: float,
    require_all: bool = False,
) -> ComparisonReport:
    """Diff two baseline documents metric by metric.

    Every metric of ``baseline_doc`` is judged against its fresh value:
    worse by more than ``threshold`` (relative, direction-aware) is a
    regression, better by more than ``threshold`` is flagged ``improved``
    (a hint to re-record the baseline), anything else is ``ok``.  Fresh
    metrics with no baseline counterpart are ignored — they gate nothing
    until recorded.
    """
    if not 0.0 <= threshold < 1.0:
        raise BaselineError(f"threshold must be in [0, 1), got {threshold}")
    if baseline_doc.get("experiment") != fresh_doc.get("experiment"):
        raise BaselineError(
            f"experiment mismatch: baseline is "
            f"{baseline_doc.get('experiment')!r}, fresh is "
            f"{fresh_doc.get('experiment')!r}"
        )
    base_metrics = _metrics_of(baseline_doc)
    fresh_metrics = _metrics_of(fresh_doc)
    report = ComparisonReport(
        experiment=str(baseline_doc.get("experiment")), threshold=threshold
    )
    for name in sorted(base_metrics):
        base = base_metrics[name]
        fresh = fresh_metrics.get(name)
        if fresh is None:
            status = "regression" if require_all else "skipped"
            report.rows.append(
                MetricComparison(name, base.direction, base.value, None, status)
            )
            continue
        if base.value == 0:
            # A zero baseline cannot anchor a relative threshold; any
            # nonzero fresh value in the bad direction regresses.
            if base.direction == "higher":
                worse = fresh.value < 0
            else:
                worse = fresh.value > 0
            status = "regression" if worse else "ok"
        elif base.direction == "lower" and fresh.value == 0:
            # A cost metric hitting zero is a perfect score; the inverted
            # quotient below would divide by zero on it.
            status = "improved"
        else:
            ratio = fresh.value / base.value
            if base.direction == "lower":
                ratio = 1.0 / ratio
            # From here "higher is better": ratio < 1 means worse.
            if ratio < 1.0 - threshold:
                status = "regression"
            elif ratio > 1.0 + threshold:
                status = "improved"
            else:
                status = "ok"
        report.rows.append(
            MetricComparison(name, base.direction, base.value, fresh.value, status)
        )
    return report


def compare_files(
    baseline_path: str | os.PathLike,
    fresh_path: str | os.PathLike,
    *,
    threshold: float,
    require_all: bool = False,
) -> ComparisonReport:
    """File-level convenience wrapper used by the CLI."""
    return compare_baselines(
        load_baseline(baseline_path),
        load_baseline(fresh_path),
        threshold=threshold,
        require_all=require_all,
    )
