"""Performance tracking: benchmark baselines and regression comparison.

The E-series drivers under ``benchmarks/`` snapshot their headline numbers
(throughput, tick totals, scaling constants) into baseline JSON documents;
committed ``benchmarks/baselines/BENCH_*.json`` files pin the expected
trajectory, and ``repro-topology bench-compare`` diffs a fresh snapshot
against them so CI fails on real slowdowns instead of taking speed claims
on faith.  See :mod:`repro.bench.baseline` for the document format and the
threshold semantics.
"""

from repro.bench.baseline import (
    BASELINE_FORMAT,
    ComparisonReport,
    Metric,
    MetricComparison,
    compare_baselines,
    compare_files,
    load_baseline,
    record_metric,
    write_baseline,
)

__all__ = [
    "BASELINE_FORMAT",
    "ComparisonReport",
    "Metric",
    "MetricComparison",
    "compare_baselines",
    "compare_files",
    "load_baseline",
    "record_metric",
    "write_baseline",
]
