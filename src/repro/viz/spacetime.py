"""ASCII space-time diagrams: watch snakes crawl and KILL tokens hunt.

Rows are global clock ticks, columns are processors; each cell shows the
most interesting character delivered to that processor that tick.  On line
and ring networks this renders the paper's constructions exactly the way
the classic FSSP literature draws them — growing snakes as diagonal
streaks (slope 3, speed-1), KILL wavefronts as steeper diagonals (slope 1,
speed-3) that visibly overtake them.

Priority when several characters land on the same cell in one tick:
KILL > UNMARK > dying > tokens > growing heads > growing bodies/tails.
"""

from __future__ import annotations

from repro.sim.characters import Char, is_dying, is_growing, snake_role
from repro.sim.tracer import EventTrace

__all__ = ["render_spacetime", "GLYPHS"]

#: cell glyphs by character class
GLYPHS = {
    "KILL": "K",
    "UNMARK": "u",
    "FWD": "F",
    "BACK": "R",
    "BDONE": "d",
    "DFS": "D",
    "dying_head": "x",
    "dying": "X",
    "growing_head": "o",
    "growing": "|",
    "idle": ".",
}


def _glyph_and_priority(char: Char) -> tuple[str, int]:
    if char.kind == "KILL":
        return GLYPHS["KILL"], 0
    if char.kind == "UNMARK":
        return GLYPHS["UNMARK"], 1
    if is_dying(char):
        if snake_role(char) == "H":
            return GLYPHS["dying_head"], 2
        return GLYPHS["dying"], 3
    if char.kind in ("FWD", "BACK", "BDONE", "DFS"):
        return GLYPHS[char.kind], 4
    if is_growing(char):
        if snake_role(char) == "H":
            return GLYPHS["growing_head"], 5
        return GLYPHS["growing"], 6
    return "?", 7


def render_spacetime(
    trace: EventTrace,
    num_nodes: int,
    *,
    start_tick: int | None = None,
    end_tick: int | None = None,
    max_rows: int = 200,
    node_order: list[int] | None = None,
) -> str:
    """Render the delivery trace as a tick-by-node character grid.

    Args:
        trace: an :class:`EventTrace` recorded during a run.
        num_nodes: network size (column count).
        start_tick / end_tick: crop the time axis (defaults: full range).
        max_rows: subsample ticks evenly if the range is longer than this.
        node_order: optional column permutation (e.g. ring order).
    """
    deliveries = trace.deliveries()
    if not deliveries:
        return "(empty trace)"
    lo = start_tick if start_tick is not None else deliveries[0].tick
    hi = end_tick if end_tick is not None else deliveries[-1].tick
    order = node_order or list(range(num_nodes))
    col_of = {node: i for i, node in enumerate(order)}

    grid: dict[int, list[tuple[str, int]]] = {}
    for e in deliveries:
        if not lo <= e.tick <= hi or e.node not in col_of:
            continue
        row = grid.setdefault(e.tick, [(GLYPHS["idle"], 99)] * len(order))
        glyph, priority = _glyph_and_priority(e.char)
        if priority < row[col_of[e.node]][1]:
            row[col_of[e.node]] = (glyph, priority)

    ticks = sorted(grid)
    if len(ticks) > max_rows:
        step = len(ticks) / max_rows
        ticks = [ticks[int(i * step)] for i in range(max_rows)]

    header = "tick | " + "".join(str(n % 10) for n in order)
    lines = [header, "-" * len(header)]
    for tick in ticks:
        cells = "".join(g for g, _ in grid[tick])
        lines.append(f"{tick:>4} | {cells}")
    legend = (
        "legend: o/| growing head/body  x/X dying head/body  K kill  "
        "u unmark  F/R fwd/back  d bdone  D dfs"
    )
    lines.append(legend)
    return "\n".join(lines)
