"""ASCII rendering of networks, recovered maps and protocol traces."""

from repro.viz.ascii_map import render_adjacency, render_recovered_map
from repro.viz.timeline import render_traffic_profile, render_transcript_digest
from repro.viz.spacetime import render_spacetime

__all__ = [
    "render_adjacency",
    "render_recovered_map",
    "render_traffic_profile",
    "render_transcript_digest",
    "render_spacetime",
]
