"""ASCII adjacency rendering for examples and the CLI."""

from __future__ import annotations

from repro.topology.portgraph import PortGraph
from repro.protocol.root_computer import ReconstructedMap

__all__ = ["render_adjacency", "render_recovered_map"]


def render_adjacency(graph: PortGraph, *, root: int | None = None) -> str:
    """One line per processor: ``u: -(o:i)-> v ...`` with port labels."""
    lines = []
    for u in graph.nodes():
        tag = "*" if u == root else " "
        hops = "  ".join(
            f"-({w.out_port}:{w.in_port})-> {w.dst}" for w in graph.successors(u)
        )
        lines.append(f"{tag}{u:>4}: {hops}")
    return "\n".join(lines)


def render_recovered_map(recovered: ReconstructedMap) -> str:
    """Render the master computer's map with its assigned names.

    Name 0 is the root; other names appear in discovery order, so the
    rendering doubles as a readable DFS trace of the network.
    """
    by_src: dict[int, list[str]] = {}
    for w in recovered.wires:
        by_src.setdefault(w.src, []).append(
            f"-({w.out_port}:{w.in_port})-> {w.dst}"
        )
    lines = [f"recovered map: {recovered.num_nodes} processors, "
             f"{len(recovered.wires)} wires (name 0 = root)"]
    for name in range(recovered.num_nodes):
        hops = "  ".join(sorted(by_src.get(name, [])))
        lines.append(f"{name:>5}: {hops}")
    return "\n".join(lines)
