"""Digest renderings of transcripts and traffic profiles."""

from __future__ import annotations

from repro.sim.metrics import TrafficMetrics
from repro.sim.transcript import Transcript
from repro.util.tables import format_table

__all__ = ["render_traffic_profile", "render_transcript_digest"]


def render_traffic_profile(metrics: TrafficMetrics, *, title: str = "traffic") -> str:
    """Character deliveries aggregated by family, largest first."""
    rows = sorted(metrics.by_family().items(), key=lambda kv: -kv[1])
    total = metrics.total_delivered
    table = [
        (family, count, f"{100.0 * count / total:.1f}%" if total else "-")
        for family, count in rows
    ]
    return format_table(
        ["family/kind", "deliveries", "share"], table, title=title
    )


def render_transcript_digest(transcript: Transcript, *, limit: int = 40) -> str:
    """The mapping-relevant transcript events, one per line.

    Shows DFS arrivals, FORWARD/BACK observations and root pipes — the
    events the master computer actually acts on — and summarizes the rest.
    """
    lines = []
    shown = 0
    skipped = 0
    for e in transcript.events():
        interesting = (
            e.kind == "pipe"
            or (e.kind == "recv" and e.char is not None
                and e.char.kind in ("DFS", "FWD", "BACK"))
        )
        if not interesting:
            skipped += 1
            continue
        if shown >= limit:
            skipped += 1
            continue
        shown += 1
        if e.kind == "pipe":
            lines.append(f"t={e.tick:>6}  pipe  {e.label}{e.data or ''}")
        else:
            lines.append(f"t={e.tick:>6}  recv  {e.char} via in-port {e.port}")
    lines.append(f"({shown} shown, {skipped} other transcript events)")
    return "\n".join(lines)
