"""Campaign declarations: the scenario matrix and its vocabulary.

A :class:`Scenario` is one fully-specified run — a named network family at
an approximate size, a fault model, and a seed.  Scenarios are plain frozen
dataclasses of primitives, so they pickle cheaply across worker-process
boundaries and compare by value (the parallel-equals-serial determinism
test relies on this).

The family registry maps CLI-friendly names to builders with a uniform
``(size, seed) -> PortGraph`` signature.  Families whose natural parameter
is not a node count (de Bruijn word length, torus sides, tree depth) are
wrapped so the builder returns the smallest instance with at least ``size``
nodes — the same convention the ``map`` subcommand has always used.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.dynamics.timeline import PerturbationTimeline, parse_timeline
from repro.errors import ReproError
from repro.sim.run import DEFAULT_BACKEND, check_backend
from repro.topology import generators
from repro.topology.portgraph import PortGraph

__all__ = [
    "FAMILY_BUILDERS",
    "build_family",
    "FaultModel",
    "parse_fault",
    "Scenario",
    "CampaignSpec",
    "SupervisionPolicy",
    "SPEC_HASH_FORMAT",
]

#: Version tag folded into every spec hash.  Bump it if the canonical form
#: of a scenario ever changes meaning — old store entries then simply stop
#: matching instead of silently aliasing different experiments.
#:
#: The ``backend`` axis joins the canonical form *only* when it is not the
#: default, so every pre-backend hash (and stored result) stays valid: an
#: ``object``-backend cell hashes exactly as it always has, while a
#: ``flat``-backend cell gets its own address — the store keeps the two
#: apart without a format bump.
SPEC_HASH_FORMAT = "repro.scenario/v1"


# ----------------------------------------------------------------------
# family registry
# ----------------------------------------------------------------------
def _directed_ring(size: int, seed: int) -> PortGraph:
    return generators.directed_ring(size)


def _bidirectional_ring(size: int, seed: int) -> PortGraph:
    return generators.bidirectional_ring(size)


def _bidirectional_line(size: int, seed: int) -> PortGraph:
    return generators.bidirectional_line(size)


def _de_bruijn(size: int, seed: int) -> PortGraph:
    length = 1
    while 2**length < size:
        length += 1
    return generators.de_bruijn(2, length)


def _hypercube(size: int, seed: int) -> PortGraph:
    dimension = 1
    while 2**dimension < size:
        dimension += 1
    return generators.hypercube(dimension)


def _torus(size: int, seed: int) -> PortGraph:
    side = 2
    while side * side < size:
        side += 1
    return generators.directed_torus(side, side)


def _directed_torus(size: int, seed: int) -> PortGraph:
    """The most nearly-square ``rows x cols`` torus with ``>= size`` nodes."""
    rows = max(2, math.isqrt(size))
    cols = max(2, -(-size // rows))
    return generators.directed_torus(rows, cols)


def _random(size: int, seed: int) -> PortGraph:
    return generators.random_strongly_connected(size, extra_edges=size, seed=seed)


def _tree_with_loop(size: int, seed: int) -> PortGraph:
    depth = 1
    while (1 << (depth + 1)) - 1 < size:
        depth += 1
    return generators.tree_with_loop(depth, seed=seed)


def _manhattan(size: int, seed: int) -> PortGraph:
    side = 2
    while side * side < size:
        side += 2
    return generators.manhattan_grid(side, side)


def _ring_of_rings(size: int, seed: int) -> PortGraph:
    outer = 2
    while outer * 3 < size:
        outer += 1
    return generators.ring_of_rings(outer, 3)


def _spare_ring(size: int, seed: int) -> PortGraph:
    """A bidirectional ring built at delta=3 so port 3 is free everywhere.

    The spare ports make this the canonical testbed for ``add`` fault
    models: a wire can appear mid-run without colliding with existing
    wiring (the E11 dynamics sweep runs on it).
    """
    graph = PortGraph(size, 3)
    for u in range(size):
        graph.add_wire(u, 1, (u + 1) % size, 1)
        graph.add_wire(u, 2, (u - 1) % size, 2)
    return graph.freeze()


#: name -> builder(size, seed).  Sizes are "at least" for families whose
#: natural parameter is not a node count.
FAMILY_BUILDERS: dict[str, Callable[[int, int], PortGraph]] = {
    "directed-ring": _directed_ring,
    "bidirectional-ring": _bidirectional_ring,
    "bidirectional-line": _bidirectional_line,
    "de-bruijn": _de_bruijn,
    "hypercube": _hypercube,
    "torus": _torus,
    "directed-torus": _directed_torus,
    "random": _random,
    "tree-with-loop": _tree_with_loop,
    "manhattan": _manhattan,
    "ring-of-rings": _ring_of_rings,
    "spare-ring": _spare_ring,
}


def build_family(family: str, size: int, seed: int = 0) -> PortGraph:
    """Build the ``family`` network of (at least) ``size`` nodes."""
    try:
        builder = FAMILY_BUILDERS[family]
    except KeyError:
        raise ReproError(
            f"unknown network family {family!r}; known: {sorted(FAMILY_BUILDERS)}"
        ) from None
    return builder(size, seed)


# ----------------------------------------------------------------------
# fault models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultModel:
    """A parsed fault specification.

    ``kind`` is one of:

    * ``"none"`` — the healthy network;
    * ``"shutdown"`` — pre-run port-shutdown failures: each wire dies
      independently with probability ``param`` (§1.2.2; the degraded
      network is the ground truth the recovered map is compared against);
    * ``"cut"`` — one wire is cut mid-run, at ``param`` × the undisturbed
      protocol runtime (the paper's introductory caveat);
    * ``"add"`` — one wire appears mid-run, at ``param`` × the undisturbed
      runtime (requires a family with free ports, e.g. ``spare-ring``);
    * ``"timeline"`` — a full perturbation program
      (:class:`~repro.dynamics.timeline.PerturbationTimeline`): churn,
      storms, flaps, frontier cuts and cut/heal/add waves, composable with
      ``+``.  ``param`` is unused; :attr:`timeline` holds the parsed
      program and the canonical spelling is its grammar string.

    The legacy kinds keep their exact historical canonical form (and hence
    their spec hashes); a timeline fault's canonical form is the timeline
    grammar's canonical string.
    """

    kind: str
    param: float = 0.0
    timeline: PerturbationTimeline | None = None

    def __str__(self) -> str:
        if self.kind == "none":
            return self.kind
        if self.kind == "timeline":
            assert self.timeline is not None
            return self.timeline.canonical()
        return f"{self.kind}:{self.param:g}"


_FAULT_KINDS = ("none", "shutdown", "cut", "add")


def _is_float(raw: str) -> bool:
    try:
        float(raw)
    except ValueError:
        return False
    return True


def parse_fault(spec: str) -> FaultModel:
    """Parse a fault spec: a legacy kind or a perturbation timeline.

    Legacy forms — ``"none"``, ``"shutdown:0.1"``, ``"cut:0.5"``,
    ``"add:0.5"`` — parse exactly as they always have.  Anything carrying
    timeline syntax (a ``+`` composition, an ``@time``, or ``key=value``
    parameters — every timeline event has at least one of these) parses
    through :func:`repro.dynamics.timeline.parse_timeline`.
    """
    kind, _, raw = spec.partition(":")
    is_timeline = "+" in spec or "@" in spec or "=" in spec
    if is_timeline and kind in _FAULT_KINDS and _is_float(raw):
        # a legacy param in exponent spelling ("cut:1e+0"): the '+' is the
        # exponent sign, not a timeline composition
        is_timeline = False
    if is_timeline:
        try:
            return FaultModel("timeline", timeline=parse_timeline(spec))
        except ReproError as exc:
            raise ReproError(f"bad fault model {spec!r}: {exc}") from None
    if kind not in _FAULT_KINDS:
        raise ReproError(
            f"unknown fault model {spec!r}; known kinds: {_FAULT_KINDS}, "
            f"or a perturbation timeline (e.g. 'storm:p=0.1@0.5')"
        )
    if kind == "none":
        if raw:
            raise ReproError(f"fault model 'none' takes no parameter, got {spec!r}")
        return FaultModel("none")
    if not raw:
        raise ReproError(f"fault model {kind!r} needs a parameter, e.g. '{kind}:0.1'")
    param = float(raw)
    if kind == "shutdown" and not 0.0 <= param < 1.0:
        raise ReproError(f"shutdown rate must be in [0, 1), got {param}")
    if kind in ("cut", "add") and param < 0.0:
        raise ReproError(f"{kind} time fraction must be >= 0, got {param}")
    return FaultModel(kind, param)


# ----------------------------------------------------------------------
# supervision policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisionPolicy:
    """How the executor supervises a parallel campaign's failure modes.

    Like :class:`CampaignSpec`, this is a campaign-level *declaration* —
    but deliberately **not** part of any scenario's identity: supervision
    changes how failures are handled, never the value of a healthy cell,
    so two campaigns differing only in policy share every store key.

    * ``cell_timeout`` — wall-clock budget per cell, in seconds.  A
      dispatched chunk's deadline is ``cell_timeout * len(chunk) +
      chunk_grace``; a chunk that outlives it is presumed wedged, the pool
      is recycled, and the chunk is retried.  ``None`` disables deadlines
      (worker-death detection stays on).
    * ``max_retries`` — failed attempts a chunk may accrue before it is
      **bisected** (multi-cell) or **quarantined** (single cell, recorded
      as ``outcome="error"``).
    * ``on_error`` — ``"quarantine"`` records failing cells and completes
      the campaign; ``"raise"`` restores the historical strict abort via
      :class:`~repro.errors.ScenarioExecutionError`.
    * ``backoff_base``/``backoff_cap`` — exponential backoff slept before
      each pool rebuild (``base * 2**(rebuilds-1)``, capped).
    * ``max_pool_rebuilds`` — after this many pool breakages in one
      ``run_campaign`` call, the executor degrades to serial in-process
      execution of the remaining chunks (no isolation, but progress).
    * ``liveness_interval`` — how often the supervisor polls worker
      liveness while waiting for results (parent-side only; the worker
      hot loop never sees it).
    """

    cell_timeout: float | None = 120.0
    chunk_grace: float = 5.0
    max_retries: int = 1
    on_error: str = "quarantine"
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    max_pool_rebuilds: int = 5
    liveness_interval: float = 0.2

    def __post_init__(self) -> None:
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ReproError(
                f"cell_timeout must be > 0 or None, got {self.cell_timeout}"
            )
        if self.chunk_grace < 0:
            raise ReproError(f"chunk_grace must be >= 0, got {self.chunk_grace}")
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.on_error not in ("quarantine", "raise"):
            raise ReproError(
                f"on_error must be 'quarantine' or 'raise', got {self.on_error!r}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ReproError("backoff_base/backoff_cap must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ReproError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )
        if self.liveness_interval <= 0:
            raise ReproError(
                f"liveness_interval must be > 0, got {self.liveness_interval}"
            )

    def chunk_deadline_seconds(self, cells: int) -> float | None:
        """The wall-clock budget for a chunk of ``cells`` cells, or None."""
        if self.cell_timeout is None:
            return None
        return self.cell_timeout * max(1, cells) + self.chunk_grace

    def rebuild_backoff(self, rebuilds: int) -> float:
        """Seconds to sleep before pool rebuild number ``rebuilds`` (1-based)."""
        if self.backoff_base == 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2 ** max(0, rebuilds - 1))


# ----------------------------------------------------------------------
# scenarios and the matrix
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One fully-specified campaign run.

    The fault string is canonicalized at construction (``"shutdown:0.10"``
    becomes ``"shutdown:0.1"``), so equivalent spellings produce equal
    scenarios — same ``==``, same label, same spec hash — and a result
    read back from a store compares equal to the one that was written.

    ``backend`` selects the engine implementation (``"object"`` or
    ``"flat"``).  The two backends produce identical results — the parity
    suite enforces it — but the axis still participates in the spec hash
    (when non-default) so stores keep per-backend cells distinct: a
    benchmark matrix must never silently satisfy a flat-backend run with a
    stored object-backend record, or the wall-clock comparison is void.
    """

    family: str
    size: int
    fault: str = "none"
    seed: int = 0
    backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        object.__setattr__(self, "fault", str(parse_fault(self.fault)))
        check_backend(self.backend)

    @property
    def label(self) -> str:
        base = f"{self.family}({self.size})/{self.fault}/s{self.seed}"
        if self.backend != DEFAULT_BACKEND:
            return f"{base}/{self.backend}"
        return base

    def canonical(self) -> dict:
        """The scenario as a normalized, JSON-ready mapping.

        ``fault`` is already canonical (normalized in ``__post_init__``),
        so this is a plain field dump — spellings that denote the same
        model hash identically because they *are* identical by the time a
        Scenario exists.  The default backend is omitted so that every
        scenario hashed before the backend axis existed keeps its address.
        """
        doc = {
            "family": self.family,
            "size": int(self.size),
            "fault": self.fault,
            "seed": int(self.seed),
        }
        if self.backend != DEFAULT_BACKEND:
            doc["backend"] = self.backend
        return doc

    def spec_hash(self) -> str:
        """The content address of this scenario: a hex SHA-256 digest.

        Computed over :data:`SPEC_HASH_FORMAT` plus the canonical JSON form
        (sorted keys, minimal separators), so it is stable across processes,
        interpreter invocations and ``PYTHONHASHSEED`` — unlike ``hash()``.
        The result store shards and indexes by this key.
        """
        payload = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(f"{SPEC_HASH_FORMAT}\n{payload}".encode())
        return digest.hexdigest()

    def build_graph(self) -> PortGraph:
        """The healthy (pre-fault) network for this scenario."""
        return build_family(self.family, self.size, self.seed)

    def fault_model(self) -> FaultModel:
        return parse_fault(self.fault)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative scenario matrix: backend × family × size × fault × seed.

    Expansion order is row-major over the declaration order (backends
    outermost, then families, seeds innermost) and is part of the
    contract: the executor reports results in exactly this order
    regardless of worker count.  The default single-``object`` backend
    axis expands to exactly the pre-backend matrix, so existing specs,
    hashes and stores are unaffected.
    """

    families: tuple[str, ...]
    sizes: tuple[int, ...]
    faults: tuple[str, ...] = ("none",)
    seeds: tuple[int, ...] = (0,)
    backends: tuple[str, ...] = (DEFAULT_BACKEND,)

    def __post_init__(self) -> None:
        for family in self.families:
            if family not in FAMILY_BUILDERS:
                raise ReproError(
                    f"unknown network family {family!r}; "
                    f"known: {sorted(FAMILY_BUILDERS)}"
                )
        for fault in self.faults:
            parse_fault(fault)  # validates eagerly, at declaration time
        for backend in self.backends:
            check_backend(backend)
        if not (
            self.families and self.sizes and self.faults and self.seeds
            and self.backends
        ):
            raise ReproError("campaign matrix must have at least one of each axis")

    def scenarios(self) -> list[Scenario]:
        """Expand the matrix into its scenario list."""
        return list(self._iter_scenarios())

    def _iter_scenarios(self) -> Iterator[Scenario]:
        for backend in self.backends:
            for family in self.families:
                for size in self.sizes:
                    for fault in self.faults:
                        for seed in self.seeds:
                            yield Scenario(
                                family=family,
                                size=size,
                                fault=fault,
                                seed=seed,
                                backend=backend,
                            )

    def __len__(self) -> int:
        return (
            len(self.families)
            * len(self.sizes)
            * len(self.faults)
            * len(self.seeds)
            * len(self.backends)
        )

    def spec_hash(self) -> str:
        """A content address for the whole matrix (order-sensitive).

        Hashes the ordered scenario hashes, so two specs that expand to the
        same scenarios in the same order — however they were declared —
        share a hash.  Stores stamp it into run manifests for provenance.
        """
        digest = hashlib.sha256(f"{SPEC_HASH_FORMAT}:matrix\n".encode())
        for scenario in self._iter_scenarios():
            digest.update(scenario.spec_hash().encode())
            digest.update(b"\n")
        return digest.hexdigest()
