"""Deterministic fault injection for the campaign supervisor's test paths.

The supervisor in :mod:`repro.campaigns.executor` exists to survive three
things a real worker fleet does: die (SIGKILL, OOM), wedge (hang forever),
and lie (return a corrupted payload).  None of those can be provoked from
ordinary test code without racing the scheduler — so this module provides
a **seeded, process-local injection hook**: the ``REPRO_FAULT_INJECT``
environment variable names one fault kind and one target cell, and the
worker that picks that cell up injects the fault at the moment it would
have started simulating.  Because the trigger is the scenario *label* (a
pure function of the spec), the injection fires at the same cell on every
run, under every start method, for any worker count — the failure paths
become as deterministic as the healthy ones.

Spec grammar (semicolon-separated ``key=value`` pairs)::

    REPRO_FAULT_INJECT="kind=crash;match=de-bruijn(6)/none/s3"
    REPRO_FAULT_INJECT="kind=hang;match=spare-ring(6)/cut:0.5/s0;secs=60"
    REPRO_FAULT_INJECT="kind=error;match=.../s1;once=/tmp/armed"

* ``kind`` — ``crash`` (SIGKILL the current process), ``hang`` (sleep
  ``secs``, default 3600), ``error`` (raise ``RuntimeError``), or
  ``corrupt`` (make the worker return a garbage chunk payload);
* ``match`` — a substring of the target :attr:`Scenario.label`;
* ``secs`` — hang duration in seconds (``hang`` only);
* ``once`` — a marker-file path: the fault fires only while the file does
  not exist and creates it atomically first, so exactly one injection
  happens per marker — the way to test *recovery* (retry succeeds) rather
  than *quarantine* (cell keeps failing).

The values ``""``, ``"0"`` and ``"1"`` disable injection — CI sets
``REPRO_FAULT_INJECT=1`` as the suite gate and the tests export concrete
specs per case.  When the variable is unset the per-cell check is a single
dict lookup and a cached parse; nothing else rides the hot path.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ReproError

__all__ = [
    "ENV_VAR",
    "FaultInjection",
    "CorruptResultInjected",
    "active_injection",
    "maybe_inject",
]

#: The environment variable carrying the injection spec (workers inherit
#: the parent's environment under every multiprocessing start method).
ENV_VAR = "REPRO_FAULT_INJECT"

_KINDS = ("crash", "hang", "error", "corrupt")


class CorruptResultInjected(Exception):
    """Internal signal: replace the chunk payload with garbage.

    Deliberately *not* a :class:`ReproError`: worker code converts library
    errors into structured results, while this must escape to the chunk
    shim (in a pool worker) so the parent sees a corrupted payload.
    """


@dataclass(frozen=True)
class FaultInjection:
    """One parsed injection: a fault kind armed at a matching cell."""

    kind: str
    match: str
    secs: float = 3600.0
    once: str | None = None


@lru_cache(maxsize=8)
def _parse(spec: str) -> FaultInjection | None:
    if spec in ("", "0", "1"):
        return None
    fields: dict[str, str] = {}
    for part in spec.split(";"):
        if not part.strip():
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ReproError(
                f"bad {ENV_VAR} spec {spec!r}: expected key=value, got {part!r}"
            )
        fields[key.strip()] = value
    kind = fields.pop("kind", "")
    match = fields.pop("match", "")
    if kind not in _KINDS:
        raise ReproError(
            f"bad {ENV_VAR} spec {spec!r}: kind must be one of {_KINDS}"
        )
    if not match:
        raise ReproError(f"bad {ENV_VAR} spec {spec!r}: missing match=LABEL")
    secs = float(fields.pop("secs", "3600"))
    once = fields.pop("once", None)
    if fields:
        raise ReproError(
            f"bad {ENV_VAR} spec {spec!r}: unknown key(s) {sorted(fields)}"
        )
    return FaultInjection(kind=kind, match=match, secs=secs, once=once)


def active_injection() -> FaultInjection | None:
    """The injection armed in this process's environment, or ``None``."""
    return _parse(os.environ.get(ENV_VAR, ""))


def maybe_inject(scenario) -> None:
    """Fire the armed fault if ``scenario`` is its target; else no-op.

    Called by the executor once per cell, immediately before the cell
    would simulate.  ``crash`` never returns; ``hang`` returns after
    ``secs`` (by which time the supervisor has normally killed the pool);
    ``error`` raises ``RuntimeError`` (captured into a structured error
    result); ``corrupt`` raises :class:`CorruptResultInjected`.
    """
    injection = active_injection()
    if injection is None or injection.match not in scenario.label:
        return
    if injection.once is not None:
        try:
            fd = os.open(injection.once, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # already fired once; run the cell normally
        os.close(fd)
    if injection.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif injection.kind == "hang":
        time.sleep(injection.secs)
    elif injection.kind == "error":
        raise RuntimeError(f"injected fault at {scenario.label}")
    else:  # corrupt
        raise CorruptResultInjected(scenario.label)
