"""Campaign execution: serial or multiprocessing, deterministic either way.

:func:`run_scenario` is the single-worker unit: build the scenario's
network, apply its fault model, run the protocol through the shared run
orchestration (:mod:`repro.sim.run` via
:func:`~repro.protocol.runner.determine_topology` /
:func:`~repro.dynamics.experiment.run_dynamic_gtd`), and reduce the outcome
to a picklable :class:`ScenarioResult`.

Determinism is structural: a scenario carries its own seed, every
stochastic choice inside the worker derives from that seed through
:func:`repro.util.rng.make_rng`, and no global random state is consulted.
``run_campaign(spec, jobs=4)`` therefore produces results identical,
scenario for scenario, to ``run_campaign(spec, jobs=1)`` — the campaign
determinism test asserts exactly that equality.

Aggregation reuses the shapes of :mod:`repro.analysis.run_stats`: per-RCA
episodes are extracted from each root transcript inside the worker, and
:meth:`CampaignResult.episode_fit` fits duration against loop length
across the whole campaign (Lemma 4.3 at matrix scale).
"""

from __future__ import annotations

import json
import multiprocessing
import zlib
from collections import Counter
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Callable, Sequence

from repro.analysis.run_stats import (
    CampaignStats,
    RcaEpisode,
    aggregate_stats,
    episode_scaling,
    rca_episodes,
)
from repro.campaigns.spec import CampaignSpec, FaultModel, Scenario, build_family
from repro.dynamics.engine import WireMutation
from repro.dynamics.experiment import run_dynamic_gtd
from repro.errors import ReproError, TickBudgetExceeded, TranscriptError
from repro.protocol.runner import determine_topology
from repro.topology.faults import (
    pick_cut_victim,
    pick_free_wire,
    shutdown_out_ports,
)
from repro.topology.portgraph import PortGraph
from repro.util.fitting import FitResult
from repro.util.rng import make_rng
from repro.util.tables import format_table

__all__ = ["ScenarioResult", "CampaignResult", "run_scenario", "run_campaign"]


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's outcome, reduced to plain comparable values.

    ``outcome`` is ``"exact"``/``"mismatch"`` for static scenarios and the
    :class:`~repro.dynamics.experiment.DynamicOutcome` value
    (``"accurate"``/``"stale"``/``"deadlock"``/``"protocol-error"``) for
    dynamic ones.
    """

    scenario: Scenario
    outcome: str
    num_nodes: int
    num_wires: int
    diameter: int
    ticks: int
    drained_ticks: int
    hops: int
    rca_runs: int
    bca_runs: int
    by_family: tuple[tuple[str, int], ...]
    episodes: tuple[RcaEpisode, ...]
    lost_characters: int = 0
    #: timeline phase the run ended in ("" for non-timeline scenarios)
    phase: str = ""

    @property
    def ok(self) -> bool:
        """Whether the recovered map matched the ground truth."""
        return self.outcome in ("exact", "accurate")

    @property
    def work(self) -> int:
        """The Lemma 4.4 work measure ``E * D`` for this network."""
        return self.num_wires * max(1, self.diameter)


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario; deterministic in the scenario alone.

    A cell whose fault model cannot be realized on its network (no cuttable
    wire, no free port to add one, a shutdown pattern that never leaves a
    legal graph) reports outcome ``"infeasible"`` instead of aborting the
    rest of the matrix.
    """
    fault = scenario.fault_model()
    graph = scenario.build_graph()
    try:
        if fault.kind == "timeline":
            return _run_timeline_scenario(scenario, graph, fault)
        if fault.kind in ("cut", "add"):
            return _run_dynamic_scenario(scenario, graph, fault)
        if fault.kind == "shutdown":
            graph = shutdown_out_ports(
                graph, fault.param, seed=_derive_seed(scenario, "shutdown")
            )
    except ReproError:
        return _empty_result(scenario, graph, "infeasible")
    return _run_static_scenario(scenario, graph)


def _derive_backend_seed_key(scenario: Scenario) -> str:
    """The scenario fields that determine stochastic choices.

    Deliberately excludes the backend: backends are numerically identical,
    so a fault pattern must not change with the engine implementation.
    """
    return f"{scenario.family}|{scenario.size}|{scenario.fault}|{scenario.seed}"


def _empty_result(scenario: Scenario, graph: PortGraph, outcome: str) -> ScenarioResult:
    """A result shell for cells that produced no protocol run."""
    return ScenarioResult(
        scenario=scenario,
        outcome=outcome,
        num_nodes=graph.num_nodes,
        num_wires=graph.num_wires,
        diameter=0,
        ticks=0,
        drained_ticks=0,
        hops=0,
        rca_runs=0,
        bca_runs=0,
        by_family=(),
        episodes=(),
    )


def _derive_seed(scenario: Scenario, purpose: str) -> int:
    """A child seed unique to (scenario, purpose), stable across processes.

    Uses crc32, not ``hash()`` — builtin string hashing is randomized per
    interpreter, which would make fault patterns differ between workers
    and between invocations.  The backend is excluded on purpose: the same
    scenario on ``object`` and ``flat`` must see the same fault pattern,
    or backend parity could not even be stated.
    """
    key = f"{purpose}|{_derive_backend_seed_key(scenario)}"
    return zlib.crc32(key.encode()) & 0x7FFFFFFF


def _run_static_scenario(scenario: Scenario, graph: PortGraph) -> ScenarioResult:
    try:
        result = determine_topology(graph, backend=scenario.backend)
    except TickBudgetExceeded:
        return _empty_result(scenario, graph, "deadlock")
    return ScenarioResult(
        scenario=scenario,
        outcome="exact" if result.matches(graph) else "mismatch",
        num_nodes=graph.num_nodes,
        num_wires=graph.num_wires,
        diameter=result.diameter,
        ticks=result.ticks,
        drained_ticks=result.drained_ticks,
        hops=result.metrics.total_delivered,
        rca_runs=result.rca_runs,
        bca_runs=result.bca_runs,
        by_family=tuple(sorted(result.metrics.by_family().items())),
        episodes=tuple(_safe_episodes(result.transcript)),
    )


@lru_cache(maxsize=128)
def _dynamic_baseline(
    family: str, size: int, seed: int, backend: str
) -> tuple[int, int]:
    """(undisturbed ticks, diameter) for a scenario's healthy network.

    Every dynamic fault cell of the same (family, size, seed, backend)
    shares one baseline run; the cache is per worker process, and the
    value is a pure function of its key, so caching cannot perturb
    determinism.  (Backend parity makes the tick count backend-invariant,
    but keying on it keeps the cache correct by construction.)
    """
    graph = build_family(family, size, seed)
    baseline = determine_topology(graph, backend=backend)
    return baseline.ticks, baseline.diameter


def _run_dynamic_scenario(
    scenario: Scenario, graph: PortGraph, fault: FaultModel
) -> ScenarioResult:
    baseline_ticks, diam = _dynamic_baseline(
        scenario.family, scenario.size, scenario.seed, scenario.backend
    )
    when = int(baseline_ticks * fault.param)
    rng = make_rng(_derive_seed(scenario, fault.kind))
    if fault.kind == "cut":
        mutation = WireMutation(tick=when, kind="cut", wire=pick_cut_victim(graph, rng))
    else:
        mutation = WireMutation(tick=when, kind="add", wire=pick_free_wire(graph, rng))
    outcome = run_dynamic_gtd(
        graph,
        [mutation],
        max_ticks=baseline_ticks * 3 + 1000,
        backend=scenario.backend,
    )
    return ScenarioResult(
        scenario=scenario,
        outcome=outcome.outcome.value,
        num_nodes=graph.num_nodes,
        num_wires=graph.num_wires,
        diameter=diam,
        ticks=outcome.ticks,
        drained_ticks=outcome.ticks,
        hops=0,
        rca_runs=0,
        bca_runs=0,
        by_family=(),
        episodes=(),
        lost_characters=outcome.lost_characters,
    )


def _run_timeline_scenario(
    scenario: Scenario, graph: PortGraph, fault: FaultModel
) -> ScenarioResult:
    """One perturbation-timeline cell: compile, run, classify per phase.

    The timeline is lowered with the scenario-derived seed and the measured
    undisturbed runtime as horizon, so the cell is a pure function of the
    scenario — backends excluded from the seed, exactly like the legacy
    dynamic cells, so object and flat runs see the same wire program.
    """
    assert fault.timeline is not None
    baseline_ticks, diam = _dynamic_baseline(
        scenario.family, scenario.size, scenario.seed, scenario.backend
    )
    program = fault.timeline.compile(
        graph,
        horizon=baseline_ticks,
        seed=_derive_seed(scenario, "timeline"),
        root=0,
    )
    outcome = run_dynamic_gtd(
        graph,
        program,
        max_ticks=baseline_ticks * 3 + 1000,
        backend=scenario.backend,
    )
    return ScenarioResult(
        scenario=scenario,
        outcome=outcome.outcome.value,
        num_nodes=graph.num_nodes,
        num_wires=graph.num_wires,
        diameter=diam,
        ticks=outcome.ticks,
        drained_ticks=outcome.ticks,
        hops=outcome.hops,
        rca_runs=0,
        bca_runs=0,
        by_family=(),
        episodes=(),
        lost_characters=outcome.lost_characters,
        phase=outcome.phase,
    )


def _safe_episodes(transcript) -> list[RcaEpisode]:
    try:
        return rca_episodes(transcript)
    except TranscriptError:
        return []


# ----------------------------------------------------------------------
# the campaign runner
# ----------------------------------------------------------------------
def run_campaign(
    spec: CampaignSpec | Sequence[Scenario],
    *,
    jobs: int = 1,
    store=None,
) -> "CampaignResult":
    """Run every scenario of ``spec``; fan out over ``jobs`` processes.

    Results come back in matrix order regardless of ``jobs``; with the same
    spec they are identical value-for-value for any worker count.

    With ``store`` (a :class:`repro.store.ResultStore` or a path to one),
    the run becomes persistent and incremental: scenarios already recorded
    in the store are loaded instead of executed, and every fresh result is
    written through **as it completes** — so an interrupted campaign keeps
    its finished prefix and a re-run with the same store executes only the
    remainder.  Because :func:`run_scenario` is a pure function of the
    scenario, a loaded record equals the re-run result value-for-value and
    the resumed campaign's aggregate is byte-identical to an uninterrupted
    one.  (Corollary: a store outlives code changes — after editing the
    protocol or the engine, start a fresh store rather than resuming into
    results computed by older code.)
    """
    scenarios = spec.scenarios() if isinstance(spec, CampaignSpec) else list(spec)
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    store = _coerce_store(store)
    slots: list[ScenarioResult | None] = [None] * len(scenarios)
    pending: list[tuple[int, Scenario]] = []
    for index, scenario in enumerate(scenarios):
        hit = store.get(scenario) if store is not None else None
        if hit is not None:
            slots[index] = hit
        else:
            pending.append((index, scenario))
    # Clamp the pool to the actual work: jobs > len(pending) would spawn
    # workers that fork, import, and exit without ever running a scenario.
    workers = min(jobs, len(pending))
    if workers <= 1:
        for index, scenario in pending:
            slots[index] = _run_and_record(scenario, store)
    else:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        with ctx.Pool(processes=workers) as pool:
            # imap_unordered (not map/imap) so each result is persisted the
            # moment *any* worker finishes — an in-order stream would sit
            # on completed results behind a slow scenario, and a crash
            # would lose them.  Indices travel with the scenarios, so the
            # returned matrix order is unaffected.
            for index, result in pool.imap_unordered(_run_indexed, pending):
                if store is not None:
                    store.put(result)
                slots[index] = result
    return CampaignResult(results=slots)


def _run_indexed(item: tuple[int, Scenario]) -> tuple[int, "ScenarioResult"]:
    """Worker shim: carry the matrix index through the unordered pool."""
    index, scenario = item
    return index, run_scenario(scenario)


def _coerce_store(store):
    """Accept a ResultStore, a path, or None.

    Imported lazily: :mod:`repro.store` depends on this module for the
    :class:`ScenarioResult` shape, so the import must not run at module
    load time.
    """
    if store is None:
        return None
    from repro.store import ResultStore

    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)


def _run_and_record(scenario: Scenario, store) -> ScenarioResult:
    result = run_scenario(scenario)
    if store is not None:
        store.put(result)
    return result


@dataclass
class CampaignResult:
    """All scenario results of one campaign, in matrix order."""

    results: list[ScenarioResult]

    def __len__(self) -> int:
        return len(self.results)

    # -- aggregation into the run_stats shapes --------------------------
    def episodes(self) -> list[RcaEpisode]:
        """Every RCA episode observed across the whole campaign."""
        return [ep for r in self.results for ep in r.episodes]

    def episode_fit(self) -> FitResult:
        """Lemma 4.3 across the matrix: episode duration vs loop length."""
        return episode_scaling(self.episodes())

    def series(
        self,
        *,
        x: Callable[[ScenarioResult], float] = lambda r: r.work,
        y: Callable[[ScenarioResult], float] = lambda r: r.ticks,
        group: Callable[[ScenarioResult], str] = lambda r: r.scenario.family,
    ) -> dict[str, tuple[list[float], list[float]]]:
        """Per-group (xs, ys) series, e.g. for scaling fits per family."""
        out: dict[str, tuple[list[float], list[float]]] = {}
        for r in self.results:
            xs, ys = out.setdefault(group(r), ([], []))
            xs.append(x(r))
            ys.append(y(r))
        return out

    def outcome_counts(self) -> dict[str, int]:
        """How many scenarios ended in each outcome."""
        return dict(Counter(r.outcome for r in self.results))

    def stats(self) -> CampaignStats:
        """The order-insensitive campaign aggregate.

        Shares :func:`repro.analysis.run_stats.aggregate_stats` with
        :meth:`repro.store.ResultStore.stats`, so a live campaign and the
        same matrix read back from a store aggregate byte-identically.
        """
        return aggregate_stats(self.results)

    # -- presentation ----------------------------------------------------
    def table_rows(self) -> list[tuple]:
        return [
            (
                r.scenario.label,
                r.num_nodes,
                r.num_wires,
                r.diameter,
                r.ticks,
                r.hops,
                r.outcome,
            )
            for r in self.results
        ]

    def summary(self) -> str:
        """A paper-style table of the whole campaign."""
        title = f"campaign: {len(self.results)} scenarios, outcomes {self.outcome_counts()}"
        return format_table(
            ["scenario", "N", "E", "D", "ticks", "hops", "outcome"],
            self.table_rows(),
            title=title,
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize every scenario result (episodes included) to JSON."""
        doc = {
            "format": "repro.campaign-result/v1",
            "scenarios": [asdict(r) for r in self.results],
            "outcomes": self.outcome_counts(),
        }
        return json.dumps(doc, indent=indent)
