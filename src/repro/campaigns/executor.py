"""Campaign execution: serial or multiprocessing, deterministic either way.

:func:`run_scenario` is the single-worker unit: build the scenario's
network, apply its fault model, run the protocol through the shared run
orchestration (:mod:`repro.sim.run` via
:func:`~repro.protocol.runner.determine_topology` /
:func:`~repro.dynamics.experiment.run_dynamic_gtd`), and reduce the outcome
to a picklable :class:`ScenarioResult`.

Determinism is structural: a scenario carries its own seed, every
stochastic choice inside the worker derives from that seed through
:func:`repro.util.rng.make_rng`, and no global random state is consulted.
``run_campaign(spec, jobs=4)`` therefore produces results identical,
scenario for scenario, to ``run_campaign(spec, jobs=1)`` — the campaign
determinism test asserts exactly that equality.

**The zero-rebuild pipeline.**  Because every scenario is a pure function
of its spec, all expensive setup artifacts are computed once per key and
reused, per worker process:

* the family :class:`~repro.topology.portgraph.PortGraph` is memoized per
  ``(family, size, seed)``;
* the *healthy* protocol run — previously re-measured as the baseline of
  every dynamic cell, and run again in full for every ``none`` cell — is
  memoized per ``(family, size, seed, backend)`` and shared by both;
* engines are checked out of a per-worker
  :class:`~repro.sim.run.EnginePool` (reset, not rebuilt, between runs),
  which in turn shares the process-wide compiled-topology and interner
  caches.

The worker pool itself is **persistent**: one pool (per start method and
size) survives across ``run_campaign`` invocations, so sweep drivers that
call it in a loop stop paying a fork-and-reimport per call, and the
per-worker caches above stay warm between invocations.  Dispatch is
**chunked**: pending scenarios are grouped by their setup key
``(family, size, seed, backend)`` and a whole group travels in one pickle
round-trip, which both amortizes IPC and guarantees every cell sharing a
baseline lands on the worker that already computed it.  None of this is
observable in the results — ``jobs=1`` and ``jobs=N`` stay value-identical
and stores resume byte-identically; :func:`run_scenario` with
``fresh=True`` bypasses the per-worker memos and the engine pool, and
:func:`clear_scenario_caches` additionally drops the process-wide
compiled-topology/interner caches (the benchmark's pre-cache reference
path clears + runs fresh; the cache-correctness tests rely on both).

Aggregation reuses the shapes of :mod:`repro.analysis.run_stats`: per-RCA
episodes are extracted from each root transcript inside the worker, and
:meth:`CampaignResult.episode_fit` fits duration against loop length
across the whole campaign (Lemma 4.3 at matrix scale).
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import json
import multiprocessing
import os
import queue as queue_mod
import time
import traceback
import zlib
from collections import Counter, deque
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from typing import Callable, Sequence

from repro.analysis.run_stats import (
    CampaignStats,
    RcaEpisode,
    aggregate_stats,
    episode_scaling,
    rca_episodes,
)
from repro.campaigns.faultinject import CorruptResultInjected, maybe_inject
from repro.campaigns.spec import (
    CampaignSpec,
    FaultModel,
    Scenario,
    SupervisionPolicy,
    build_family,
)
from repro.dynamics.engine import WireMutation
from repro.dynamics.experiment import run_dynamic_gtd, run_dynamic_gtd_lanes
from repro.errors import (
    ReproError,
    ScenarioExecutionError,
    TickBudgetExceeded,
    TranscriptError,
)
from repro.protocol.runner import TopologyResult, determine_topology
from repro.sim.characters import clear_interner_cache, kernel_for
from repro.sim.run import EnginePool
from repro.topology.compile import clear_compiled_cache
from repro.topology.faults import (
    pick_cut_victim,
    pick_free_wire,
    shutdown_out_ports,
)
from repro.topology.portgraph import PortGraph
from repro.util.fitting import FitResult
from repro.util.rng import make_rng
from repro.util.tables import format_table

__all__ = [
    "ScenarioResult",
    "CampaignResult",
    "SupervisionPolicy",
    "run_scenario",
    "run_campaign",
    "clear_scenario_caches",
    "shutdown_worker_pool",
]

#: The per-process engine pool every cached scenario run draws from.  In a
#: campaign worker it lives for the worker's whole lifetime — which, with
#: the persistent worker pool, spans ``run_campaign`` invocations.
_ENGINE_POOL = EnginePool()


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's outcome, reduced to plain comparable values.

    ``outcome`` is ``"exact"``/``"mismatch"`` for static scenarios and the
    :class:`~repro.dynamics.experiment.DynamicOutcome` value
    (``"accurate"``/``"stale"``/``"deadlock"``/``"protocol-error"``) for
    dynamic ones.
    """

    scenario: Scenario
    outcome: str
    num_nodes: int
    num_wires: int
    diameter: int
    ticks: int
    drained_ticks: int
    hops: int
    rca_runs: int
    bca_runs: int
    by_family: tuple[tuple[str, int], ...]
    episodes: tuple[RcaEpisode, ...]
    lost_characters: int = 0
    #: timeline phase the run ended in ("" for non-timeline scenarios)
    phase: str = ""
    #: for ``outcome="error"`` cells: the error kind — an exception class
    #: name, or a supervisor verdict (``"worker-crash"``/``"deadline"``/
    #: ``"corrupt-result"``).  ``""`` for every other outcome.
    error: str = ""
    #: deterministic short digest of the failure (kind + label + the
    #: exception-only traceback lines); stable across processes and start
    #: methods so a quarantined cell hashes identically however it failed.
    error_digest: str = ""

    @property
    def ok(self) -> bool:
        """Whether the recovered map matched the ground truth."""
        return self.outcome in ("exact", "accurate")

    @property
    def work(self) -> int:
        """The Lemma 4.4 work measure ``E * D`` for this network."""
        return self.num_wires * max(1, self.diameter)


def run_scenario(scenario: Scenario, *, fresh: bool = False) -> ScenarioResult:
    """Execute one scenario; deterministic in the scenario alone.

    A cell whose fault model cannot be realized on its network (no cuttable
    wire, no free port to add one, a shutdown pattern that never leaves a
    legal graph) reports outcome ``"infeasible"`` instead of aborting the
    rest of the matrix.

    ``fresh=True`` bypasses every per-worker cache (graph memo, healthy-run
    memo, engine pool) and rebuilds that setup from scratch — the pre-cache
    execution path.  (The process-wide compiled-topology/interner caches
    are shared state, not per-scenario setup; a caller that wants those
    cold too — the campaign benchmark's reference loop — calls
    :func:`clear_scenario_caches` first.)  The result is value-identical
    either way: the cache layer is pure reuse, enforced by test and
    asserted inside the campaign benchmark.
    """
    fault = scenario.fault_model()
    graph = (
        scenario.build_graph()
        if fresh
        else _family_graph(scenario.family, scenario.size, scenario.seed)
    )
    try:
        if fault.kind == "timeline":
            return _run_timeline_scenario(scenario, graph, fault, fresh=fresh)
        if fault.kind in ("cut", "add"):
            return _run_dynamic_scenario(scenario, graph, fault, fresh=fresh)
        if fault.kind == "shutdown":
            graph = shutdown_out_ports(
                graph, fault.param, seed=_derive_seed(scenario, "shutdown")
            )
    except ReproError:
        return _empty_result(scenario, graph, "infeasible")
    return _run_static_scenario(scenario, graph, fresh=fresh)


def _derive_backend_seed_key(scenario: Scenario) -> str:
    """The scenario fields that determine stochastic choices.

    Deliberately excludes the backend: backends are numerically identical,
    so a fault pattern must not change with the engine implementation.
    """
    return f"{scenario.family}|{scenario.size}|{scenario.fault}|{scenario.seed}"


def _empty_result(scenario: Scenario, graph: PortGraph, outcome: str) -> ScenarioResult:
    """A result shell for cells that produced no protocol run."""
    return ScenarioResult(
        scenario=scenario,
        outcome=outcome,
        num_nodes=graph.num_nodes,
        num_wires=graph.num_wires,
        diameter=0,
        ticks=0,
        drained_ticks=0,
        hops=0,
        rca_runs=0,
        bca_runs=0,
        by_family=(),
        episodes=(),
    )


def _derive_seed(scenario: Scenario, purpose: str) -> int:
    """A child seed unique to (scenario, purpose), stable across processes.

    Uses crc32, not ``hash()`` — builtin string hashing is randomized per
    interpreter, which would make fault patterns differ between workers
    and between invocations.  The backend is excluded on purpose: the same
    scenario on ``object`` and ``flat`` must see the same fault pattern,
    or backend parity could not even be stated.
    """
    key = f"{purpose}|{_derive_backend_seed_key(scenario)}"
    return zlib.crc32(key.encode()) & 0x7FFFFFFF


@lru_cache(maxsize=64)
def _family_graph(family: str, size: int, seed: int) -> PortGraph:
    """The per-worker memo of built (frozen, hence shareable) networks."""
    return build_family(family, size, seed)


def _healthy_run(family: str, size: int, seed: int, backend: str) -> TopologyResult:
    """The full healthy-network protocol run for a scenario key.

    This is the extension of the old ``_dynamic_baseline`` memo from
    ``(ticks, diameter)`` to the whole :class:`TopologyResult`: a ``none``
    static cell *is* the healthy run, so it and every dynamic cell of the
    same ``(family, size, seed, backend)`` now share one simulation
    instead of each paying their own.  Per worker process; the value is a
    pure function of the key, so caching cannot perturb determinism.
    (Backend parity makes the numbers backend-invariant, but keying on the
    backend keeps the cache correct by construction.)

    Memoized **by graph value**, not by seed: deterministic families
    (rings, tori, hypercubes…) build the same network for every seed, and
    the healthy run is a pure function of the graph — so a seed sweep over
    such a family pays for one baseline simulation, not one per seed.
    """
    graph = _family_graph(family, size, seed)
    return _healthy_run_for_graph(graph, backend)


@lru_cache(maxsize=32)
def _healthy_run_for_graph(graph: PortGraph, backend: str) -> TopologyResult:
    return determine_topology(graph, backend=backend, pool=_ENGINE_POOL)


def _static_result(scenario: Scenario, graph: PortGraph, result) -> ScenarioResult:
    return ScenarioResult(
        scenario=scenario,
        outcome="exact" if result.matches(graph) else "mismatch",
        num_nodes=graph.num_nodes,
        num_wires=graph.num_wires,
        diameter=result.diameter,
        ticks=result.ticks,
        drained_ticks=result.drained_ticks,
        hops=result.metrics.total_delivered,
        rca_runs=result.rca_runs,
        bca_runs=result.bca_runs,
        by_family=tuple(sorted(result.metrics.by_family().items())),
        episodes=tuple(_safe_episodes(result.transcript)),
    )


def _run_static_scenario(
    scenario: Scenario, graph: PortGraph, *, fresh: bool = False
) -> ScenarioResult:
    try:
        if fresh:
            result = determine_topology(graph, backend=scenario.backend)
        elif scenario.fault == "none":
            # the healthy cell is exactly the shared baseline run
            result = _healthy_run(
                scenario.family, scenario.size, scenario.seed, scenario.backend
            )
        else:
            # a degraded (shutdown) network: unique to this cell, but the
            # engine itself still comes from the per-worker pool
            result = determine_topology(
                graph, backend=scenario.backend, pool=_ENGINE_POOL
            )
    except TickBudgetExceeded:
        return _empty_result(scenario, graph, "deadlock")
    return _static_result(scenario, graph, result)


def _dynamic_baseline(
    scenario: Scenario, graph: PortGraph, *, fresh: bool = False
) -> tuple[int, int]:
    """(undisturbed ticks, diameter) for a scenario's healthy network."""
    if fresh:
        baseline = determine_topology(graph, backend=scenario.backend)
    else:
        baseline = _healthy_run(
            scenario.family, scenario.size, scenario.seed, scenario.backend
        )
    return baseline.ticks, baseline.diameter


def _run_dynamic_scenario(
    scenario: Scenario, graph: PortGraph, fault: FaultModel, *, fresh: bool = False
) -> ScenarioResult:
    baseline_ticks, diam = _dynamic_baseline(scenario, graph, fresh=fresh)
    when = int(baseline_ticks * fault.param)
    rng = make_rng(_derive_seed(scenario, fault.kind))
    if fault.kind == "cut":
        mutation = WireMutation(tick=when, kind="cut", wire=pick_cut_victim(graph, rng))
    else:
        mutation = WireMutation(tick=when, kind="add", wire=pick_free_wire(graph, rng))
    outcome = run_dynamic_gtd(
        graph,
        [mutation],
        max_ticks=baseline_ticks * 3 + 1000,
        backend=scenario.backend,
        pool=None if fresh else _ENGINE_POOL,
    )
    return ScenarioResult(
        scenario=scenario,
        outcome=outcome.outcome.value,
        num_nodes=graph.num_nodes,
        num_wires=graph.num_wires,
        diameter=diam,
        ticks=outcome.ticks,
        drained_ticks=outcome.ticks,
        hops=0,
        rca_runs=0,
        bca_runs=0,
        by_family=(),
        episodes=(),
        lost_characters=outcome.lost_characters,
    )


def _run_timeline_scenario(
    scenario: Scenario, graph: PortGraph, fault: FaultModel, *, fresh: bool = False
) -> ScenarioResult:
    """One perturbation-timeline cell: compile, run, classify per phase.

    The timeline is lowered with the scenario-derived seed and the measured
    undisturbed runtime as horizon, so the cell is a pure function of the
    scenario — backends excluded from the seed, exactly like the legacy
    dynamic cells, so object and flat runs see the same wire program.
    """
    assert fault.timeline is not None
    baseline_ticks, diam = _dynamic_baseline(scenario, graph, fresh=fresh)
    program = fault.timeline.compile(
        graph,
        horizon=baseline_ticks,
        seed=_derive_seed(scenario, "timeline"),
        root=0,
    )
    outcome = run_dynamic_gtd(
        graph,
        program,
        max_ticks=baseline_ticks * 3 + 1000,
        backend=scenario.backend,
        pool=None if fresh else _ENGINE_POOL,
    )
    return ScenarioResult(
        scenario=scenario,
        outcome=outcome.outcome.value,
        num_nodes=graph.num_nodes,
        num_wires=graph.num_wires,
        diameter=diam,
        ticks=outcome.ticks,
        drained_ticks=outcome.ticks,
        hops=outcome.hops,
        rca_runs=0,
        bca_runs=0,
        by_family=(),
        episodes=(),
        lost_characters=outcome.lost_characters,
        phase=outcome.phase,
    )


def _safe_episodes(transcript) -> list[RcaEpisode]:
    try:
        return rca_episodes(transcript)
    except TranscriptError:
        return []


# ----------------------------------------------------------------------
# failure capture: cells that error become structured results
# ----------------------------------------------------------------------
#: True in pool worker processes (set by :func:`_init_worker`).  Decides
#: what an injected corrupt-result does: in a worker it must escape to the
#: chunk shim so the *parent* sees a garbage payload; in the parent/serial
#: path there is no payload boundary to corrupt, so it quarantines directly.
_IN_WORKER = False


def _error_digest(kind: str, label: str, detail: str = "") -> str:
    """A short stable identifier for one cell failure.

    Hashes only process-invariant material — the kind, the scenario label
    and the exception-only rendering (never the full traceback, whose
    frames differ between a serial run and a pool worker) — so ``jobs=1``
    and ``jobs=N`` agree on the digest of a deterministic failure.
    """
    blob = f"{kind}\n{label}\n{detail}"
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _quarantine_result(
    scenario: Scenario, kind: str, detail: str = ""
) -> ScenarioResult:
    """The structured record of a cell the supervisor gave up on."""
    return ScenarioResult(
        scenario=scenario,
        outcome="error",
        num_nodes=0,
        num_wires=0,
        diameter=0,
        ticks=0,
        drained_ticks=0,
        hops=0,
        rca_runs=0,
        bca_runs=0,
        by_family=(),
        episodes=(),
        error=kind,
        error_digest=_error_digest(kind, scenario.label, detail),
    )


def _error_result(scenario: Scenario, exc: Exception) -> ScenarioResult:
    detail = "".join(traceback.format_exception_only(type(exc), exc)).strip()
    return _quarantine_result(scenario, type(exc).__name__, detail)


def _guarded_cell(scenario: Scenario) -> ScenarioResult:
    """Run one cell, converting any failure into an ``outcome="error"`` result.

    This is the per-cell failure domain: an exception out of
    :func:`run_scenario` (a protocol bug, a malformed family, an injected
    fault) is captured here — inside whatever process runs the cell — as a
    structured, storable record instead of unwinding the whole campaign.
    ``KeyboardInterrupt``/``SystemExit`` still propagate.  Faults that no
    ``except`` can capture (SIGKILL, OOM, a hang) are the *parent-side*
    supervisor's problem; see :func:`_run_supervised`.
    """
    try:
        maybe_inject(scenario)
        return run_scenario(scenario)
    except CorruptResultInjected:
        if _IN_WORKER:
            raise
        return _quarantine_result(scenario, "corrupt-result")
    except Exception as exc:
        return _error_result(scenario, exc)


# ----------------------------------------------------------------------
# the campaign runner
# ----------------------------------------------------------------------
#: The persistent worker pool: ``(start method, size, artifact library
#: root, Pool)`` or ``None``.  One pool is kept alive across
#: ``run_campaign`` invocations and reused whenever the requested method
#: matches, the size suffices, and the artifact library is the same —
#: sweep drivers calling ``run_campaign`` in a loop pay the
#: fork/spawn/import cost once, and the workers' scenario caches stay warm
#: between calls.
_WORKER_POOL: (
    tuple[str, int, str | None, str | None, "multiprocessing.pool.Pool"] | None
) = None

#: Per-worker profiling state (``campaign --profile``): the directory the
#: worker dumps its accumulated pstats into after every chunk, and the
#: process-lifetime profiler itself.  Both stay ``None`` in ordinary runs.
_PROFILE_DIR: str | None = None
_WORKER_PROFILER = None


def _init_worker(artifacts_root: str | None, profile_dir: str | None = None) -> None:
    """Pool initializer: configure the shared artifact library per worker.

    Runs in every worker at pool construction, whatever the start method —
    ``fork`` workers would inherit the parent's configuration anyway, but
    ``forkserver``/``spawn`` workers import this module fresh and must be
    told explicitly.  With a library configured, a worker's first touch of
    any wiring is an ``mmap`` load of the parent-prewarmed artifact (pages
    shared across the whole pool), not a compile.

    With ``profile_dir`` (``campaign --profile``), the worker also arms a
    process-lifetime :mod:`cProfile` profiler: every chunk runs under it,
    and after each chunk the accumulated stats are dumped to a per-pid
    file in ``profile_dir`` — dumps are snapshots, so whenever the parent
    reads the directory it sees each worker's complete profile so far.
    """
    global _IN_WORKER
    _IN_WORKER = True
    if profile_dir is not None:
        import cProfile

        global _PROFILE_DIR, _WORKER_PROFILER
        _PROFILE_DIR = profile_dir
        _WORKER_PROFILER = cProfile.Profile()
    if artifacts_root is not None:
        from repro.store.artifacts import configure_artifact_library

        configure_artifact_library(artifacts_root)
    # Warm the character kernel for the common degree bound up front:
    # every engine at a given delta shares one process-cached kernel
    # (dense convert/fill/predicate tables) and one interner whose
    # derived encode maps the packed wheel shares, so paying the
    # one-time table build at pool construction keeps it out of the
    # first cell's wall-clock.  ``fork`` workers inherit any further
    # deltas the parent prewarmed; spawn workers at least get the
    # delta-2 census every standard family uses.
    from repro.sim.characters import interner_for, kernel_for
    from repro.sim.flatcore import PackedEventWheel

    kernel_for(2)
    PackedEventWheel(interner_for(2))


def _resolve_start_method(start_method: str | None) -> str:
    """The multiprocessing start method a campaign pool should use.

    ``None`` picks ``fork`` where the platform still offers it (cheapest,
    and the historical behaviour) and otherwise falls back to the
    platform default — under Python 3.14+ that is ``forkserver``/``spawn``,
    which the executor supports identically: workers import this module by
    name and every scenario travels by value.
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            raise ReproError(
                f"unknown start method {start_method!r}; "
                f"this platform offers {methods}"
            )
        return start_method
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


def _worker_pool(
    workers: int,
    start_method: str | None,
    artifacts_root: str | None = None,
    profile_dir: str | None = None,
):
    """The persistent pool, (re)built only when method/size/library demand it.

    ``profile_dir`` joins the compatibility key: a profiled campaign never
    reuses unarmed workers, and the next unprofiled campaign rebuilds a
    clean pool rather than keep paying the profiler overhead.
    """
    global _WORKER_POOL
    method = _resolve_start_method(start_method)
    if _WORKER_POOL is not None:
        live_method, live_size, live_root, live_profile, pool = _WORKER_POOL
        if (
            live_method == method
            and live_size >= workers
            and live_root == artifacts_root
            and live_profile == profile_dir
        ):
            return pool
        shutdown_worker_pool()
    ctx = multiprocessing.get_context(method)
    pool = ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(artifacts_root, profile_dir),
    )
    _WORKER_POOL = (method, workers, artifacts_root, profile_dir, pool)
    return pool


def shutdown_worker_pool(timeout: float = 5.0) -> None:
    """Dispose of the persistent worker pool (tests, interpreter exit).

    Safe to call at any time; the next parallel ``run_campaign`` simply
    builds a fresh pool.  Terminates rather than drains — matching the old
    per-invocation ``with ctx.Pool(...)`` exit — so chunks abandoned by an
    error cannot block interpreter shutdown; results only ever live in the
    parent, so nothing of value is lost.

    The teardown is **bounded**: ``Pool.terminate()`` is graceful (it
    drains the task queue, sends sentinels, then SIGTERMs workers) but can
    block forever — a worker that died *holding the task-queue read lock*
    (SIGKILL mid-``recv``) deadlocks its ``_help_stuff_finish``, and a
    worker wedged in native code shrugs off SIGTERM.  So the graceful path
    runs on a watchdog thread with a ``timeout`` budget; if it overruns,
    every surviving worker is hard-killed (SIGKILL) and this function
    returns regardless — the ``atexit`` hook it serves as can therefore
    never hang interpreter exit.  (In the deadlocked-lock case the daemon
    thread stays parked on the orphaned semaphore until exit; that leaks a
    thread, not progress.)
    """
    global _WORKER_POOL
    if _WORKER_POOL is None:
        return
    pool = _WORKER_POOL[-1]
    _WORKER_POOL = None
    procs = list(getattr(pool, "_pool", None) or [])
    import threading

    waiter = threading.Thread(target=pool.terminate, daemon=True)
    waiter.start()
    waiter.join(timeout)
    if waiter.is_alive():
        for proc in procs:
            if proc.is_alive():
                proc.kill()
        waiter.join(timeout)
    if not waiter.is_alive():
        pool.join()


atexit.register(shutdown_worker_pool)


def clear_scenario_caches() -> None:
    """Reset every per-process scenario cache to cold (tests, benchmarks).

    Clears the graph and healthy-run memos, the engine pool, and the
    process-wide compiled-topology/interner caches.  Does not touch the
    persistent worker pool (their caches are per-worker; use
    :func:`shutdown_worker_pool` to recycle the workers themselves).
    """
    _family_graph.cache_clear()
    _healthy_run_for_graph.cache_clear()
    _ENGINE_POOL.clear()
    clear_compiled_cache()
    clear_interner_cache()


def _chunk_pending(
    pending: list[tuple[int, Scenario]],
    workers: int,
    lanes: int | None = None,
) -> list[list[tuple[int, Scenario]]]:
    """Group pending cells by setup key, preserving matrix order.

    Cells sharing a ``(family, size, seed, backend)`` key ride together:
    one pickle round-trip per chunk, and the worker that receives a chunk
    computes the shared setup (built graph, healthy-run baseline, pooled
    engine) once instead of racing its siblings to compute it redundantly.

    ``batch``-backend cells group by ``(family, size, backend)`` instead —
    the **seed axis is fused**: every seed of one cell shape rides in one
    chunk, which the worker runs as lock-step lanes of a single batched
    engine (see :func:`_run_batch_chunk`).  ``lanes`` caps how many cells
    fuse into one batched run (``None`` leaves the worker-balancing cap
    in charge).

    Chunks are additionally **capped** at roughly two chunks per worker:
    a fault-heavy matrix with few keys would otherwise collapse onto a
    couple of workers and idle the rest.  Splitting a key across chunks
    re-pays its baseline at most once per extra chunk — never worse than
    the old per-scenario dispatch, which split every key all the way down
    — and the finer grain also tightens the store's write-through
    granularity (results persist as each chunk completes).  Chunking is
    invisible in the results: each cell travels with its matrix index,
    and every lane of a fused chunk is byte-identical to its solo run.
    """
    groups: dict[tuple, list[tuple[int, Scenario]]] = {}
    for index, scenario in pending:
        seed_key = None if scenario.backend == "batch" else scenario.seed
        key = (scenario.family, scenario.size, seed_key, scenario.backend)
        groups.setdefault(key, []).append((index, scenario))
    cap = max(1, -(-len(pending) // (workers * 2)))
    chunks: list[list[tuple[int, Scenario]]] = []
    for key, group in groups.items():
        size = cap if key[2] is not None or not lanes else min(cap, lanes)
        for start in range(0, len(group), size):
            chunks.append(group[start:start + size])
    return chunks


def _coerce_artifacts(artifacts):
    """Accept an ArtifactLibrary, a path, or None (lazy import, like stores)."""
    if artifacts is None:
        return None
    from repro.store.artifacts import ArtifactLibrary

    if isinstance(artifacts, ArtifactLibrary):
        return artifacts
    return ArtifactLibrary(artifacts)


def _prewarm_artifacts(
    library, pending: list[tuple[int, Scenario]]
) -> tuple[int, list[tuple[str, int, int, str]]]:
    """Publish every distinct pending wiring to the library.

    Runs in the parent before dispatch, so workers receive chunks whose
    artifacts already exist on disk and every one of them — whatever its
    start method — reaches its first hop through an ``mmap`` load of the
    same physical pages.  Per distinct ``(family, size, seed)`` this is one
    ``stat`` when warm and one compile+publish when cold; shutdown cells
    derive per-cell degraded wirings inside the worker and fall through to
    the ordinary miss path there.

    Returns ``(published, skipped)``: the number of freshly published
    artifacts, and one ``(family, size, seed, reason)`` entry per wiring
    that could not be built — a typo'd family or infeasible size still
    reports per-cell inside the worker (as an ``"error"``/``"infeasible"``
    result), but the skip list surfaces it in the campaign summary instead
    of leaving the prewarm silently partial.
    """
    published = 0
    skipped: list[tuple[str, int, int, str]] = []
    seen: set[tuple[str, int, int]] = set()
    for _, scenario in pending:
        key = (scenario.family, scenario.size, scenario.seed)
        if key in seen:
            continue
        seen.add(key)
        try:
            graph = _family_graph(*key)
        except ReproError as exc:
            skipped.append((*key, str(exc)))
            continue
        _, fresh = library.ensure(graph)
        published += fresh
        # warm the parent's character kernel for this delta too: fork
        # workers inherit the built tables for free, and the v2 artifact
        # just published means even spawn workers mmap them back instead
        # of recomputing
        kernel_for(graph.delta)
    return published, skipped


def run_campaign(
    spec: CampaignSpec | Sequence[Scenario],
    *,
    jobs: int = 1,
    store=None,
    start_method: str | None = None,
    lanes: int | None = None,
    artifacts=None,
    profile_dir: str | None = None,
    policy: SupervisionPolicy | None = None,
) -> "CampaignResult":
    """Run every scenario of ``spec``; fan out over ``jobs`` processes.

    Results come back in matrix order regardless of ``jobs``; with the same
    spec they are identical value-for-value for any worker count — and for
    any ``start_method`` (``"fork"``, ``"forkserver"`` or ``"spawn"``;
    ``None`` prefers ``fork`` where available).  The worker pool is
    persistent: it survives this call and is reused by the next one with a
    compatible method/size, keeping per-worker caches warm across sweep
    loops (see the module docstring; :func:`shutdown_worker_pool` disposes
    of it).

    With ``store`` (a :class:`repro.store.ResultStore` or a path to one),
    the run becomes persistent and incremental: scenarios already recorded
    in the store are loaded instead of executed, and every fresh result is
    written through **as its chunk completes** — so an interrupted campaign
    keeps its finished prefix and a re-run with the same store executes
    only the remainder.  Because :func:`run_scenario` is a pure function of
    the scenario, a loaded record equals the re-run result value-for-value
    and the resumed campaign's aggregate is byte-identical to an
    uninterrupted one.  (Corollary: a store outlives code changes — after
    editing the protocol or the engine, start a fresh store rather than
    resuming into results computed by older code.)

    With ``artifacts`` (a :class:`repro.store.ArtifactLibrary` or a path to
    one), compiled topologies persist across processes and campaigns: the
    parent prewarms the library with every distinct pending wiring, workers
    are initialized to read through it, and each worker's first touch of a
    wiring is a zero-copy ``mmap`` load instead of a compile — the whole
    pool shares one physical copy of each table set.  Like the result
    store, the library never changes a result's value: artifacts are pure
    functions of the wiring, byte-validated on load.

    With ``profile_dir`` (the ``campaign --profile`` plumbing), parallel
    workers are armed with per-process :mod:`cProfile` profilers and dump
    per-pid pstats snapshots into the directory after every chunk; the
    caller aggregates them with :class:`pstats.Stats` afterwards.  The
    serial path ignores it — everything already runs in the caller's
    process, under whatever profiler the caller armed.

    ``policy`` (default :class:`SupervisionPolicy()
    <repro.campaigns.spec.SupervisionPolicy>`) governs the failure paths:
    a cell that raises becomes a ``ScenarioResult(outcome="error")`` with a
    deterministic error kind + digest; in parallel runs a worker that dies
    (SIGKILL, OOM) or wedges past its chunk deadline costs a pool rebuild
    and a bounded retry, the failing chunk is bisected until the poison
    cell is isolated and quarantined, and every *other* cell completes
    value-identical to a fault-free run.  Under
    ``policy.on_error == "raise"`` the first failing cell instead aborts
    the campaign with :class:`~repro.errors.ScenarioExecutionError` —
    the historical behaviour.  Supervision never touches a healthy cell,
    so ``jobs=1 ≡ jobs=N`` and store resumability hold unchanged.
    """
    scenarios = spec.scenarios() if isinstance(spec, CampaignSpec) else list(spec)
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    policy = policy if policy is not None else SupervisionPolicy()
    store = _coerce_store(store)
    artifacts = _coerce_artifacts(artifacts)
    slots: list[ScenarioResult | None] = [None] * len(scenarios)
    pending: list[tuple[int, Scenario]] = []
    for index, scenario in enumerate(scenarios):
        hit = store.get(scenario) if store is not None else None
        if hit is not None:
            slots[index] = hit
        else:
            pending.append((index, scenario))
    prewarm_skipped: list[tuple[str, int, int, str]] = []
    if artifacts is not None and pending:
        from repro.store.artifacts import configure_artifact_library

        _, prewarm_skipped = _prewarm_artifacts(artifacts, pending)
        configure_artifact_library(artifacts)  # serial path + fork workers

    delivered: set[int] = set()

    def deliver(index: int, result: ScenarioResult) -> None:
        # The single result sink for every execution path.  Idempotent per
        # cell: a chunk requeued by the supervisor that turns out to have
        # finished anyway cannot double-append to the store.
        if index in delivered:
            return
        if policy.on_error == "raise" and result.outcome == "error":
            raise ScenarioExecutionError(
                result.scenario.label, result.error, result.error_digest
            )
        delivered.add(index)
        if store is not None:
            store.put(result)
        slots[index] = result

    # Clamp the pool to the actual work: jobs > len(pending) would spawn
    # workers that fork, import, and exit without ever running a scenario.
    workers = min(jobs, len(pending))
    if workers <= 1:
        # The serial path routes through the same chunker and chunk runner
        # as the parallel one: batch-backend cells fuse into lane runs for
        # any ``jobs``, and ``jobs=1 ≡ jobs=N`` stays a statement about one
        # code path rather than two.  A chunk that raises (or returns a
        # corrupted payload — both only reachable through the lane path,
        # since scalar cells are guarded individually) falls back to
        # guarded per-cell execution, exactly what the parallel supervisor
        # converges to by bisection.
        for chunk in _chunk_pending(pending, 1, lanes):
            batch = None
            try:
                batch = _run_chunk(chunk)
            except Exception:
                batch = None
            if batch is None or not _chunk_payload_valid(chunk, batch):
                batch = [(index, _guarded_cell(s)) for index, s in chunk]
            for index, result in batch:
                deliver(index, result)
    else:
        try:
            _run_supervised(
                _chunk_pending(pending, workers, lanes),
                workers=workers,
                start_method=start_method,
                artifacts_root=str(artifacts.root) if artifacts is not None else None,
                profile_dir=profile_dir,
                policy=policy,
                deliver=deliver,
            )
        except BaseException:
            # A strict-mode abort (or Ctrl-C) leaves queued work behind,
            # and the persistent pool would keep grinding through it in
            # the background.  Terminate it — restoring the old
            # per-invocation `with ctx.Pool(...)` exit behaviour — and let
            # the next run_campaign build a fresh pool.
            shutdown_worker_pool()
            raise
    return CampaignResult(results=slots, prewarm_skipped=tuple(prewarm_skipped))


# ----------------------------------------------------------------------
# the supervisor: deadlines, crash isolation, retry/bisect quarantine
# ----------------------------------------------------------------------
@dataclass
class _ChunkTask:
    """One dispatchable unit of supervised work and its failure history.

    ``failures`` counts only *attributed* attempts — a chunk that was
    merely in flight when the pool died for someone else's sins is
    requeued penalty-free (see the suspects protocol in
    :func:`_run_supervised`).  ``kind``/``detail`` remember the most
    recent failure so the eventual quarantine record names it.
    """

    cells: list[tuple[int, Scenario]]
    failures: int = 0
    kind: str = ""
    detail: str = ""


def _chunk_payload_valid(
    cells: list[tuple[int, Scenario]], payload
) -> bool:
    """Whether a chunk's returned payload is structurally trustworthy.

    A worker that lies (bit flips, a fault-injected corrupt result, a
    partially unpickled object) must not poison the store: the payload has
    to be a list of ``(index, ScenarioResult)`` pairs covering *exactly*
    the dispatched cells, each result claiming the scenario that was asked
    for.  Values are not re-derived — that would mean re-running the cell
    — but identity and shape are fully checked.
    """
    if not isinstance(payload, list) or len(payload) != len(cells):
        return False
    expected = dict(cells)
    seen: set[int] = set()
    for item in payload:
        if not isinstance(item, tuple) or len(item) != 2:
            return False
        index, result = item
        if index in seen or index not in expected:
            return False
        if not isinstance(result, ScenarioResult):
            return False
        if result.scenario != expected[index]:
            return False
        seen.add(index)
    return True


def _pool_pids(pool) -> frozenset[int]:
    return frozenset(p.pid for p in list(getattr(pool, "_pool", None) or []))


def _pool_broken(pool, known_pids: frozenset[int]) -> bool:
    """Whether any worker of ``pool`` died since ``known_pids`` was taken.

    ``multiprocessing.Pool``'s maintenance thread silently *replaces* a
    killed worker — the pool looks healthy again moments later, but the
    task the dead worker held is gone forever and its result will never
    arrive.  Comparing live pids against the snapshot catches the
    replacement; the ``is_alive`` sweep catches the window before it.
    """
    procs = list(getattr(pool, "_pool", None) or [])
    if not procs:
        return True
    if frozenset(p.pid for p in procs) != known_pids:
        return True
    return any(not p.is_alive() for p in procs)


def _run_supervised(
    chunks: list[list[tuple[int, Scenario]]],
    *,
    workers: int,
    start_method: str | None,
    artifacts_root: str | None,
    profile_dir: str | None,
    policy: SupervisionPolicy,
    deliver: Callable[[int, ScenarioResult], None],
) -> None:
    """Dispatch ``chunks`` over the persistent pool under supervision.

    The healthy path is just ``apply_async`` with completion callbacks
    feeding an event queue — no polling cost beyond a ``Queue.get`` that
    parks the parent between results, and the persistent pool is reused
    untouched.  The failure paths form a small state machine:

    * **worker death** (SIGKILL/OOM — detected by pid-set drift, since the
      pool silently replaces dead workers while losing their tasks): drain
      already-completed results, then — if exactly one chunk was in flight
      — charge it a failure; otherwise *every* in-flight chunk becomes a
      penalty-free **suspect** and suspects run one at a time, so the next
      death attributes with certainty and innocent chunks are never
      quarantined for flying alongside a crasher.
    * **deadline**: a chunk outliving ``cell_timeout × cells + grace`` is
      presumed wedged and self-attributes; other in-flight chunks requeue
      penalty-free.  Either way the pool is recycled (with exponential
      backoff) because the worker holding the lost/wedged task is
      unaccountable.
    * **corrupt payload / worker-side infrastructure error**: attributed
      directly (the payload maps to its chunk); no rebuild — the pool is
      alive and honest workers keep their caches.
    * a chunk whose attributed ``failures`` exceed ``max_retries`` is
      **bisected**; at a single cell it is **quarantined** via
      ``deliver`` as ``ScenarioResult(outcome="error")``.
    * ``max_pool_rebuilds`` consecutive rebuilds *without forward
      progress* (no delivery, no quarantine) degrade the remainder to
      guarded serial in-parent execution: no crash isolation anymore, but
      an environment where pools cannot live still yields a complete
      campaign.
    """
    todo: deque[_ChunkTask] = deque(_ChunkTask(cells=list(c)) for c in chunks)
    suspects: deque[_ChunkTask] = deque()
    in_flight: dict[int, tuple[_ChunkTask, float | None]] = {}
    events: queue_mod.Queue = queue_mod.Queue()
    tids = itertools.count()
    generation = 0
    rebuilds = 0  # pool breakages since the last delivery or quarantine
    pool = _worker_pool(workers, start_method, artifacts_root, profile_dir)
    known_pids = _pool_pids(pool)

    def submit(task: _ChunkTask) -> None:
        tid = next(tids)
        gen = generation

        def on_done(payload, _tid=tid, _gen=gen):
            events.put((_gen, _tid, payload, None))

        def on_err(exc, _tid=tid, _gen=gen):
            events.put((_gen, _tid, None, exc))

        budget = policy.chunk_deadline_seconds(len(task.cells))
        expiry = None if budget is None else time.monotonic() + budget
        in_flight[tid] = (task, expiry)
        pool.apply_async(
            _run_chunk, (task.cells,), callback=on_done, error_callback=on_err
        )

    def pump() -> None:
        # Suspects run strictly solo (and only once the lanes are clear),
        # so any further pool death is attributable.  The in-flight cap of
        # ``workers`` keeps every submitted chunk on a real worker, which
        # is what makes its deadline a statement about execution time.
        if suspects:
            if not in_flight:
                submit(suspects.popleft())
        else:
            while todo and len(in_flight) < workers:
                submit(todo.popleft())

    def fail(task: _ChunkTask, kind: str, detail: str = "") -> None:
        nonlocal rebuilds
        task.failures += 1
        task.kind, task.detail = kind, detail
        if task.failures <= policy.max_retries:
            suspects.append(task)
            return
        if len(task.cells) > 1:
            mid = len(task.cells) // 2
            suspects.append(_ChunkTask(cells=task.cells[:mid]))
            suspects.append(_ChunkTask(cells=task.cells[mid:]))
            return
        ((index, scenario),) = task.cells
        deliver(index, _quarantine_result(scenario, kind, detail))
        rebuilds = 0

    def handle(gen: int, tid: int, payload, exc) -> None:
        nonlocal rebuilds
        if gen != generation or tid not in in_flight:
            return  # stale: predates a rebuild, or the task was requeued
        task, _ = in_flight.pop(tid)
        if exc is not None:
            fail(task, type(exc).__name__, str(exc))
        elif not _chunk_payload_valid(task.cells, payload):
            fail(task, "corrupt-result")
        else:
            for index, result in payload:
                deliver(index, result)
            rebuilds = 0

    def rebuild() -> bool:
        """Replace the broken pool; False once the rebuild budget is spent."""
        nonlocal pool, known_pids, generation, rebuilds
        generation += 1  # orphan every callback armed against the old pool
        rebuilds += 1
        shutdown_worker_pool()
        if rebuilds > policy.max_pool_rebuilds:
            return False
        backoff = policy.rebuild_backoff(rebuilds)
        if backoff:
            time.sleep(backoff)
        pool = _worker_pool(workers, start_method, artifacts_root, profile_dir)
        known_pids = _pool_pids(pool)
        return True

    degraded = False
    while todo or suspects or in_flight:
        if degraded:
            # Last resort: guarded, cell-at-a-time, in this process.  No
            # isolation from a crashing cell anymore, but deterministic
            # failures still quarantine and the campaign completes.
            leftovers = list(suspects) + list(todo)
            suspects.clear()
            todo.clear()
            for task in leftovers:
                for index, scenario in task.cells:
                    deliver(index, _guarded_cell(scenario))
            break
        pump()
        try:
            event = events.get(timeout=policy.liveness_interval)
        except queue_mod.Empty:
            event = None
        if event is not None:
            handle(*event)
            continue
        if not in_flight:
            continue
        now = time.monotonic()
        expired = [
            tid
            for tid, (_, expiry) in in_flight.items()
            if expiry is not None and now >= expiry
        ]
        if expired:
            hung = [in_flight.pop(tid)[0] for tid in expired]
            innocents = [in_flight.pop(tid)[0] for tid in list(in_flight)]
            todo.extendleft(reversed(innocents))
            for task in hung:
                fail(task, "deadline")
            if not rebuild():
                degraded = True
            continue
        if _pool_broken(pool, known_pids):
            # Salvage everything the pool finished before it broke: those
            # callbacks already ran, their events are sitting in the queue.
            while True:
                try:
                    handle(*events.get_nowait())
                except queue_mod.Empty:
                    break
            if len(in_flight) == 1:
                ((task, _),) = in_flight.values()
                in_flight.clear()
                fail(task, "worker-crash")
            else:
                for tid in list(in_flight):
                    suspects.append(in_flight.pop(tid)[0])
            if not rebuild():
                degraded = True


def _run_chunk(
    chunk: list[tuple[int, Scenario]],
) -> list[tuple[int, "ScenarioResult"]]:
    """Worker shim: one pickle round-trip per setup-key group of cells.

    A multi-cell ``batch``-backend chunk takes the fused path: its dynamic
    and timeline cells run as lock-step lanes of one batched engine.  In a
    profiling-armed worker (``campaign --profile``), the chunk runs under
    the worker's process-lifetime profiler and the accumulated stats are
    re-dumped afterwards — so the per-pid stats file is always a complete
    snapshot, even if the pool is terminated between chunks.

    An injected corrupt-result (:mod:`repro.campaigns.faultinject`) escapes
    the per-cell guard inside a pool worker and is converted *here* into a
    deliberately malformed payload — exercising the parent's payload
    validation, the thing a genuinely lying worker would hit.
    """
    profiler = _WORKER_PROFILER
    try:
        if profiler is None:
            return _run_chunk_cells(chunk)
        profiler.enable()
        try:
            return _run_chunk_cells(chunk)
        finally:
            profiler.disable()
            profiler.dump_stats(
                os.path.join(_PROFILE_DIR, f"worker-{os.getpid()}.pstats")
            )
    except CorruptResultInjected:
        return [("corrupted-payload", None)]  # type: ignore[list-item]


def _run_chunk_cells(
    chunk: list[tuple[int, Scenario]],
) -> list[tuple[int, "ScenarioResult"]]:
    if len(chunk) > 1 and all(s.backend == "batch" for _, s in chunk):
        return _run_batch_chunk(chunk)
    return [(index, _guarded_cell(scenario)) for index, scenario in chunk]


@dataclass(frozen=True)
class _LanePlan:
    """One batch-chunk cell, lowered and ready to ride a lane.

    ``eff_ops`` is what the engine actually consumes: the cell's wire-op
    program, reduced to ``()`` when every op lands strictly after the
    undisturbed terminal tick (the run stops at the terminal before any of
    them can fire; an op at *exactly* the terminal tick does fire, hence
    strictly).  Cells with equal ``(eff_ops, budget)`` on one graph are
    byte-identical runs, so they share a single lane — ``program`` (the
    cell's own compiled timeline, or ``None`` for legacy cut/add cells)
    stays per-cell because phase attribution is a label over the shared
    tick count, not part of the simulation.
    """

    index: int
    scenario: Scenario
    graph: PortGraph
    diameter: int
    budget: int
    eff_ops: tuple[WireMutation, ...]
    program: object  # TimelineProgram | None


def _run_batch_chunk(
    chunk: list[tuple[int, Scenario]],
) -> list[tuple[int, "ScenarioResult"]]:
    """Run one fused batch chunk: shared cells solo, lane cells lock-step.

    Static cells (``none``/``shutdown``) have no wire-op axis to fuse and
    take the ordinary :func:`run_scenario` path (the ``none`` cell *is* the
    shared healthy baseline, so it is computed once either way).  Dynamic
    and timeline cells are lowered to per-cell wire-op programs and handed
    to :func:`_execute_lane_plans`.  Results carry their matrix indices, so
    callers see nothing of the fusion — each cell's result is
    value-identical to its solo ``run_scenario``.
    """
    out: list[tuple[int, ScenarioResult]] = []
    lane_cells: list[tuple[int, Scenario, FaultModel]] = []
    for index, scenario in chunk:
        fault = scenario.fault_model()
        if fault.kind in ("cut", "add", "timeline"):
            lane_cells.append((index, scenario, fault))
        else:
            out.append((index, _guarded_cell(scenario)))
    out.extend(_execute_lane_plans(lane_cells))
    return out


def _execute_lane_plans(
    cells: list[tuple[int, Scenario, FaultModel]],
) -> list[tuple[int, "ScenarioResult"]]:
    """Lower, cohort, and run a batch chunk's dynamic cells as lanes.

    Lowering mirrors :func:`_run_dynamic_scenario` /
    :func:`_run_timeline_scenario` exactly — same derived seeds, same
    horizon, same budget — so each lane's wire-op program is the one its
    solo run would execute.  Cells sharing a graph **by value** run in one
    batched engine — a deterministic family builds the same network for
    every seed, so the seed axis collapses onto one graph group — and
    within a group, cells whose ``(eff_ops, budget)`` coincide share a
    single lane and fan the one
    :class:`~repro.dynamics.experiment.DynamicRunResult` back out to every
    member (first-seen cohort order keeps lane assignment deterministic).
    That is where fusion beats the solo path outright: seed-invariant
    programs (``cut:1.5``-style post-terminal ops reduced to ``()``,
    ``frontier:k`` cuts that depend only on the graph) simulate once per
    graph instead of once per seed.
    """
    results: list[tuple[int, ScenarioResult]] = []
    by_graph: dict[PortGraph, list[_LanePlan]] = {}
    for index, scenario, fault in cells:
        maybe_inject(scenario)  # lane cells are fault-injectable too
        graph = _family_graph(scenario.family, scenario.size, scenario.seed)
        try:
            baseline_ticks, diam = _dynamic_baseline(scenario, graph)
            if fault.kind == "timeline":
                assert fault.timeline is not None
                program = fault.timeline.compile(
                    graph,
                    horizon=baseline_ticks,
                    seed=_derive_seed(scenario, "timeline"),
                    root=0,
                )
                ops: tuple[WireMutation, ...] = program.ops
            else:
                when = int(baseline_ticks * fault.param)
                rng = make_rng(_derive_seed(scenario, fault.kind))
                wire = (
                    pick_cut_victim(graph, rng)
                    if fault.kind == "cut"
                    else pick_free_wire(graph, rng)
                )
                program = None
                ops = (WireMutation(tick=when, kind=fault.kind, wire=wire),)
        except ReproError:
            results.append((index, _empty_result(scenario, graph, "infeasible")))
            continue
        post_terminal = ops and min(op.tick for op in ops) > baseline_ticks
        plan = _LanePlan(
            index=index,
            scenario=scenario,
            graph=graph,
            diameter=diam,
            budget=baseline_ticks * 3 + 1000,
            eff_ops=() if post_terminal else ops,
            program=program,
        )
        by_graph.setdefault(graph, []).append(plan)
    for graph, plans in by_graph.items():
        cohorts: dict[tuple, list[_LanePlan]] = {}
        for plan in plans:
            cohorts.setdefault((plan.eff_ops, plan.budget), []).append(plan)
        reps = [members[0] for members in cohorts.values()]
        outcomes = run_dynamic_gtd_lanes(
            graph,
            [rep.eff_ops for rep in reps],
            [rep.budget for rep in reps],
            pool=_ENGINE_POOL,
        )
        for members, outcome in zip(cohorts.values(), outcomes):
            for plan in members:
                results.append((plan.index, _lane_result(plan, outcome)))
    return results


def _lane_result(plan: _LanePlan, outcome) -> "ScenarioResult":
    """One lane's DynamicRunResult, reduced exactly like its solo path."""
    graph = plan.graph
    timeline_cell = plan.program is not None
    return ScenarioResult(
        scenario=plan.scenario,
        outcome=outcome.outcome.value,
        num_nodes=graph.num_nodes,
        num_wires=graph.num_wires,
        diameter=plan.diameter,
        ticks=outcome.ticks,
        drained_ticks=outcome.ticks,
        hops=outcome.hops if timeline_cell else 0,
        rca_runs=0,
        bca_runs=0,
        by_family=(),
        episodes=(),
        lost_characters=outcome.lost_characters,
        phase=plan.program.phase_at(outcome.ticks) if timeline_cell else "",
    )


def _coerce_store(store):
    """Accept a ResultStore, a path, or None.

    Imported lazily: :mod:`repro.store` depends on this module for the
    :class:`ScenarioResult` shape, so the import must not run at module
    load time.
    """
    if store is None:
        return None
    from repro.store import ResultStore

    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)


@dataclass
class CampaignResult:
    """All scenario results of one campaign, in matrix order."""

    results: list[ScenarioResult]
    #: wirings the artifact prewarm could not build, as
    #: ``(family, size, seed, reason)`` — ``()`` when every wiring
    #: published (or no artifact library was in play).
    prewarm_skipped: tuple[tuple[str, int, int, str], ...] = field(default=())

    def __len__(self) -> int:
        return len(self.results)

    def quarantined(self) -> list[ScenarioResult]:
        """Cells the supervisor recorded as ``outcome="error"``."""
        return [r for r in self.results if r.outcome == "error"]

    # -- aggregation into the run_stats shapes --------------------------
    def episodes(self) -> list[RcaEpisode]:
        """Every RCA episode observed across the whole campaign."""
        return [ep for r in self.results for ep in r.episodes]

    def episode_fit(self) -> FitResult:
        """Lemma 4.3 across the matrix: episode duration vs loop length."""
        return episode_scaling(self.episodes())

    def series(
        self,
        *,
        x: Callable[[ScenarioResult], float] = lambda r: r.work,
        y: Callable[[ScenarioResult], float] = lambda r: r.ticks,
        group: Callable[[ScenarioResult], str] = lambda r: r.scenario.family,
    ) -> dict[str, tuple[list[float], list[float]]]:
        """Per-group (xs, ys) series, e.g. for scaling fits per family."""
        out: dict[str, tuple[list[float], list[float]]] = {}
        for r in self.results:
            xs, ys = out.setdefault(group(r), ([], []))
            xs.append(x(r))
            ys.append(y(r))
        return out

    def outcome_counts(self) -> dict[str, int]:
        """How many scenarios ended in each outcome."""
        return dict(Counter(r.outcome for r in self.results))

    def stats(self) -> CampaignStats:
        """The order-insensitive campaign aggregate.

        Shares :func:`repro.analysis.run_stats.aggregate_stats` with
        :meth:`repro.store.ResultStore.stats`, so a live campaign and the
        same matrix read back from a store aggregate byte-identically.
        """
        return aggregate_stats(self.results)

    # -- presentation ----------------------------------------------------
    def table_rows(self) -> list[tuple]:
        return [
            (
                r.scenario.label,
                r.num_nodes,
                r.num_wires,
                r.diameter,
                r.ticks,
                r.hops,
                r.outcome,
            )
            for r in self.results
        ]

    def summary(self) -> str:
        """A paper-style table of the whole campaign."""
        title = f"campaign: {len(self.results)} scenarios, outcomes {self.outcome_counts()}"
        if self.prewarm_skipped:
            title += f", prewarm skipped {len(self.prewarm_skipped)} wiring(s)"
        return format_table(
            ["scenario", "N", "E", "D", "ticks", "hops", "outcome"],
            self.table_rows(),
            title=title,
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize every scenario result (episodes included) to JSON."""
        doc = {
            "format": "repro.campaign-result/v1",
            "scenarios": [asdict(r) for r in self.results],
            "outcomes": self.outcome_counts(),
        }
        return json.dumps(doc, indent=indent)
