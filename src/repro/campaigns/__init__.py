"""Layer 3 — declarative scenario campaigns over the simulation stack.

A *campaign* is a matrix of scenarios — network family × size ×
fault model × seed — executed over the shared run-orchestration layer
(:mod:`repro.sim.run`) and aggregated into the statistics shapes of
:mod:`repro.analysis.run_stats`.  The executor runs scenarios serially or
fans them out over a :mod:`multiprocessing` pool; every scenario is
seeded from its own declaration, so a parallel campaign produces results
identical, scenario for scenario, to the serial run of the same matrix.

The benchmark sweeps (E3 scaling, E9 traffic, E11 dynamics), the examples
and the ``repro-topology campaign`` CLI subcommand are all one-liners over
this machinery.

Quickstart::

    from repro.campaigns import CampaignSpec, run_campaign

    spec = CampaignSpec(
        families=("de-bruijn", "torus"),
        sizes=(8, 16),
        faults=("none", "shutdown:0.1"),
        seeds=(0, 1, 2),
    )
    campaign = run_campaign(spec, jobs=4)
    print(campaign.summary())
"""

from repro.campaigns.spec import (
    FAMILY_BUILDERS,
    CampaignSpec,
    FaultModel,
    Scenario,
    SupervisionPolicy,
    build_family,
    parse_fault,
)
from repro.campaigns.executor import (
    CampaignResult,
    ScenarioResult,
    run_campaign,
    run_scenario,
)

__all__ = [
    "FAMILY_BUILDERS",
    "CampaignSpec",
    "FaultModel",
    "Scenario",
    "SupervisionPolicy",
    "build_family",
    "parse_fault",
    "CampaignResult",
    "ScenarioResult",
    "run_campaign",
    "run_scenario",
]
