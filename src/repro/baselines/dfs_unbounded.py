"""Unbounded-memory DFS token mapper.

The idealized version of the paper's DFS skeleton: a single token walks the
network depth-first, but (a) it carries an unbounded log of everything it
has seen, and (b) it may traverse edges *backwards* for free (one step).
This isolates what the paper's machinery is actually paying for: the O(D)
RCA per edge event (reporting to the root with constant-size characters)
and the O(D) BCA per backtrack (no free reverse traversal) turn this
baseline's O(E) steps into the protocol's O(N * D) ticks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.portgraph import PortGraph, Wire

__all__ = ["UnboundedDfsResult", "unbounded_dfs_map"]


@dataclass(frozen=True)
class UnboundedDfsResult:
    """Outcome of the unbounded-memory DFS walk.

    Attributes:
        steps: token moves (forward edge traversals + free backtracks).
        forward_traversals: forward edge traversals (= number of wires).
        wires: the recovered wire set.
    """

    steps: int
    forward_traversals: int
    wires: frozenset[Wire]

    def matches(self, truth: PortGraph) -> bool:
        """Whether the recovered wire set is exactly the true one."""
        return self.wires == truth.edge_set()


def unbounded_dfs_map(graph: PortGraph, *, root: int = 0) -> UnboundedDfsResult:
    """Walk ``graph`` depth-first with an omniscient token and map it.

    Mirrors the paper's DFS order exactly (lowest-numbered unfinished
    out-port first, §3.1) so its ``forward_traversals`` equals the number
    of FORWARD tokens the real protocol sends — each wire exactly once.
    """
    seen = {root}
    wires: set[Wire] = set()
    steps = 0
    forward = 0
    stack: list[tuple[int, list[Wire], int]] = [(root, graph.successors(root), 0)]
    while stack:
        node, succs, idx = stack.pop()
        if idx < len(succs):
            stack.append((node, succs, idx + 1))
            wire = succs[idx]
            steps += 1
            forward += 1
            wires.add(wire)
            if wire.dst not in seen:
                seen.add(wire.dst)
                stack.append((wire.dst, graph.successors(wire.dst), 0))
            else:
                steps += 1  # immediate free backtrack
        elif stack:
            steps += 1  # free backtrack to the parent on the stack
    return UnboundedDfsResult(
        steps=steps, forward_traversals=forward, wires=frozenset(wires)
    )
