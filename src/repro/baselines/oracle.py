"""The oracle mapper: read the adjacency directly.

Zero-cost ground truth used to sanity-check the comparison harness (any
mapper's output must equal the oracle's).
"""

from __future__ import annotations

from repro.topology.portgraph import PortGraph, Wire

__all__ = ["oracle_map"]


def oracle_map(graph: PortGraph) -> frozenset[Wire]:
    """Return the exact wire set of ``graph`` (the answer key)."""
    return graph.edge_set()
