"""Idealized echo mapper: unique IDs + unbounded messages.

This is the classic flood/convergecast ("echo") algorithm — *with the
restrictions the paper removes put back in*: every processor knows a
globally unique identifier and may transmit an arbitrarily large message per
round.  On a strongly-connected digraph the backward (convergecast) phase
cannot retrace parent pointers (edges are one-way), so each processor
re-floods its accumulated knowledge whenever it learns something new; the
process is a monotone fixpoint that completes the root's knowledge within
O(D) propagation waves (O(D^2) rounds worst case, typically ~2D).

Knowledge sets grow to Θ(E) entries, i.e. messages of Θ(N log N) bits —
exactly what finite-state processors with constant-size characters cannot
send.  The paper's protocol pays O(N * D) ticks of constant-size characters
instead; the E8 benchmark tabulates the trade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.topology.portgraph import PortGraph, Wire

__all__ = ["EchoMapperResult", "echo_map"]


@dataclass(frozen=True)
class EchoMapperResult:
    """Outcome of the idealized echo mapping.

    Attributes:
        rounds: synchronous rounds until no knowledge moved anywhere (the
            root's map is complete by then).
        wires: the recovered wire set (exact, with true node ids — this
            baseline is allowed to use them).
        max_message_entries: the largest message (in wire-entries) any
            processor sent in one round — the unboundedness the paper's
            model forbids.
        total_entries_sent: total wire-entries transmitted (message volume).
    """

    rounds: int
    wires: frozenset[Wire]
    max_message_entries: int
    total_entries_sent: int

    def matches(self, truth: PortGraph) -> bool:
        """Whether the recovered wire set is exactly the true one."""
        return self.wires == truth.edge_set()


def echo_map(
    graph: PortGraph, *, root: int = 0, max_rounds: int | None = None
) -> EchoMapperResult:
    """Map ``graph`` with the idealized unbounded-message echo algorithm.

    Every processor initially knows its own out-wires.  Each round, every
    processor that learned something new last round (the root counts as
    freshly woken in round 1) sends its entire knowledge set through every
    out-port.  The fixpoint leaves the root knowing every wire: each
    processor's out-wires enter circulation the first time a message reaches
    it, and strong connectivity carries everything to the root.
    """
    n = graph.num_nodes
    budget = max_rounds or (4 * n + 16)
    knowledge: list[set[Wire]] = [set(graph.successors(u)) for u in range(n)]
    active = {root}
    rounds = 0
    max_msg = 0
    total_sent = 0
    while active:
        if rounds >= budget:
            raise SimulationError(f"echo mapper exceeded {budget} rounds")
        rounds += 1
        outgoing: list[tuple[int, frozenset[Wire]]] = []
        for u in sorted(active):
            message = frozenset(knowledge[u])
            max_msg = max(max_msg, len(message))
            for wire in graph.successors(u):
                outgoing.append((wire.dst, message))
                total_sent += len(message)
        learned: set[int] = set()
        for dst, message in outgoing:
            if not message <= knowledge[dst]:
                knowledge[dst] |= message
                learned.add(dst)
        active = learned
    if len(knowledge[root]) != graph.num_wires:
        raise SimulationError(
            f"echo mapper converged with incomplete root knowledge "
            f"({len(knowledge[root])}/{graph.num_wires} wires)"
        )
    return EchoMapperResult(
        rounds=rounds,
        wires=frozenset(knowledge[root]),
        max_message_entries=max_msg,
        total_entries_sent=total_sent,
    )
