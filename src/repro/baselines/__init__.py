"""Baseline topology mappers the paper's protocol is compared against.

The paper's protocol is the answer to a *constrained* problem: anonymous
finite-state processors, constant-size messages, unidirectional wires.  The
baselines relax those constraints one at a time so the E8 benchmark can show
what each restriction costs:

* :mod:`~repro.baselines.echo_mapper` — processors have unique IDs and may
  send unbounded messages: a synchronous echo (flood-and-convergecast)
  maps the network in ``O(D)`` rounds but with messages of
  ``Θ(N log N)`` bits;
* :mod:`~repro.baselines.dfs_unbounded` — a sequential DFS token with
  unbounded memory and free backward traversal: ``O(E)`` steps, the
  idealized version of the paper's DFS skeleton;
* :mod:`~repro.baselines.oracle` — reads the adjacency directly (zero
  cost); used to sanity-check the comparison harness itself.
"""

from repro.baselines.echo_mapper import EchoMapperResult, echo_map
from repro.baselines.dfs_unbounded import UnboundedDfsResult, unbounded_dfs_map
from repro.baselines.oracle import oracle_map

__all__ = [
    "echo_map",
    "EchoMapperResult",
    "unbounded_dfs_map",
    "UnboundedDfsResult",
    "oracle_map",
]
