"""The persistent compiled-artifact library: mmap-shared CSR topologies.

:mod:`repro.topology.compile` lowers a frozen
:class:`~repro.topology.portgraph.PortGraph` into dense ``array('q')``
wire/CSR tables — a pure function of the wiring, cached process-wide.
That cache dies with the process: every fresh worker, CLI invocation and
CI leg recompiles artifacts it has compiled a thousand times before.
This module is the on-disk tier below that cache.

Design, in one paragraph: the library is **content-addressed** — every
artifact is keyed by a SHA-256 over the graph's canonical spec (size,
degree bound, exact wire set) mixed with the compiler version tag and the
binary format version, so the same wiring always lands at the same key
and a compiler change silently misses instead of serving stale tables —
and **immutable-by-replacement**: a publish serializes the tables to a
fixed little-endian binary layout with a checksummed header (see
``docs/FORMATS.md``), writes them to a temp file, fsyncs, and atomically
:func:`os.replace`-renames into place, so concurrent publishers race
harmlessly (last complete file wins) and a reader can never observe a
torn artifact under the final name.  Loads go through :mod:`mmap` with
zero-copy ``memoryview``-backed tables: N worker processes and N
successive runs of one wiring share a single physical copy of the tables
in the page cache.  The loaded artifact is read-only by contract —
exactly the contract the in-memory cache already has — and the dynamic
engines' :meth:`~repro.topology.compile.CompiledTopology.fork` gives them
a private mutable copy of the two wire tables while the CSR port census
stays on the shared mapping forever.

:func:`repro.topology.compile.compiled_topology` consults the library
automatically once one is configured (:func:`configure_artifact_library`,
or the ``REPRO_ARTIFACTS`` environment variable): memory cache → mmap
library → compile-and-publish.  A fresh process with a warm library
therefore reaches its first simulation hop without invoking the topology
compiler at all — the fleet-scale cold-start story, gated by
``benchmarks/bench_artifacts.py`` and ``tests/test_artifacts.py``.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import sys
import tempfile
import zlib
from array import array
from pathlib import Path

from repro.errors import StoreError
from repro.topology.compile import (
    COMPILER_VERSION,
    TABLE_NAMES,
    CompiledTopology,
    _set_artifact_library,
    compile_topology,
)
from repro.topology.portgraph import PortGraph

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_FORMAT_VERSION",
    "ARTIFACT_MAGIC",
    "ARTIFACT_SUFFIX",
    "LIBRARY_FORMAT",
    "ArtifactError",
    "ArtifactInfo",
    "ArtifactLibrary",
    "artifact_key",
    "dump_artifact",
    "load_artifact",
    "configure_artifact_library",
    "active_artifact_library",
]


class ArtifactError(StoreError):
    """An artifact file is missing, torn, corrupt, or version-mismatched."""


#: Library directory manifest tag; bump on incompatible layout changes.
LIBRARY_FORMAT = "repro.artifact-library/v1"

#: Human-readable tag of the binary artifact format (documentation and
#: manifest only; the binary header carries the integer version).
ARTIFACT_FORMAT = "repro.topology-artifact/v3"

#: Binary format version stamped into (and checked against) every header.
#: Bump whenever the byte layout changes; old files then fail validation
#: and are recompiled/republished (``gc`` removes them).  v2 appended the
#: seven character-kernel tables and the ``kernel_codes`` dimension; v3
#: appended ``char_trans``, the automaton's transition-row tensor.
ARTIFACT_FORMAT_VERSION = 3

#: First 8 bytes of every artifact file.
ARTIFACT_MAGIC = b"RPROTOPO"

#: File name suffix of artifact objects.
ARTIFACT_SUFFIX = ".rtopo"

#: Hex chars of the key used as the fan-out subdirectory (256 buckets).
_SHARD_PREFIX = 2

#: Header layout, little-endian (176 bytes; see docs/FORMATS.md):
#: magic, format version, compiler version, num_nodes, delta, stride,
#: alphabet census (interned-alphabet size for this delta), kernel code
#: count, fourteen table lengths in int64 elements, payload crc32,
#: header crc32.
_HEADER = struct.Struct("<8sII5Q14QII")

#: Table order inside the payload (and of the fourteen length fields).
_TABLES = TABLE_NAMES


def _census(delta: int) -> int:
    """The interned-alphabet census recorded next to the tables.

    The flat engines pair every compiled topology with the shared
    :func:`~repro.sim.characters.interner_for` alphabet; recording the
    census (the constant-alphabet size for ``delta``) lets a loader
    cross-check that the artifact was produced against the same alphabet
    enumeration this process would build.
    """
    from repro.sim.characters import alphabet_size

    return alphabet_size(delta)


def _kernel_codes(delta: int) -> int:
    """The character-kernel code-space size recorded in the header.

    Like the census, a pure function of ``delta`` — the loader
    cross-checks it so a kernel-alphabet change without a compiler bump
    is caught before any kernel table is trusted.
    """
    from repro.sim.characters import kernel_size

    return kernel_size(delta)


def _n_phases(delta: int) -> int:
    """Transition-table phases per family bank (the v3 row dimension)."""
    from repro.sim.characters import n_phases

    return n_phases(delta)


def _le_bytes(table) -> bytes:
    """A table's elements as little-endian int64 bytes (host-independent)."""
    arr = table if isinstance(table, array) else array("q", table)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        arr = array("q", arr)
        arr.byteswap()
    return arr.tobytes()


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
def artifact_key(graph: PortGraph) -> str:
    """The canonical content-address of ``graph``'s compiled artifact.

    SHA-256 over (format version, compiler version, num_nodes, delta,
    sorted wire set) — the graph *spec*, not the compiled tables, so the
    key is computable without compiling, and two equal wirings share one
    artifact however they were built.  Version tags join the hash, so a
    compiler or layout bump changes every key instead of colliding with
    stale files.
    """
    h = hashlib.sha256()
    h.update(ARTIFACT_MAGIC)
    spec = array(
        "q",
        [
            ARTIFACT_FORMAT_VERSION,
            COMPILER_VERSION,
            graph.num_nodes,
            graph.delta,
        ],
    )
    wires = array("q")
    for wire in sorted(graph.wires()):
        wires.extend(wire)
    h.update(_le_bytes(spec))
    h.update(_le_bytes(wires))
    return h.hexdigest()


# ----------------------------------------------------------------------
# binary (de)serialization
# ----------------------------------------------------------------------
def dump_artifact(topo: CompiledTopology) -> bytes:
    """Serialize compiled tables to the artifact binary format.

    Little-endian regardless of host; the payload is the fourteen tables
    concatenated as raw int64s, the header records their element counts
    and a crc32 of the payload, and the header itself ends with a crc32
    over its own preceding bytes — so truncation or corruption anywhere
    is detected before a single table element is trusted.
    """
    if topo.pristine is not None:
        raise ArtifactError(
            "refusing to serialize a mutable fork; publish the shared artifact"
        )
    payload = b"".join(_le_bytes(getattr(topo, name)) for name in _TABLES)
    head = _HEADER.pack(
        ARTIFACT_MAGIC,
        ARTIFACT_FORMAT_VERSION,
        COMPILER_VERSION,
        topo.num_nodes,
        topo.delta,
        topo.stride,
        _census(topo.delta),
        _kernel_codes(topo.delta),
        *(len(getattr(topo, name)) for name in _TABLES),
        zlib.crc32(payload),
        0,
    )
    head = head[:-4] + struct.pack("<I", zlib.crc32(head[:-4]))
    return head + payload


def _parse_header(buf, size: int, where: str) -> tuple[list[int], dict[str, int]]:
    """Validate an artifact header; returns (table lengths, dimensions)."""
    if size < _HEADER.size:
        raise ArtifactError(f"{where}: truncated header ({size} bytes)")
    fields = _HEADER.unpack_from(buf, 0)
    magic, fmt_version, compiler = fields[0], fields[1], fields[2]
    if magic != ARTIFACT_MAGIC:
        raise ArtifactError(f"{where}: not a topology artifact (bad magic)")
    # The format version lives at a fixed offset in every layout revision,
    # so it is checked *before* the header crc (whose position is
    # layout-dependent): a v1 file reports a clean version mismatch
    # instead of a spurious checksum error.
    if fmt_version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"{where}: format version {fmt_version} != {ARTIFACT_FORMAT_VERSION}"
        )
    header_crc = fields[-1]
    if zlib.crc32(bytes(buf[: _HEADER.size - 4])) != header_crc:
        raise ArtifactError(f"{where}: header checksum mismatch")
    if compiler != COMPILER_VERSION:
        raise ArtifactError(
            f"{where}: compiler version {compiler} != {COMPILER_VERSION}"
        )
    num_nodes, delta, stride, census, kernel_codes = fields[3:8]
    lengths = list(fields[8:22])
    if delta < 2 or stride != delta + 1 or num_nodes < 1:
        raise ArtifactError(f"{where}: implausible dimensions in header")
    if census != _census(delta):
        raise ArtifactError(
            f"{where}: alphabet census {census} != {_census(delta)} for "
            f"delta={delta} (alphabet enumeration changed without a "
            f"compiler version bump)"
        )
    if kernel_codes != _kernel_codes(delta):
        raise ArtifactError(
            f"{where}: kernel code count {kernel_codes} != "
            f"{_kernel_codes(delta)} for delta={delta} (kernel alphabet "
            f"changed without a compiler version bump)"
        )
    expected = [
        num_nodes * stride,
        num_nodes * stride,
        num_nodes + 1,
        lengths[3],
        num_nodes + 1,
        lengths[5],
        kernel_codes,
        kernel_codes,
        kernel_codes,
        kernel_codes,
        kernel_codes,
        kernel_codes * (delta + 1),
        kernel_codes * 6,
        kernel_codes * (delta + 1) * _n_phases(delta),
    ]
    if (
        lengths != expected
        or lengths[3] > num_nodes * delta
        or lengths[5] > num_nodes * delta
    ):
        raise ArtifactError(f"{where}: table lengths inconsistent with dimensions")
    if size != _HEADER.size + 8 * sum(lengths):
        raise ArtifactError(
            f"{where}: file is {size} bytes, header promises "
            f"{_HEADER.size + 8 * sum(lengths)} (torn write?)"
        )
    payload_crc = fields[22]
    if zlib.crc32(bytes(buf[_HEADER.size:])) != payload_crc:
        raise ArtifactError(f"{where}: payload checksum mismatch")
    return lengths, {"num_nodes": num_nodes, "delta": delta, "stride": stride}


def load_artifact(path: str | os.PathLike) -> CompiledTopology:
    """mmap an artifact file into a shared read-only :class:`CompiledTopology`.

    The fourteen tables come back as zero-copy ``memoryview``\\ s cast to
    int64 over the mapping, so every process that loads the same file
    shares one physical copy via the page cache; nothing is materialized
    until a dynamic engine :meth:`~CompiledTopology.fork`\\ s the two wire
    tables.  Validation (magic, versions, both checksums, length
    consistency) runs before any table is handed out; any failure raises
    :class:`ArtifactError` and callers treat the file as a cache miss.

    On big-endian hosts the mapping cannot be aliased as native int64;
    the loader falls back to a byteswapped in-memory copy (same values,
    no sharing) so the format stays portable.
    """
    path = Path(path)
    with path.open("rb") as fh:
        size = os.fstat(fh.fileno()).st_size
        if size == 0:
            raise ArtifactError(f"{path.name}: empty artifact file")
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        lengths, dims = _parse_header(mapped, size, path.name)
    except ArtifactError:
        mapped.close()
        raise
    tables: dict[str, object] = {}
    offset = _HEADER.size
    view = memoryview(mapped)
    for name, count in zip(_TABLES, lengths):
        raw = view[offset : offset + 8 * count]
        offset += 8 * count
        if sys.byteorder == "little":
            tables[name] = raw.cast("q")
        else:  # pragma: no cover - big-endian hosts
            arr = array("q")
            arr.frombytes(raw)
            arr.byteswap()
            tables[name] = arr
    assert offset == size
    topo = CompiledTopology(**dims, **tables)
    # The memoryviews pin the mmap open for as long as the topology lives;
    # keep an explicit reference anyway so the provenance is inspectable
    # (tests assert on it) and the mapping is never closed under the views.
    object.__setattr__(topo, "_mmap", mapped)
    return topo


# ----------------------------------------------------------------------
# the library
# ----------------------------------------------------------------------
class ArtifactInfo:
    """One artifact file's stats, as reported by :meth:`ArtifactLibrary.entries`."""

    __slots__ = ("key", "path", "size", "mtime", "error")

    def __init__(
        self, key: str, path: Path, size: int, mtime: float, error: str | None
    ):
        self.key = key
        self.path = path
        self.size = size
        self.mtime = mtime
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None


class ArtifactLibrary:
    """A directory of content-addressed compiled-topology artifacts.

    Layout::

        DIR/
          MANIFEST.json                 # library format tag, written once
          objects/ab/<sha256-key>.rtopo # artifacts, fanned out by prefix

    Publishes are atomic (temp file + fsync + ``os.replace``), loads are
    mmap-backed and validated, and every operation is safe under
    concurrent publishers and readers — the worst outcome of a race is
    one redundant compile whose identical bytes replace the file.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._init_layout()
        #: observability counters (per-process, not persisted)
        self.loads = 0
        self.load_failures = 0
        self.publishes = 0

    def _init_layout(self) -> None:
        manifest_path = self.root / "MANIFEST.json"
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
            except json.JSONDecodeError as exc:
                raise StoreError(f"unreadable manifest {manifest_path}: {exc}") from exc
            if manifest.get("format") != LIBRARY_FORMAT:
                raise StoreError(
                    f"{self.root} is not a {LIBRARY_FORMAT} library "
                    f"(found {manifest.get('format')!r})"
                )
            return
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"library path {self.root} exists and is not a directory")
        self._objects.mkdir(parents=True, exist_ok=True)
        manifest = {"format": LIBRARY_FORMAT, "artifact_format": ARTIFACT_FORMAT}
        manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")

    # -- addressing ------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self._objects / key[:_SHARD_PREFIX] / f"{key}{ARTIFACT_SUFFIX}"

    def __contains__(self, item: PortGraph | str) -> bool:
        key = item if isinstance(item, str) else artifact_key(item)
        return self.path_for(key).exists()

    # -- reads -----------------------------------------------------------
    def load(self, graph: PortGraph) -> CompiledTopology | None:
        """The mmap-backed artifact for ``graph``, or ``None`` on a miss.

        A file that exists but fails validation (torn write from a killed
        publisher, stale version, corruption) counts as a miss: the
        caller recompiles and republishes, and the replacement heals the
        library.  The broken file is deliberately left in place rather
        than unlinked — a concurrent publisher may already have replaced
        it with a good one by the time we could delete it.
        """
        path = self.path_for(artifact_key(graph))
        try:
            topo = load_artifact(path)
        except FileNotFoundError:
            return None
        except (ArtifactError, OSError, ValueError):
            self.load_failures += 1
            return None
        if topo.num_nodes != graph.num_nodes or topo.delta != graph.delta:
            # key collision cannot happen; a mismatched file means the
            # directory was tampered with — treat as corrupt
            self.load_failures += 1
            return None
        self.loads += 1
        return topo

    # -- writes ----------------------------------------------------------
    def publish(self, graph: PortGraph, topo: CompiledTopology) -> str:
        """Write ``topo`` under ``graph``'s key; returns the key.

        Atomic rename-into-place: the bytes are written to a temp file in
        the destination directory, fsynced, then :func:`os.replace`\\ d
        over the final name, so a concurrent reader observes either the
        previous complete artifact or this one — never a torn file.
        """
        key = artifact_key(graph)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = dump_artifact(topo.pristine or topo)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.publishes += 1
        return key

    def ensure(self, graph: PortGraph) -> tuple[str, bool]:
        """Make sure ``graph``'s artifact exists; ``(key, published)``.

        A presence check only — the fast path for campaign prewarming is
        one ``stat`` per wiring; nothing is loaded or validated here (a
        torn file is healed lazily by the first loader's republish).
        """
        key = artifact_key(graph)
        if self.path_for(key).exists():
            return key, False
        self.publish(graph, compile_topology(graph))
        return key, True

    # -- maintenance -----------------------------------------------------
    def entries(self, *, validate: bool = False) -> list[ArtifactInfo]:
        """Every artifact file, optionally fully validated, sorted by key."""
        out = []
        for path in sorted(self._objects.glob(f"*/*{ARTIFACT_SUFFIX}")):
            stat = path.stat()
            error = None
            if validate:
                try:
                    load_artifact(path)
                except ArtifactError as exc:
                    error = str(exc)
            out.append(
                ArtifactInfo(path.stem, path, stat.st_size, stat.st_mtime, error)
            )
        return out

    def stats(self) -> dict:
        """Record count and total bytes (cheap; no validation)."""
        entries = self.entries()
        return {
            "artifacts": len(entries),
            "bytes": sum(e.size for e in entries),
            "root": str(self.root),
        }

    def gc(self, *, max_bytes: int | None = None) -> list[ArtifactInfo]:
        """Remove invalid artifacts, then evict to a byte budget; returns removed.

        Invalid files (torn writes, stale compiler/format versions,
        corruption) are always removed — they can never be loaded again
        and a future publish would replace them anyway.  With
        ``max_bytes``, remaining artifacts are evicted oldest-mtime-first
        until the library fits the budget (publishes refresh mtime, so
        this approximates LRU at fleet scale).
        """
        removed = []
        survivors = []
        for entry in self.entries(validate=True):
            if not entry.ok:
                entry.path.unlink(missing_ok=True)
                removed.append(entry)
            else:
                survivors.append(entry)
        if max_bytes is not None:
            total = sum(e.size for e in survivors)
            for entry in sorted(survivors, key=lambda e: e.mtime):
                if total <= max_bytes:
                    break
                entry.path.unlink(missing_ok=True)
                removed.append(entry)
                total -= entry.size
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._objects.glob(f"*/*{ARTIFACT_SUFFIX}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArtifactLibrary({str(self.root)!r})"


# ----------------------------------------------------------------------
# process-wide configuration
# ----------------------------------------------------------------------
#: The configured library (``None`` = unset; resolution may still find
#: one through the ``REPRO_ARTIFACTS`` environment variable).
_CONFIGURED: ArtifactLibrary | None = None


def configure_artifact_library(
    library: ArtifactLibrary | str | os.PathLike | None,
) -> ArtifactLibrary | None:
    """Install (or, with ``None``, remove) the process-wide artifact library.

    Once configured, :func:`repro.topology.compile.compiled_topology`
    reads through it on every in-memory cache miss and publishes every
    fresh compile back to it.  Campaign workers call this from their pool
    initializer so every process of a fleet shares one library; the
    ``REPRO_ARTIFACTS`` environment variable configures it implicitly for
    processes that never call this (the CLI, subprocess tests).
    """
    global _CONFIGURED
    if library is not None and not isinstance(library, ArtifactLibrary):
        library = ArtifactLibrary(library)
    _CONFIGURED = library
    _set_artifact_library(library)
    return library


def active_artifact_library() -> ArtifactLibrary | None:
    """The library in effect: explicit configuration, else ``REPRO_ARTIFACTS``."""
    if _CONFIGURED is not None:
        return _CONFIGURED
    path = os.environ.get("REPRO_ARTIFACTS")
    if path:
        return configure_artifact_library(path)
    return None
