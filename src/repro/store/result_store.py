"""The persistent campaign result store: JSONL shards + a spec-hash index.

Design, in one paragraph: the store is **content-addressed** (every record
is keyed by its scenario's :meth:`~repro.campaigns.spec.Scenario.spec_hash`,
a SHA-256 over the canonical spec, so the same cell of any matrix always
lands at the same key) and **append-only** (a put appends one JSON line to
the shard file named by the key's hex prefix; nothing is ever rewritten in
place).  Those two choices buy the three campaign features for free:

* **resume** — an interrupted run leaves a prefix of completed records on
  disk; re-running the same matrix looks each scenario up by key, loads the
  hits, and executes only the misses.  Because every scenario is a pure
  function of its spec, a loaded record is value-identical to a re-run one,
  so a resumed campaign's aggregate is byte-identical to an uninterrupted
  run's (a test enforces this).
* **caching** — an *overlapping* matrix (more seeds, one more family)
  reuses every cell it shares with past runs, making large sweeps
  cumulative instead of repeated work.
* **crash tolerance** — a process killed mid-append leaves at most one
  torn final line per shard; the loader detects and drops a truncated
  trailing record and keeps everything before it.  Corruption anywhere
  else raises :class:`~repro.errors.StoreError` loudly.

Duplicate keys are legal (append-only stores re-record on re-run); the
last record wins, mirroring "latest run of this cell".
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.run_stats import CampaignStats, RcaEpisode, aggregate_stats
from repro.campaigns.executor import ScenarioResult
from repro.campaigns.spec import CampaignSpec, Scenario
from repro.errors import StoreError

__all__ = [
    "STORE_FORMAT",
    "ResultStore",
    "StoreVerifyReport",
    "result_to_doc",
    "result_from_doc",
    "verify_result_store",
]

#: Manifest format tag; bump on incompatible layout or record changes.
STORE_FORMAT = "repro.result-store/v1"

#: Hex characters of the spec hash used as the shard file name.  Two gives
#: up to 256 shards — enough to keep individual files small at campaign
#: scale while staying trivially listable.
_SHARD_PREFIX = 2


# ----------------------------------------------------------------------
# record (de)serialization
# ----------------------------------------------------------------------
def result_to_doc(result: ScenarioResult) -> dict:
    """A :class:`ScenarioResult` as a JSON-ready mapping."""
    return {
        "scenario": result.scenario.canonical(),
        "outcome": result.outcome,
        "num_nodes": result.num_nodes,
        "num_wires": result.num_wires,
        "diameter": result.diameter,
        "ticks": result.ticks,
        "drained_ticks": result.drained_ticks,
        "hops": result.hops,
        "rca_runs": result.rca_runs,
        "bca_runs": result.bca_runs,
        "by_family": [[kind, count] for kind, count in result.by_family],
        "episodes": [
            {
                "start_tick": ep.start_tick,
                "end_tick": ep.end_tick,
                "dist_to_root": ep.dist_to_root,
                "dist_from_root": ep.dist_from_root,
                "token": ep.token,
            }
            for ep in result.episodes
        ],
        "lost_characters": result.lost_characters,
        "phase": result.phase,
        "error": result.error,
        "error_digest": result.error_digest,
    }


def result_from_doc(doc: dict) -> ScenarioResult:
    """Rebuild a :class:`ScenarioResult` from its stored mapping.

    The inverse of :func:`result_to_doc` up to value identity: JSON turns
    tuples into lists, so the nested shapes are re-tupled here and the
    round-tripped result compares ``==`` to the original dataclass.
    """
    try:
        return ScenarioResult(
            scenario=Scenario(**doc["scenario"]),
            outcome=doc["outcome"],
            num_nodes=doc["num_nodes"],
            num_wires=doc["num_wires"],
            diameter=doc["diameter"],
            ticks=doc["ticks"],
            drained_ticks=doc["drained_ticks"],
            hops=doc["hops"],
            rca_runs=doc["rca_runs"],
            bca_runs=doc["bca_runs"],
            by_family=tuple((kind, count) for kind, count in doc["by_family"]),
            episodes=tuple(RcaEpisode(**ep) for ep in doc["episodes"]),
            lost_characters=doc.get("lost_characters", 0),
            phase=doc.get("phase", ""),
            # .get: records written before quarantine existed lack these
            error=doc.get("error", ""),
            error_digest=doc.get("error_digest", ""),
        )
    except (KeyError, TypeError) as exc:
        raise StoreError(f"malformed result record: {exc}") from exc


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class ResultStore:
    """A directory of append-only JSONL shards indexed by spec hash.

    Layout::

        RUN_DIR/
          MANIFEST.json     # format tag + shard geometry, written once
          shards/ab.jsonl   # records whose spec hash starts with "ab"

    Opening a store scans every shard once and builds the in-memory index
    (``spec hash -> latest record``); puts append to the owning shard and
    update the index, so reads never re-touch disk.  Records are plain
    values, making the store safe to copy, merge (concatenate shards), or
    commit to version control.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self._shard_dir = self.root / "shards"
        self._index: dict[str, ScenarioResult] = {}
        self._init_layout()
        self._load()

    # -- layout and loading ---------------------------------------------
    def _init_layout(self) -> None:
        manifest_path = self.root / "MANIFEST.json"
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
            except json.JSONDecodeError as exc:
                raise StoreError(f"unreadable manifest {manifest_path}: {exc}") from exc
            if manifest.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"{self.root} is not a {STORE_FORMAT} store "
                    f"(found {manifest.get('format')!r})"
                )
            return
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store path {self.root} exists and is not a directory")
        self._shard_dir.mkdir(parents=True, exist_ok=True)
        manifest = {"format": STORE_FORMAT, "shard_prefix": _SHARD_PREFIX}
        manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")

    def _load(self) -> None:
        for shard in sorted(self._shard_dir.glob("*.jsonl")):
            self._load_shard(shard)

    def _load_shard(self, shard: Path) -> None:
        data = shard.read_bytes()
        lines = data.split(b"\n")
        for lineno, raw in enumerate(lines):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
                key = record["key"]
                result = result_from_doc(record["result"])
            except (json.JSONDecodeError, KeyError, TypeError, StoreError) as exc:
                if lineno == len(lines) - 1:
                    # A torn final line is the expected signature of a run
                    # killed mid-append: records are single sequential
                    # writes ending in a newline, so a partial write can
                    # only be an unterminated last line.  Truncate it away
                    # so the next append starts on a clean boundary — the
                    # fragment must not survive for a later put() to weld
                    # a new record onto.
                    os.truncate(shard, len(data) - len(raw))
                    continue
                raise StoreError(
                    f"corrupt record at {shard.name}:{lineno + 1}: {exc}"
                ) from exc
            self._index[key] = result

    # -- writes ----------------------------------------------------------
    def put(self, result: ScenarioResult) -> str:
        """Append one result; returns its spec-hash key.

        The record is flushed and fsynced before the index is updated, so
        a key visible in memory is always durable on disk.
        """
        key = result.scenario.spec_hash()
        record = {"key": key, "result": result_to_doc(result)}
        shard = self._shard_dir / f"{key[:_SHARD_PREFIX]}.jsonl"
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with shard.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._index[key] = result
        return key

    def put_many(self, results: Iterable[ScenarioResult]) -> list[str]:
        """Append many results; returns their keys in order."""
        return [self.put(result) for result in results]

    # -- reads -----------------------------------------------------------
    @staticmethod
    def _key_of(item: Scenario | str) -> str:
        return item.spec_hash() if isinstance(item, Scenario) else item

    def get(self, item: Scenario | str) -> ScenarioResult | None:
        """The stored result for a scenario (or raw key), or ``None``."""
        return self._index.get(self._key_of(item))

    def __contains__(self, item: Scenario | str) -> bool:
        return self._key_of(item) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> list[str]:
        return list(self._index)

    def results(self) -> list[ScenarioResult]:
        """Every stored result, in first-recorded key order."""
        return list(self._index.values())

    def results_for(
        self, scenarios: CampaignSpec | Sequence[Scenario]
    ) -> list[ScenarioResult | None]:
        """Matrix-ordered lookup: one slot per scenario, ``None`` = missing."""
        expanded = (
            scenarios.scenarios()
            if isinstance(scenarios, CampaignSpec)
            else list(scenarios)
        )
        return [self.get(s) for s in expanded]

    def missing(
        self, scenarios: CampaignSpec | Sequence[Scenario]
    ) -> list[Scenario]:
        """The scenarios of a matrix that have no stored result yet."""
        expanded = (
            scenarios.scenarios()
            if isinstance(scenarios, CampaignSpec)
            else list(scenarios)
        )
        return [s for s in expanded if s not in self]

    def __iter__(self) -> Iterator[ScenarioResult]:
        return iter(self._index.values())

    # -- aggregation ------------------------------------------------------
    def stats(
        self, scenarios: CampaignSpec | Sequence[Scenario] | None = None
    ) -> CampaignStats:
        """Aggregate stored results through :func:`aggregate_stats`.

        With ``scenarios`` given, aggregates exactly that matrix (raising
        if any cell is missing) — the store-backed twin of
        :meth:`CampaignResult.stats`; with ``None``, aggregates everything
        in the store.
        """
        if scenarios is None:
            return aggregate_stats(self.results())
        slots = self.results_for(scenarios)
        if any(r is None for r in slots):
            missing = sum(1 for r in slots if r is None)
            raise StoreError(
                f"store {self.root} is missing {missing} of {len(slots)} "
                f"scenarios of the requested matrix"
            )
        return aggregate_stats(slots)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultStore({str(self.root)!r}, {len(self)} records)"


# ----------------------------------------------------------------------
# offline verification
# ----------------------------------------------------------------------
@dataclass
class StoreVerifyReport:
    """What an offline scan of a result store's shards found.

    ``problems`` are records that cannot be trusted — unparseable JSON in
    the middle of a shard, a record that fails deserialization, or a key
    that does not match the stored scenario's recomputed spec hash.
    ``torn`` entries are truncated *final* lines: the expected signature of
    a run killed mid-append, reported as warnings (the loader drops them
    safely) rather than corruption.
    """

    root: str
    shards: int = 0
    records: int = 0
    keys: int = 0
    duplicates: int = 0
    torn: list[str] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no record is untrustworthy (torn tails are fine)."""
        return not self.problems

    def summary(self) -> str:
        lines = [
            f"result store {self.root}: {self.shards} shard(s), "
            f"{self.records} record(s), {self.keys} key(s), "
            f"{self.duplicates} duplicate(s)"
        ]
        for entry in self.torn:
            lines.append(f"TORN {entry}")
        for entry in self.problems:
            lines.append(f"CORRUPT {entry}")
        lines.append(
            f"verify: {len(self.problems)} corrupt record(s), "
            f"{len(self.torn)} torn trailing line(s)"
        )
        return "\n".join(lines)


def verify_result_store(root: str | os.PathLike) -> StoreVerifyReport:
    """Scan a result store offline; never modifies anything on disk.

    The shard-level twin of the artifact library's ``--verify``: every
    line of every shard is parsed, deserialized, and its key checked
    against the recomputed spec hash of the scenario it claims to record —
    so a bit flip in a spec field (which would silently serve the wrong
    cell on resume) is caught, not just malformed JSON.  Unlike opening a
    :class:`ResultStore`, a torn final line is *reported*, not truncated
    away, and mid-shard corruption is collected instead of raising — the
    point is a complete report over a store you may not want to touch.
    """
    root = Path(root)
    manifest_path = root / "MANIFEST.json"
    report = StoreVerifyReport(root=str(root))
    if not manifest_path.is_file():
        report.problems.append(f"{manifest_path.name}: missing manifest")
        return report
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        report.problems.append(f"{manifest_path.name}: unreadable ({exc})")
        return report
    if manifest.get("format") != STORE_FORMAT:
        report.problems.append(
            f"{manifest_path.name}: format {manifest.get('format')!r}, "
            f"expected {STORE_FORMAT!r}"
        )
        return report
    seen: set[str] = set()
    for shard in sorted((root / "shards").glob("*.jsonl")):
        report.shards += 1
        lines = shard.read_bytes().split(b"\n")
        for lineno, raw in enumerate(lines):
            if not raw.strip():
                continue
            where = f"{shard.name}:{lineno + 1}"
            try:
                record = json.loads(raw)
                key = record["key"]
                result = result_from_doc(record["result"])
            except (json.JSONDecodeError, KeyError, TypeError, StoreError) as exc:
                if lineno == len(lines) - 1:
                    report.torn.append(f"{where}: truncated final line")
                else:
                    report.problems.append(f"{where}: {exc}")
                continue
            report.records += 1
            if key != result.scenario.spec_hash():
                report.problems.append(
                    f"{where}: key {key[:16]}… does not match the "
                    f"recomputed spec hash of {result.scenario.label}"
                )
            if key in seen:
                report.duplicates += 1
            seen.add(key)
    report.keys = len(seen)
    return report
