"""Persistent, content-addressed storage for campaign results.

The store turns campaigns from ephemeral processes into cumulative data:
every completed scenario is appended to a JSONL shard under a key derived
from the scenario's canonical spec (family, size, fault, seed), so crashed
sweeps resume where they stopped and overlapping matrices reuse every cell
they share with past runs.  See :mod:`repro.store.result_store` for the
layout and the durability story, and the ``--store`` / ``--resume``
options of ``repro-topology campaign`` for the shell front door.
"""

from repro.store.result_store import (
    STORE_FORMAT,
    ResultStore,
    result_from_doc,
    result_to_doc,
)

__all__ = ["STORE_FORMAT", "ResultStore", "result_from_doc", "result_to_doc"]
