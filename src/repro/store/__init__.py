"""Persistent, content-addressed storage: campaign results and compiled artifacts.

Two stores live here, both content-addressed and crash-tolerant:

* :mod:`repro.store.result_store` — campaign *results*: every completed
  scenario is appended to a JSONL shard under a key derived from the
  scenario's canonical spec (family, size, fault, seed), so crashed
  sweeps resume where they stopped and overlapping matrices reuse every
  cell they share with past runs.
* :mod:`repro.store.artifacts` — compiled *topologies*: the on-disk tier
  below the process-wide ``compiled_topology()`` cache, serving
  ``mmap``-shared CSR tables keyed by graph-spec hash × compiler version
  so a cold process reaches the hot loop without compiling anything it
  has ever seen.

See ``docs/FORMATS.md`` for both on-disk layouts, and the ``--store`` /
``--resume`` / ``--artifacts`` options of ``repro-topology campaign``
(plus ``repro-topology store DIR --artifacts``) for the shell front door.
"""

from repro.store.artifacts import (
    ARTIFACT_FORMAT,
    ArtifactError,
    ArtifactLibrary,
    active_artifact_library,
    artifact_key,
    configure_artifact_library,
    dump_artifact,
    load_artifact,
)
from repro.store.result_store import (
    STORE_FORMAT,
    ResultStore,
    StoreVerifyReport,
    result_from_doc,
    result_to_doc,
    verify_result_store,
)

__all__ = [
    "STORE_FORMAT",
    "ResultStore",
    "StoreVerifyReport",
    "result_from_doc",
    "result_to_doc",
    "verify_result_store",
    "ARTIFACT_FORMAT",
    "ArtifactError",
    "ArtifactLibrary",
    "active_artifact_library",
    "artifact_key",
    "configure_artifact_library",
    "dump_artifact",
    "load_artifact",
]
