"""Lemma 5.2 and Theorem 5.1: transcript capacity and the time lower bound.

Lemma 5.2: after ``x`` ticks the root has read at most ``x`` characters from
each of its ``<= delta`` in-ports, so its computational transcript is one of
at most ``|I| ** (delta * x)`` strings.

Theorem 5.1: to distinguish ``G(N)`` topologies the transcript count must
reach ``G(N)``:

    |I| ** (delta * T(N))  >=  G(N)
    T(N)  >=  log G(N) / (delta * log |I|)

With Lemma 5.1's ``G(N) >= N**(CN)`` this gives ``T(N) = Ω(N log N)``.
These helpers compute the *concrete* implied bound for our protocol's
actual alphabet (:func:`repro.sim.characters.alphabet_size`), which the E7
benchmark plots against measured running times.
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError
from repro.sim.characters import alphabet_size
from repro.analysis.counting import log2_family_count_lower_bound

__all__ = [
    "log2_transcript_capacity",
    "minimum_ticks_to_distinguish",
    "implied_lower_bound_ticks",
    "lower_bound_curve",
]


def log2_transcript_capacity(delta: int, ticks: int) -> float:
    """``log2`` of Lemma 5.2's transcript-count bound ``|I|**(delta*ticks)``."""
    if ticks < 0:
        raise AnalysisError(f"ticks must be >= 0, got {ticks}")
    return delta * ticks * math.log2(alphabet_size(delta))


def minimum_ticks_to_distinguish(log2_topologies: float, delta: int) -> int:
    """Smallest ``T`` with ``|I|**(delta*T) >= 2**log2_topologies``.

    The pigeonhole step of Theorem 5.1 for a concrete topology count.
    """
    if log2_topologies <= 0:
        return 0
    per_tick = delta * math.log2(alphabet_size(delta))
    return math.ceil(log2_topologies / per_tick)


def implied_lower_bound_ticks(depth: int, delta: int) -> int:
    """Theorem 5.1's bound for the Lemma 5.1 family at ``depth``.

    Any correct GTD algorithm on ``delta``-port processors needs at least
    this many ticks on *some* member with ``N = 2**(depth+1) - 1`` nodes.
    """
    return minimum_ticks_to_distinguish(log2_family_count_lower_bound(depth), delta)


def lower_bound_curve(depths: list[int], delta: int) -> list[tuple[int, int]]:
    """``(N, implied minimum ticks)`` rows for a sweep of family depths."""
    return [
        ((1 << (d + 1)) - 1, implied_lower_bound_ticks(d, delta)) for d in depths
    ]
