"""Analytic side of the paper: counting arguments and complexity fits.

* :mod:`~repro.analysis.counting` — Lemma 5.1: the tree-with-loop family
  has ``N^{CN}``-many distinct topologies at diameter ``O(log N)``;
* :mod:`~repro.analysis.transcripts` — Lemma 5.2 and Theorem 5.1: transcript
  capacity ``|I|^{delta * x}`` and the implied ``Ω(N log N)`` lower bound;
* :mod:`~repro.analysis.complexity` — least-squares verdicts on the measured
  scaling data produced by the benchmarks.
"""

from repro.analysis.counting import (
    exact_family_count,
    family_loop_arrangements,
    log2_family_count_lower_bound,
    tree_family_description,
)
from repro.analysis.transcripts import (
    implied_lower_bound_ticks,
    log2_transcript_capacity,
    lower_bound_curve,
    minimum_ticks_to_distinguish,
)
from repro.analysis.complexity import ScalingVerdict, check_linear_scaling
from repro.analysis.run_stats import RcaEpisode, episode_scaling, rca_episodes

__all__ = [
    "RcaEpisode",
    "episode_scaling",
    "rca_episodes",
    "exact_family_count",
    "family_loop_arrangements",
    "log2_family_count_lower_bound",
    "tree_family_description",
    "log2_transcript_capacity",
    "implied_lower_bound_ticks",
    "minimum_ticks_to_distinguish",
    "lower_bound_curve",
    "ScalingVerdict",
    "check_linear_scaling",
]
