"""Scaling verdicts for the measured benchmark data.

The benchmarks sweep a parameter (``D`` for Lemma 4.3, ``N*D`` for
Lemma 4.4, ``N log N`` for Theorem 5.1) and measure simulated ticks; these
helpers turn the sweep into a pass/fail verdict: is the relationship linear
(high R², bounded ratio spread), and what are the fitted constants?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError
from repro.util.fitting import FitResult, linear_fit

__all__ = ["ScalingVerdict", "check_linear_scaling"]


@dataclass(frozen=True)
class ScalingVerdict:
    """Outcome of a linearity check ``y ≈ slope * x + intercept``.

    Attributes:
        fit: the least-squares line.
        ratio_min / ratio_max: extreme values of ``y/x`` over the sweep —
            for a true ``Θ(x)`` relationship these stay within a constant
            band as ``x`` grows.
        is_linear: the verdict under the thresholds given to
            :func:`check_linear_scaling`.
    """

    fit: FitResult
    ratio_min: float
    ratio_max: float
    is_linear: bool

    @property
    def ratio_spread(self) -> float:
        """``ratio_max / ratio_min`` (1.0 = perfectly proportional)."""
        return self.ratio_max / self.ratio_min if self.ratio_min > 0 else float("inf")


def check_linear_scaling(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    min_r_squared: float = 0.98,
    max_ratio_spread: float = 4.0,
) -> ScalingVerdict:
    """Judge whether ``ys`` grows linearly in ``xs``.

    Two complementary criteria: the line fit must explain the data
    (``R^2 >= min_r_squared``) *and* the direct ratios ``y/x`` must stay
    within ``max_ratio_spread`` (which rules out super-linear growth that a
    line can still fit well over a short sweep).
    """
    if any(x <= 0 for x in xs):
        raise AnalysisError("scaling checks need strictly positive xs")
    fit = linear_fit(list(xs), list(ys))
    ratios = [y / x for x, y in zip(xs, ys)]
    verdict = (
        fit.r_squared >= min_r_squared
        and (max(ratios) / min(ratios)) <= max_ratio_spread
    )
    return ScalingVerdict(
        fit=fit,
        ratio_min=min(ratios),
        ratio_max=max(ratios),
        is_linear=verdict,
    )
