"""Per-RCA statistics mined from the root transcript.

Everything here uses only root-visible information (the same stream the
master computer reads), so these are statistics the *deployed* system could
compute about itself.  An **episode** is one RCA as the root experiences
it: from accepting an IG head to seeing the UNMARK token, with the two
canonical path lengths read off the converted streams.

Lemma 4.3 says each episode's duration is proportional to its loop length
``d(A, root) + d(root, A)``; :func:`episode_scaling` checks it across a
whole protocol run (the E12 benchmark tabulates the result).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.errors import TranscriptError
from repro.sim.characters import SCOPE_RCA
from repro.sim.transcript import Transcript
from repro.util.fitting import FitResult, linear_fit

__all__ = [
    "RcaEpisode",
    "rca_episodes",
    "episode_scaling",
    "phase_outcome_counts",
    "CampaignStats",
    "aggregate_stats",
]


@dataclass(frozen=True)
class RcaEpisode:
    """One RCA as seen from the root."""

    start_tick: int          # first IG head accepted
    end_tick: int            # UNMARK passed the root
    dist_to_root: int        # |canonical path A -> root|
    dist_from_root: int      # |canonical path root -> A|
    token: str               # "FWD" or "BACK"

    @property
    def duration(self) -> int:
        """Root-observed episode length in ticks (a lower bound on the
        initiator's full RCA time: A started before and finishes after)."""
        return self.end_tick - self.start_tick

    @property
    def loop_length(self) -> int:
        """The marked loop's hop count."""
        return self.dist_to_root + self.dist_from_root


def rca_episodes(transcript: Transcript) -> list[RcaEpisode]:
    """Extract every RCA episode from a root transcript, in order."""
    episodes: list[RcaEpisode] = []
    phase = "open"
    src: int | None = None
    start = 0
    d1 = d2 = 0
    token = ""
    for event in transcript.events():
        if event.kind != "recv" or event.char is None:
            continue
        char = event.char
        kind = char.kind
        if phase == "open" and kind == "IGH":
            phase, src, start, d1, d2, token = "ig", event.port, event.tick, 1, 0, ""
        elif phase == "ig" and event.port == src:
            if kind == "IGB":
                d1 += 1
            elif kind == "IGT":
                phase = "id"
        elif phase == "id" and kind in ("IDH", "IDB"):
            d2 += 1
        elif phase == "id" and kind == "IDT":
            phase = "loop"
        elif phase == "loop" and kind in ("FWD", "BACK"):
            token = kind
        elif phase == "loop" and kind == "UNMARK" and char.payload == SCOPE_RCA:
            if not token:
                raise TranscriptError("RCA episode ended without a loop token")
            episodes.append(
                RcaEpisode(
                    start_tick=start,
                    end_tick=event.tick,
                    dist_to_root=d1,
                    dist_from_root=d2,
                    token=token,
                )
            )
            phase = "open"
    return episodes


def episode_scaling(episodes: list[RcaEpisode]) -> FitResult:
    """Fit episode duration against loop length (Lemma 4.3, per episode).

    Episodes with equal loop lengths are averaged first so dense repeats
    of one distance do not dominate the fit.
    """
    if len(episodes) < 2:
        raise TranscriptError("need at least two episodes to fit scaling")
    by_length: dict[int, list[int]] = {}
    for ep in episodes:
        by_length.setdefault(ep.loop_length, []).append(ep.duration)
    xs = sorted(by_length)
    ys = [sum(by_length[x]) / len(by_length[x]) for x in xs]
    if len(xs) < 2:
        # All loops the same length (e.g. a complete graph): degenerate but
        # legitimate; report a flat fit anchored at the observed point.
        return FitResult(slope=0.0, intercept=ys[0], r_squared=1.0)
    return linear_fit([float(x) for x in xs], ys)


# ----------------------------------------------------------------------
# campaign-level aggregates
# ----------------------------------------------------------------------
def phase_outcome_counts(results: Iterable) -> tuple[tuple[str, str, int], ...]:
    """Outcome counts keyed by timeline phase: ``(phase, outcome, count)``.

    Accepts anything with ``.phase`` / ``.outcome`` attributes — a
    :class:`~repro.dynamics.experiment.DynamicRunResult` (whose outcome is
    an enum) or a campaign ``ScenarioResult`` (plain string).  Results
    without a phase (static scenarios, legacy single-mutation cells) are
    skipped: the table answers "*when* in the perturbation program did runs
    end, and how", which only timeline runs can say.
    """
    counts: Counter[tuple[str, str]] = Counter()
    for r in results:
        phase = getattr(r, "phase", "")
        if not phase:
            continue
        outcome = r.outcome
        counts[(phase, getattr(outcome, "value", outcome))] += 1
    return tuple(
        (phase, outcome, n) for (phase, outcome), n in sorted(counts.items())
    )


@dataclass(frozen=True)
class CampaignStats:
    """Order-insensitive aggregate of a set of scenario results.

    The same shape is produced whether the results came straight out of
    the executor or were read back from a result store's JSONL shards —
    the store round-trip test asserts the two are byte-identical through
    :meth:`to_json`.  Only plain ints/floats/strings appear, so the JSON
    form is canonical (sorted keys, fixed separators) and diffable.
    """

    scenarios: int
    outcomes: tuple[tuple[str, int], ...]
    total_ticks: int
    total_drained_ticks: int
    total_hops: int
    total_work: int
    lost_characters: int
    episode_count: int
    fit: FitResult | None
    #: timeline-phase outcome table: (phase, outcome, count), sorted;
    #: empty when the matrix has no timeline cells
    phase_outcomes: tuple[tuple[str, str, int], ...] = ()
    #: quarantine table: (error kind, count) for cells with
    #: ``outcome="error"``, sorted; empty for a fault-free matrix.  Kinds
    #: are exception class names or supervisor verdicts
    #: (``"worker-crash"``/``"deadline"``/``"corrupt-result"``).
    error_kinds: tuple[tuple[str, int], ...] = ()

    @property
    def ok_fraction(self) -> float:
        """Share of scenarios whose recovered map matched the truth."""
        ok = sum(n for outcome, n in self.outcomes if outcome in ("exact", "accurate"))
        return ok / self.scenarios if self.scenarios else 0.0

    def to_json(self) -> str:
        """Canonical JSON: stable across runs, suitable for byte compare."""
        doc = {
            "format": "repro.campaign-stats/v1",
            "scenarios": self.scenarios,
            "outcomes": {outcome: n for outcome, n in self.outcomes},
            "total_ticks": self.total_ticks,
            "total_drained_ticks": self.total_drained_ticks,
            "total_hops": self.total_hops,
            "total_work": self.total_work,
            "lost_characters": self.lost_characters,
            "episode_count": self.episode_count,
            "episode_fit": None
            if self.fit is None
            else {
                "slope": self.fit.slope,
                "intercept": self.fit.intercept,
                "r_squared": self.fit.r_squared,
            },
            "phase_outcomes": [list(row) for row in self.phase_outcomes],
            "error_kinds": [list(row) for row in self.error_kinds],
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def aggregate_stats(results: Iterable) -> CampaignStats:
    """Reduce scenario results (live or store-loaded) to a CampaignStats.

    Accepts any iterable of objects with the ``ScenarioResult`` attribute
    shape (``outcome``/``ticks``/``hops``/``episodes``/...), so it is
    shared by :class:`repro.campaigns.executor.CampaignResult` and by
    :meth:`repro.store.ResultStore.stats` without a circular import.
    """
    results = list(results)
    episodes: list[RcaEpisode] = [ep for r in results for ep in r.episodes]
    try:
        fit = episode_scaling(episodes)
    except TranscriptError:
        fit = None
    return CampaignStats(
        scenarios=len(results),
        outcomes=tuple(sorted(Counter(r.outcome for r in results).items())),
        total_ticks=sum(r.ticks for r in results),
        total_drained_ticks=sum(r.drained_ticks for r in results),
        total_hops=sum(r.hops for r in results),
        total_work=sum(r.work for r in results),
        lost_characters=sum(r.lost_characters for r in results),
        episode_count=len(episodes),
        fit=fit,
        phase_outcomes=phase_outcome_counts(results),
        # getattr: store records written before the error fields existed
        # deserialize without them — shape tolerance mirrors phase/lost.
        error_kinds=tuple(
            sorted(
                Counter(
                    getattr(r, "error", "") or "unknown"
                    for r in results
                    if r.outcome == "error"
                ).items()
            )
        ),
    )
