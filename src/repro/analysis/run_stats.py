"""Per-RCA statistics mined from the root transcript.

Everything here uses only root-visible information (the same stream the
master computer reads), so these are statistics the *deployed* system could
compute about itself.  An **episode** is one RCA as the root experiences
it: from accepting an IG head to seeing the UNMARK token, with the two
canonical path lengths read off the converted streams.

Lemma 4.3 says each episode's duration is proportional to its loop length
``d(A, root) + d(root, A)``; :func:`episode_scaling` checks it across a
whole protocol run (the E12 benchmark tabulates the result).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TranscriptError
from repro.sim.characters import SCOPE_RCA
from repro.sim.transcript import Transcript
from repro.util.fitting import FitResult, linear_fit

__all__ = ["RcaEpisode", "rca_episodes", "episode_scaling"]


@dataclass(frozen=True)
class RcaEpisode:
    """One RCA as seen from the root."""

    start_tick: int          # first IG head accepted
    end_tick: int            # UNMARK passed the root
    dist_to_root: int        # |canonical path A -> root|
    dist_from_root: int      # |canonical path root -> A|
    token: str               # "FWD" or "BACK"

    @property
    def duration(self) -> int:
        """Root-observed episode length in ticks (a lower bound on the
        initiator's full RCA time: A started before and finishes after)."""
        return self.end_tick - self.start_tick

    @property
    def loop_length(self) -> int:
        """The marked loop's hop count."""
        return self.dist_to_root + self.dist_from_root


def rca_episodes(transcript: Transcript) -> list[RcaEpisode]:
    """Extract every RCA episode from a root transcript, in order."""
    episodes: list[RcaEpisode] = []
    phase = "open"
    src: int | None = None
    start = 0
    d1 = d2 = 0
    token = ""
    for event in transcript.events():
        if event.kind != "recv" or event.char is None:
            continue
        char = event.char
        kind = char.kind
        if phase == "open" and kind == "IGH":
            phase, src, start, d1, d2, token = "ig", event.port, event.tick, 1, 0, ""
        elif phase == "ig" and event.port == src:
            if kind == "IGB":
                d1 += 1
            elif kind == "IGT":
                phase = "id"
        elif phase == "id" and kind in ("IDH", "IDB"):
            d2 += 1
        elif phase == "id" and kind == "IDT":
            phase = "loop"
        elif phase == "loop" and kind in ("FWD", "BACK"):
            token = kind
        elif phase == "loop" and kind == "UNMARK" and char.payload == SCOPE_RCA:
            if not token:
                raise TranscriptError("RCA episode ended without a loop token")
            episodes.append(
                RcaEpisode(
                    start_tick=start,
                    end_tick=event.tick,
                    dist_to_root=d1,
                    dist_from_root=d2,
                    token=token,
                )
            )
            phase = "open"
    return episodes


def episode_scaling(episodes: list[RcaEpisode]) -> FitResult:
    """Fit episode duration against loop length (Lemma 4.3, per episode).

    Episodes with equal loop lengths are averaged first so dense repeats
    of one distance do not dominate the fit.
    """
    if len(episodes) < 2:
        raise TranscriptError("need at least two episodes to fit scaling")
    by_length: dict[int, list[int]] = {}
    for ep in episodes:
        by_length.setdefault(ep.loop_length, []).append(ep.duration)
    xs = sorted(by_length)
    ys = [sum(by_length[x]) / len(by_length[x]) for x in xs]
    if len(xs) < 2:
        # All loops the same length (e.g. a complete graph): degenerate but
        # legitimate; report a flat fit anchored at the observed point.
        return FitResult(slope=0.0, intercept=ys[0], r_squared=1.0)
    return linear_fit([float(x) for x in xs], ys)
