"""Lemma 5.1: counting the tree-with-loop family.

The family: a full binary tree of bidirectional edges with a directed simple
loop through the ``L = 2**depth`` bottom-level leaves
(:func:`repro.topology.generators.tree_with_loop`).  Every member has
``N = 2L - 1`` processors, degree ``<= 5`` and diameter ``<= 2*depth + 1 =
O(log N)``.

Counting: a directed loop order is one of ``(L-1)!`` cyclic arrangements
(fix the starting leaf).  Two arrangements give isomorphic *digraphs* only
if a tree automorphism maps one loop onto the other; the full binary tree
has exactly ``2**(L-1)`` automorphisms (one independent child swap per
internal node), so

    G(N)  >=  (L-1)! / 2**(L-1)

and ``log G(N) = Θ(L log L) = Θ(N log N)`` — i.e. ``G(N) >= N**(C*N)`` for a
positive constant ``C`` and large ``N``, which is what Theorem 5.1 needs.
:func:`exact_family_count` verifies the bound by brute-force isomorphism
classification for small depths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import permutations

from repro.errors import AnalysisError
from repro.topology.generators import tree_with_loop
from repro.util.validation import check_positive

__all__ = [
    "family_loop_arrangements",
    "tree_automorphism_count_log2",
    "log2_family_count_lower_bound",
    "tree_family_description",
    "exact_family_count",
]


def family_loop_arrangements(depth: int) -> int:
    """``(L-1)!`` — directed loop orders through ``L = 2**depth`` leaves."""
    check_positive("depth", depth)
    leaves = 1 << depth
    return math.factorial(leaves - 1)


def tree_automorphism_count_log2(depth: int) -> float:
    """``log2`` of the full binary tree's automorphism group, ``2**(L-1)``.

    Each of the ``L - 1`` internal nodes may independently swap its two
    subtrees (all subtrees at the same level are isomorphic).
    """
    check_positive("depth", depth)
    leaves = 1 << depth
    return float(leaves - 1)


def log2_family_count_lower_bound(depth: int) -> float:
    """``log2`` of the Lemma 5.1 lower bound ``(L-1)! / 2**(L-1)``.

    Uses ``lgamma`` so it stays exact-enough for depths far beyond what can
    be enumerated.
    """
    check_positive("depth", depth)
    leaves = 1 << depth
    log2_fact = math.lgamma(leaves) / math.log(2)  # log2((L-1)!)
    return log2_fact - tree_automorphism_count_log2(depth)


@dataclass(frozen=True)
class TreeFamilyPoint:
    """One row of the Lemma 5.1 table."""

    depth: int
    num_nodes: int          # N = 2**(depth+1) - 1
    leaves: int             # L = 2**depth
    diameter_bound: int     # <= 2*depth + 1 (paper's "2 log N + 1")
    log2_count_bound: float  # log2 G(N) lower bound
    log2_n_to_the_n: float   # log2 N**N, for the N^{CN} comparison


def tree_family_description(depth: int) -> TreeFamilyPoint:
    """The Lemma 5.1 quantities for one ``depth``."""
    check_positive("depth", depth)
    leaves = 1 << depth
    n = (1 << (depth + 1)) - 1
    return TreeFamilyPoint(
        depth=depth,
        num_nodes=n,
        leaves=leaves,
        diameter_bound=2 * depth + 1,
        log2_count_bound=log2_family_count_lower_bound(depth),
        log2_n_to_the_n=n * math.log2(n),
    )


def exact_family_count(depth: int, *, max_leaves: int = 6) -> int:
    """Exact number of pairwise non-isomorphic family members at ``depth``.

    Brute force: enumerate all ``(L-1)!`` loop arrangements (first leaf
    fixed — rotations of the same directed loop give identical graphs) and
    classify up to digraph isomorphism with networkx.  Only feasible for
    tiny depths; guarded by ``max_leaves``.

    The exact count must lie between the Lemma 5.1 lower bound and
    ``(L-1)!`` — the E6 benchmark checks exactly that.
    """
    check_positive("depth", depth)
    leaves = 1 << depth
    if leaves > max_leaves:
        raise AnalysisError(
            f"exact enumeration needs (L-1)! isomorphism checks; "
            f"L={leaves} exceeds max_leaves={max_leaves}"
        )
    import networkx as nx

    def to_nx(order: tuple[int, ...]) -> "nx.DiGraph":
        g = tree_with_loop(depth, leaf_order=list(order))
        dg = nx.DiGraph()
        dg.add_nodes_from(g.nodes())
        dg.add_edges_from((w.src, w.dst) for w in g.wires())
        return dg

    representatives: list["nx.DiGraph"] = []
    for rest in permutations(range(1, leaves)):
        candidate = to_nx((0, *rest))
        if not any(
            nx.is_isomorphic(candidate, seen) for seen in representatives
        ):
            representatives.append(candidate)
    return len(representatives)
