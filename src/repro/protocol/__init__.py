"""The paper's protocols: snakes, BCA, RCA and Global Topology Determination.

Public entry point: :func:`repro.protocol.runner.determine_topology` runs the
full GTD protocol on a network and returns the map the root's master computer
reconstructs, along with timing and traffic statistics.
"""

from repro.protocol.marks import GrowingMarks, LoopSlots, BcaSlot, DyingRelay
from repro.protocol.automaton import ProtocolProcessor
from repro.protocol.gtd import GTDProcessor
from repro.protocol.rca import ScriptedRCADriver, run_single_rca
from repro.protocol.bca import ScriptedBCADriver, run_single_bca
from repro.protocol.root_computer import MasterComputer, ReconstructedMap
from repro.protocol.runner import TopologyResult, determine_topology
from repro.protocol.invariants import (
    collect_residue,
    assert_network_clean,
)

__all__ = [
    "GrowingMarks",
    "LoopSlots",
    "BcaSlot",
    "DyingRelay",
    "ProtocolProcessor",
    "GTDProcessor",
    "ScriptedRCADriver",
    "run_single_rca",
    "ScriptedBCADriver",
    "run_single_bca",
    "MasterComputer",
    "ReconstructedMap",
    "TopologyResult",
    "determine_topology",
    "collect_residue",
    "assert_network_clean",
]
