"""Scripted single-BCA driver (§4.1 contract experiments, unit tests).

Runs exactly one Backwards Communication Algorithm: a chosen processor B
sends a message backwards through a chosen in-port; the upstream processor A
receives it.  The driver records delivery and completion ticks so tests can
verify the full contract: A got the message, B learned of delivery, the
network is undisturbed, all in O(D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Engine
from repro.sim.run import (
    DEFAULT_BACKEND,
    ENGINE_BACKENDS,
    EnginePool,
    RunConfig,
    check_backend,
    execute_run,
    make_engine,
)
from repro.protocol.automaton import ProtocolProcessor
from repro.topology.portgraph import PortGraph

__all__ = ["ScriptedBCADriver", "BCARunResult", "run_single_bca"]


class ScriptedBCADriver(ProtocolProcessor):
    """A processor that can initiate one BCA and records what it observes."""

    def __init__(self) -> None:
        super().__init__()
        self.delivered_payload: str | None = None
        self.delivered_at: int | None = None
        self.resumed_at: int | None = None
        self.initiator_done_at: int | None = None

    def trigger(self, in_port: int, message: str) -> None:
        """Start the BCA now (called by the harness)."""
        self.start_bca(in_port, message)

    def _on_bca_message(self, payload: str) -> None:
        self.delivered_payload = payload
        self.delivered_at = self.tick

    def _on_bca_target_resume(self) -> None:
        self.resumed_at = self.tick

    def _on_bca_initiator_done(self) -> None:
        self.initiator_done_at = self.tick


@dataclass(frozen=True)
class BCARunResult:
    """Outcome of one scripted BCA across a single wire."""

    initiator: int            # B: sent the message backwards
    target: int               # A: the upstream processor that received it
    message: str
    delivered_at: int         # tick the message reached A
    initiator_done_at: int    # tick B finished (knows delivery happened)
    target_resumed_at: int    # tick A was told cleanup finished
    ticks: int                # tick the network went fully idle
    engine: Engine


def run_single_bca(
    graph: PortGraph,
    node: int,
    in_port: int,
    *,
    message: str = "PING",
    root: int = 0,
    max_ticks: int | None = None,
    backend: str = DEFAULT_BACKEND,
    pool: EnginePool | None = None,
) -> BCARunResult:
    """Send ``message`` backwards through ``(node, in_port)`` and drain.

    The receiving processor is ``graph.in_wire(node, in_port).src`` — the
    paper's processor A.  Note the BCA never involves the root specially;
    ``root`` only selects which node's transcript is recorded.  With
    ``pool``, the engine is checked out of (and returned to) an
    :class:`~repro.sim.run.EnginePool`, as in
    :func:`~repro.protocol.rca.run_single_rca`.
    """
    wire = graph.in_wire(node, in_port)
    if wire is None:
        raise ValueError(f"in-port {in_port} of node {node} is not wired")
    if pool is not None:
        engine = pool.checkout(
            ENGINE_BACKENDS[check_backend(backend)],
            graph,
            ScriptedBCADriver,
            root=root,
        )
        processors = engine.processors
    else:
        processors = [ScriptedBCADriver() for _ in graph.nodes()]
        engine = make_engine(backend, graph, list(processors), root=root)
    try:
        engine.start()
        initiator = processors[node]
        initiator.begin_tick(engine.tick)
        initiator.trigger(in_port, message)
        engine.wake(node)
        target = processors[wire.src]
        budget = max_ticks or (400 * (graph.num_nodes + 2) + 2000)
        run = execute_run(
            engine,
            RunConfig(
                max_ticks=budget,
                until=lambda: initiator.initiator_done_at is not None,
                start=False,
                drain_slack=200,
                backend=backend,
            ),
        )
        assert target.delivered_at is not None, "message never delivered"
        assert initiator.initiator_done_at is not None
        # For a self-loop the initiator is its own target.
        resumed = target.resumed_at
        assert resumed is not None, "target never resumed"
    finally:
        if pool is not None:
            pool.checkin(engine)
    return BCARunResult(
        initiator=node,
        target=wire.src,
        message=message,
        delivered_at=target.delivered_at,
        initiator_done_at=initiator.initiator_done_at,
        target_resumed_at=resumed,
        ticks=run.drained_ticks,
        engine=engine,
    )
