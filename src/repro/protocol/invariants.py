"""Runtime checks of the paper's "network left undisturbed" claims.

Lemma 4.2 states that after an RCA terminates, no data construct created by
it survives anywhere in the network; the BCA contract (§4.1) makes the same
promise.  We check this *empirically, every time* instead of trusting the
timing argument alone: :func:`collect_residue` sweeps all processors,
outboxes and wires for protocol traces of a given scope; the runner (with
``verify_cleanup=True``), the property tests and the E5 benchmark call it
after every RCA/BCA completion and at protocol end.
"""

from __future__ import annotations

from repro.errors import CleanupViolation
from repro.sim.characters import Char, SCOPE_BCA, SCOPE_RCA
from repro.sim.engine import Engine
from repro.protocol.automaton import ProtocolProcessor

__all__ = ["collect_residue", "assert_network_clean"]

_SCOPE_FAMILIES = {
    SCOPE_RCA: ("IG", "OG", "ID", "OD"),
    SCOPE_BCA: ("BG", "BD"),
}
_SCOPE_TOKENS = {
    SCOPE_RCA: ("FWD", "BACK"),
    SCOPE_BCA: ("BDONE",),
}


def collect_residue(engine: Engine, *, scope: str | None = None) -> list[str]:
    """Describe every protocol trace of ``scope`` left in the network.

    ``scope`` is ``"RCA"``, ``"BCA"`` or ``None`` for both.  Residue means:
    snake characters (resting or on wires), scoped KILL/UNMARK or loop
    tokens, growing-snake marks, active dying-snake relays, or marked-loop
    port designations.  Returns human-readable findings; empty means the
    network is undisturbed, exactly as Lemma 4.2 promises.
    """
    scopes = (scope,) if scope else (SCOPE_RCA, SCOPE_BCA)
    families: tuple[str, ...] = ()
    tokens: tuple[str, ...] = ()
    for s in scopes:
        families += _SCOPE_FAMILIES[s]
        tokens += _SCOPE_TOKENS[s]
    findings: list[str] = []

    def char_is_residue(char: Char) -> bool:
        if len(char.kind) == 3 and char.kind[:2] in families:
            return True
        if char.kind in tokens:
            return True
        if char.kind in ("KILL", "UNMARK") and char.payload in scopes:
            return True
        return False

    for holder, char in engine.in_flight_chars():
        if char_is_residue(char):
            findings.append(f"character {char} in flight toward/at node {holder}")

    check_rca = SCOPE_RCA in scopes
    check_bca = SCOPE_BCA in scopes
    for node, proc in enumerate(engine.processors):
        assert isinstance(proc, ProtocolProcessor)
        for family in families:
            if family in proc.growing and proc.growing[family].visited:
                findings.append(f"node {node}: {family}-visited mark still set")
            if family in proc.relay and proc.relay[family].active:
                findings.append(f"node {node}: {family} relay still active")
        if check_rca and proc.loop.any_set():
            findings.append(f"node {node}: marked-loop slots still set")
        if check_bca and proc.bca_slot.active():
            findings.append(f"node {node}: BCA loop slot still set")
    return findings


def assert_network_clean(
    engine: Engine, *, scope: str | None = None, context: str = ""
) -> None:
    """Raise :class:`CleanupViolation` if any ``scope`` residue remains."""
    findings = collect_residue(engine, scope=scope)
    if findings:
        prefix = f"{context}: " if context else ""
        raise CleanupViolation(
            prefix + f"{len(findings)} residue finding(s): " + "; ".join(findings[:10])
        )
