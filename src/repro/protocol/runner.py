"""Layer 2 front-end: run Global Topology Determination end to end.

This module sits on the layered simulation stack: the scheduler core
(:mod:`repro.sim.scheduler`) drives deterministic delivery, the shared run
orchestration (:mod:`repro.sim.run`) owns the budget/drain plumbing via the
:class:`~repro.sim.run.RunConfig`/:class:`~repro.sim.run.RunResult` pair,
and this front-end contributes only what is protocol-specific:
:func:`determine_topology` wires :class:`~repro.protocol.gtd.GTDProcessor`
instances onto a network, runs until the root announces termination, feeds
the root transcript to the
:class:`~repro.protocol.root_computer.MasterComputer`, and packages the
result.  Optional flags add the Lemma 4.2 cleanup verification after every
RCA/BCA (an ``after_tick`` hook in the run config) and the finite-state
audit at termination.  Scenario matrices over this entry point live one
layer up, in :mod:`repro.campaigns`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NotStronglyConnectedError
from repro.sim.audit import assert_finite_state
from repro.sim.engine import Engine
from repro.sim.metrics import TrafficMetrics
from repro.sim.run import (
    DEFAULT_BACKEND,
    ENGINE_BACKENDS,
    EnginePool,
    RunConfig,
    check_backend,
    execute_run,
    make_engine,
)
from repro.sim.transcript import Transcript
from repro.topology.isomorphism import port_isomorphic
from repro.topology.portgraph import PortGraph
from repro.topology.properties import diameter, is_strongly_connected
from repro.protocol.gtd import GTDProcessor
from repro.protocol.invariants import assert_network_clean
from repro.protocol.root_computer import MasterComputer, ReconstructedMap
from repro.sim.characters import SCOPE_BCA, SCOPE_RCA

__all__ = ["TopologyResult", "determine_topology", "default_tick_budget"]


@dataclass
class TopologyResult:
    """Everything a Global Topology Determination run produced.

    Attributes:
        recovered: the master computer's map (name 0 = root).
        graph: the recovered map as a :class:`PortGraph`.
        ticks: global clock ticks from initiation to root termination —
            the paper's time-complexity measure.
        drained_ticks: ticks until the network was completely idle (the
            straggling cleanup after termination).
        transcript: the raw root transcript.
        metrics: character-traffic counters.
        rca_runs: total RCAs executed (one per FORWARD + one per BACK).
        bca_runs: total BCAs executed.
        diameter: the true network diameter (computed outside the protocol,
            for reporting only).
    """

    recovered: ReconstructedMap
    graph: PortGraph
    ticks: int
    drained_ticks: int
    transcript: Transcript
    metrics: TrafficMetrics
    rca_runs: int
    bca_runs: int
    diameter: int

    def matches(self, truth: PortGraph, *, root: int = 0) -> bool:
        """Whether the recovered map is port-isomorphic to ``truth``."""
        return port_isomorphic(truth, root, self.graph, ReconstructedMap.ROOT)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize the recovered map plus run statistics to JSON.

        The ``map`` field uses the standard portgraph format (loadable with
        :func:`repro.topology.serialize.from_json`); node 0 is the root.
        """
        import json

        from repro.topology.serialize import to_json as graph_to_json

        doc = {
            "format": "repro.topology-result/v1",
            "map": json.loads(graph_to_json(self.graph)),
            "root": ReconstructedMap.ROOT,
            "stats": {
                "ticks": self.ticks,
                "drained_ticks": self.drained_ticks,
                "diameter": self.diameter,
                "rca_runs": self.rca_runs,
                "bca_runs": self.bca_runs,
                "character_hops": self.metrics.total_delivered,
            },
        }
        return json.dumps(doc, indent=indent)


def default_tick_budget(graph: PortGraph, diam: int) -> int:
    """A generous liveness watchdog: O(E * D) with large constants.

    Lemma 4.4 bounds the protocol by O(N * D); each of the ~2E RCAs plus ~E
    BCAs costs O(D) with small constants (snakes are speed-1, so ~3 ticks
    per hop, and each RCA makes ~5 loop traversals).
    """
    edges = graph.num_wires
    return 400 * (edges + 1) * (diam + 2) + 4000


def determine_topology(
    graph: PortGraph,
    *,
    root: int = 0,
    max_ticks: int | None = None,
    verify_cleanup: bool = False,
    audit_finite_state: bool = False,
    strict_reconstruction: bool = True,
    backend: str = DEFAULT_BACKEND,
    pool: EnginePool | None = None,
) -> TopologyResult:
    """Map ``graph`` with the paper's protocol and reconstruct it at the root.

    Args:
        graph: a frozen, strongly-connected port graph.
        root: the processor the outside source nudges out of quiescence.
        max_ticks: liveness watchdog (default: :func:`default_tick_budget`).
        verify_cleanup: after every completed RCA/BCA, sweep the whole
            network and raise :class:`~repro.errors.CleanupViolation` if the
            protocol left any trace (Lemma 4.2 as a runtime assertion).
        audit_finite_state: at termination, assert every processor's state
            is within the delta-only budget (deviation D5).
        strict_reconstruction: make the master computer cross-check stack
            pops against signatures (catches protocol bugs; no effect on
            legal runs).
        backend: engine backend to simulate on (``"object"`` or ``"flat"``);
            both produce identical results, tick for tick.
        pool: check the engine out of this :class:`~repro.sim.run.EnginePool`
            (and back in afterwards) instead of constructing a fresh one —
            the zero-rebuild path campaign workers and benchmark loops use.
            Results are identical either way.

    Raises:
        NotStronglyConnectedError: the protocol requires strong connectivity
            (the DFS token must be able to reach and return from everywhere).
        TickBudgetExceeded: the watchdog fired (protocol deadlock).
    """
    if not is_strongly_connected(graph):
        raise NotStronglyConnectedError(
            "Global Topology Determination requires a strongly-connected network"
        )
    diam = diameter(graph)
    budget = max_ticks if max_ticks is not None else default_tick_budget(graph, diam)

    if pool is not None:
        engine = pool.checkout(
            ENGINE_BACKENDS[check_backend(backend)], graph, GTDProcessor, root=root
        )
        processors = engine.processors
    else:
        processors = [GTDProcessor() for _ in graph.nodes()]
        engine = make_engine(backend, graph, list(processors), root=root)
    root_proc = processors[root]

    try:
        run = execute_run(
            engine,
            RunConfig(
                max_ticks=budget,
                until=lambda: root_proc.terminal,
                after_tick=_cleanup_sweeper(processors) if verify_cleanup else None,
                backend=backend,
            ),
        )
        if verify_cleanup:
            assert_network_clean(engine, context="after termination")
        if audit_finite_state:
            for proc in processors:
                assert_finite_state(proc, graph.delta)

        computer = MasterComputer(strict=strict_reconstruction)
        recovered = computer.reconstruct(run.transcript)
        return TopologyResult(
            recovered=recovered,
            graph=recovered.to_portgraph(delta=graph.delta),
            ticks=run.ticks,
            drained_ticks=run.drained_ticks,
            transcript=run.transcript,
            metrics=run.metrics,
            rca_runs=sum(p.rca_completed for p in processors),
            bca_runs=sum(p.bca_completed for p in processors),
            diameter=diam,
        )
    finally:
        if pool is not None:
            pool.checkin(engine)


def _cleanup_sweeper(processors: list[GTDProcessor]):
    """An ``after_tick`` hook sweeping for residue after each RCA/BCA.

    Forces the run onto the exact single-step path, so every completed
    RCA/BCA is checked at the very tick it finished (Lemma 4.2 as a
    runtime assertion).
    """
    seen = {"rca": 0, "bca": 0}

    def sweep(engine: Engine) -> None:
        rca = sum(p.rca_completed for p in processors)
        bca = sum(p.bca_completed for p in processors)
        if rca != seen["rca"]:
            seen["rca"] = rca
            assert_network_clean(
                engine, scope=SCOPE_RCA, context=f"after RCA #{rca} (tick {engine.tick})"
            )
        if bca != seen["bca"]:
            seen["bca"] = bca
            assert_network_clean(
                engine, scope=SCOPE_BCA, context=f"after BCA #{bca} (tick {engine.tick})"
            )

    return sweep
