"""The root's master computer: transcript -> topology map (paper §3.1).

The computer never touches the network.  It consumes the root transcript —
characters into/out of the root plus the root's constant-size status pipes —
and replays the paper's mapping strategy:

* it mirrors the root's RCA phases, reading off the canonical path
  ``A -> root`` from the IG characters as they are converted to OG
  (Lemma 4.1) and the canonical path ``root -> A`` from the ID characters
  as they are converted to OD;
* the pair of canonical paths is the processor's unique *signature*: the
  protocol is deterministic, so the same processor always produces the same
  pair, and following the root->A path out-ports from the root pins down a
  unique processor — signatures never collide;
* it keeps a stack of processor names tracking the DFS token: FORWARD(o, i)
  draws a wire ``stack top --(o, i)--> A`` and pushes ``A``; BACK pops;
  a DFS character received at the root is a FORWARD onto the root itself
  (deviation D2), and the root's ``DFS_RETURNED`` pipe is the matching BACK;
* at ``TERMINAL`` the stack must have collapsed back to the root and the
  collected wires form the map.

Reconstruction failures raise
:class:`~repro.errors.ReconstructionError`/`TranscriptError` — they indicate
a protocol bug, never bad user input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReconstructionError, TranscriptError
from repro.sim.characters import STAR, Char, SCOPE_RCA
from repro.sim.transcript import Transcript, TranscriptEvent
from repro.topology.portgraph import PortGraph
from repro.protocol.gtd import PIPE_DFS_RETURNED, PIPE_START, PIPE_TERMINAL

__all__ = ["MasterComputer", "ReconstructedMap", "MappedWire"]

Hop = tuple[int, int]
Signature = tuple[tuple[Hop, ...], tuple[Hop, ...]]


@dataclass(frozen=True)
class MappedWire:
    """One wire on the reconstructed map (names are computer-assigned)."""

    src: int
    out_port: int
    dst: int
    in_port: int


@dataclass
class ReconstructedMap:
    """The master computer's output: named processors and port-labeled wires.

    Name 0 is always the root.  ``signatures[name]`` is the canonical-path
    pair that identifies the processor (the root has the empty signature).
    """

    num_nodes: int
    wires: list[MappedWire]
    signatures: dict[int, Signature] = field(default_factory=dict)

    ROOT = 0

    def to_portgraph(self, *, delta: int | None = None) -> PortGraph:
        """Materialize the map as a frozen :class:`PortGraph`.

        ``delta`` defaults to the largest port number observed (minimum 2).
        Raises :class:`ReconstructionError` if the map is not a legal
        network (duplicate ports, missing connections).
        """
        max_port = max(
            [2] + [max(w.out_port, w.in_port) for w in self.wires]
        )
        graph = PortGraph(self.num_nodes, delta or max_port)
        try:
            for w in self.wires:
                graph.add_wire(w.src, w.out_port, w.dst, w.in_port)
            return graph.freeze()
        except Exception as exc:  # TopologyError and subclasses
            raise ReconstructionError(f"reconstructed map is not legal: {exc}") from exc


# Mirror of the root's RCA phases, driven purely by transcript events.
_OPEN = "open"
_IG = "ig_stream"
_AWAIT_ID = "await_id"
_ID = "id_stream"
_LOOP = "loop"


class MasterComputer:
    """Replays a root :class:`Transcript` into a :class:`ReconstructedMap`."""

    def __init__(self, *, strict: bool = True) -> None:
        self.strict = strict
        self._phase = _OPEN
        self._ig_port: int | None = None
        self._path1: list[Hop] = []
        self._path2: list[Hop] = []
        self._names: dict[Signature, int] = {}
        self._signatures: dict[int, Signature] = {}
        self._stack: list[int] = []
        self._wires: list[MappedWire] = []
        self._wire_keys: set[tuple[int, int]] = set()
        self._started = False
        self._terminal = False

    # ------------------------------------------------------------------
    def reconstruct(self, transcript: Transcript) -> ReconstructedMap:
        """Consume the whole transcript and return the finished map."""
        for event in transcript.events():
            self.feed(event)
        if not self._terminal:
            raise TranscriptError("transcript ended before TERMINAL")
        return ReconstructedMap(
            num_nodes=len(self._signatures),
            wires=list(self._wires),
            signatures=dict(self._signatures),
        )

    # ------------------------------------------------------------------
    def feed(self, event: TranscriptEvent) -> None:
        """Process one transcript event (stream-friendly)."""
        if event.kind == "pipe":
            self._feed_pipe(event)
        elif event.kind == "recv":
            assert event.char is not None and event.port is not None
            self._feed_recv(event.port, event.char)
        # 'send' events carry no additional information the computer needs:
        # every mapping-relevant fact arrives as a recv or a pipe.

    # ------------------------------------------------------------------
    def _feed_pipe(self, event: TranscriptEvent) -> None:
        if event.label == PIPE_START:
            if self._started:
                raise TranscriptError("duplicate START pipe")
            self._started = True
            root_sig: Signature = ((), ())
            self._names[root_sig] = ReconstructedMap.ROOT
            self._signatures[ReconstructedMap.ROOT] = root_sig
            self._stack = [ReconstructedMap.ROOT]
        elif event.label == PIPE_DFS_RETURNED:
            self._pop(expect_top_after=ReconstructedMap.ROOT)
        elif event.label == PIPE_TERMINAL:
            if self._stack != [ReconstructedMap.ROOT]:
                raise ReconstructionError(
                    f"TERMINAL with non-root stack {self._stack}"
                )
            self._terminal = True

    def _feed_recv(self, port: int, char: Char) -> None:
        kind = char.kind
        if kind == "DFS":
            # Deviation D2: a DFS character entering the root *is* the
            # FORWARD record for a wire onto the root.
            self._draw_edge(char.out_port, self._fill(char.in_port, port),
                            ReconstructedMap.ROOT)
            self._stack.append(ReconstructedMap.ROOT)
            return
        if kind.startswith("IG"):
            self._feed_ig(port, char)
            return
        if kind.startswith("ID"):
            self._feed_id(port, char)
            return
        if kind == "FWD":
            node = self._intern_current_signature()
            self._draw_edge(char.out_port, char.in_port, node)
            self._stack.append(node)
            return
        if kind == "BACK":
            runner = self._intern_current_signature()
            self._pop(expect_top_after=runner)
            return
        if kind == "UNMARK" and char.payload == SCOPE_RCA:
            # Root reopens to IG snakes; the RCA this mirror tracked is over.
            self._phase = _OPEN
            self._ig_port = None
            return
        # All other characters (OG echoes, BG/BD, KILL, BDONE, BCA UNMARK)
        # carry nothing the mapping strategy needs.

    # ------------------------------------------------------------------
    # mirroring the root's stream conversions
    # ------------------------------------------------------------------
    def _feed_ig(self, port: int, char: Char) -> None:
        role = char.kind[2]
        if self._phase == _OPEN:
            if role == "H":
                self._phase = _IG
                self._ig_port = port
                self._path1 = [(char.out_port, self._fill(char.in_port, port))]
            return
        if self._phase == _IG and port == self._ig_port:
            if role == "B":
                self._path1.append((char.out_port, self._fill(char.in_port, port)))
            elif role == "T":
                self._phase = _AWAIT_ID
        # IG characters on other ports: the root ignored them; so do we.

    def _feed_id(self, port: int, char: Char) -> None:
        role = char.kind[2]
        if self._phase == _AWAIT_ID:
            if role != "H":
                raise TranscriptError(f"expected ID head, saw {char}")
            self._phase = _ID
            self._path2 = [(char.out_port, self._fill(char.in_port, port))]
            return
        if self._phase == _ID:
            if role == "B":
                self._path2.append((char.out_port, self._fill(char.in_port, port)))
            elif role == "T":
                self._phase = _LOOP
            return
        raise TranscriptError(f"ID character {char} outside an RCA")

    # ------------------------------------------------------------------
    def _intern_current_signature(self) -> int:
        if self._phase != _LOOP:
            raise TranscriptError(
                "loop token observed before both canonical paths completed"
            )
        sig: Signature = (tuple(self._path1), tuple(self._path2))
        if sig not in self._names:
            name = len(self._names)
            self._names[sig] = name
            self._signatures[name] = sig
        return self._names[sig]

    def _draw_edge(self, out_port: int, in_port: int, dst: int) -> None:
        if not self._stack:
            raise ReconstructionError("edge event with empty stack")
        src = self._stack[-1]
        key = (src, out_port)
        if key in self._wire_keys:
            if self.strict:
                raise ReconstructionError(
                    f"out-port {out_port} of node {src} mapped twice"
                )
            return
        self._wire_keys.add(key)
        self._wires.append(MappedWire(src, out_port, dst, in_port))

    def _pop(self, *, expect_top_after: int | None) -> None:
        if len(self._stack) <= 1:
            raise ReconstructionError("BACK with nothing to pop")
        self._stack.pop()
        if (
            self.strict
            and expect_top_after is not None
            and self._stack[-1] != expect_top_after
        ):
            raise ReconstructionError(
                f"stack top {self._stack[-1]} does not match the processor "
                f"{expect_top_after} that reported BACK"
            )

    @staticmethod
    def _fill(in_port: int, arrival_port: int) -> int:
        """Resolve a STAR in-port: the character was created one hop away."""
        return arrival_port if in_port == STAR else in_port
