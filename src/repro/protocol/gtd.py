"""The Global Topology Determination protocol (paper §3).

:class:`GTDProcessor` adds the distributed depth-first search on top of the
:class:`~repro.protocol.automaton.ProtocolProcessor` machinery:

* the root, nudged by the outside source, releases a DFS token through its
  lowest-numbered connected out-port;
* a processor receiving the DFS token through a *forward* edge runs an RCA
  with the FORWARD(out-port, in-port) token — on first receipt it also
  records its parent in-port; on repeat receipts it afterwards bounces the
  token back through the arrival edge via the BCA;
* a processor whose outstanding probe returns (via the BCA) marks that
  out-port finished, runs an RCA with the BACK token, and moves on;
* a processor that has finished all its out-ports returns the DFS token to
  its parent via the BCA; when the *root* finishes all out-ports the
  protocol terminates and the root announces completion to its computer.

Deviation D2: whenever the communicating processor would be the root itself
(the DFS token enters the root forward, or the root's own probe returns),
the root pipes the record directly instead of running a degenerate RCA.

The DFS token carries "through which out-port it has been most recently
passed and through which in-port it was most recently received" — our
``Char("DFS", out_port, in_port)`` with the in-port filled on arrival.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ProtocolViolation
from repro.sim.characters import STAR, Char, MSG_DFS_RETURN, intern_char
from repro.protocol.automaton import ProtocolProcessor

__all__ = [
    "GTDProcessor",
    "PIPE_START",
    "PIPE_DFS_RETURNED",
    "PIPE_TERMINAL",
]

#: Root pipe labels (constant-size status records to the master computer).
PIPE_START = "START"
PIPE_DFS_RETURNED = "DFS_RETURNED"
PIPE_TERMINAL = "TERMINAL"

_ADVANCE = "advance"


class GTDProcessor(ProtocolProcessor):
    """One processor participating in Global Topology Determination."""

    def __init__(self) -> None:
        super().__init__()
        self.dfs_seen = False
        self.dfs_parent_in: int | None = None
        self.dfs_scan_idx = 0          # next out-port index to probe
        self.dfs_waiting_port: int | None = None
        self.after_rca: Any = None     # _ADVANCE or ("bounce", in_port)
        self.terminal = False

    # ------------------------------------------------------------------
    # protocol start (root only)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        assert self.ctx is not None and self.ctx.is_root
        self.ctx.pipe(PIPE_START)
        self.dfs_seen = True
        self._advance_dfs()

    # ------------------------------------------------------------------
    # DFS token arrivals (forward edges)
    # ------------------------------------------------------------------
    def _on_dfs_char(self, in_port: int, char: Char) -> None:
        assert self.ctx is not None
        if self.ctx.is_root:
            # Deviation D2: the information is already at the root; the
            # recv of this DFS character *is* the FORWARD record.  Bounce
            # the token back through this edge via the BCA.
            self.start_bca(in_port, MSG_DFS_RETURN)
            return
        token = intern_char("FWD", out_port=char.out_port, in_port=in_port)
        if not self.dfs_seen:
            self.dfs_seen = True
            self.dfs_parent_in = in_port
            self.after_rca = _ADVANCE
        else:
            # Already visited: after reporting FORWARD, send the token
            # straight back (a processor never wants more than one parent).
            self.after_rca = ("bounce", in_port)
        self.start_rca(token)

    # ------------------------------------------------------------------
    # RCA / BCA completions
    # ------------------------------------------------------------------
    def _on_rca_complete(self) -> None:
        action = self.after_rca
        self.after_rca = None
        if action == _ADVANCE:
            self._advance_dfs()
        elif isinstance(action, tuple) and action[0] == "bounce":
            self.start_bca(action[1], MSG_DFS_RETURN)
        else:
            raise ProtocolViolation(f"RCA completed with no pending action: {action}")

    def _on_bca_message(self, payload: str) -> None:
        if payload != MSG_DFS_RETURN:
            raise ProtocolViolation(f"unexpected BCA message {payload!r}")
        if self.dfs_waiting_port is None:
            raise ProtocolViolation(
                f"DFS return at node {self._node()} with no outstanding probe"
            )
        # "it marks that out-port finished" — the scan index is already past
        # it, so clearing the outstanding register is all that remains.
        self.dfs_waiting_port = None

    def _on_bca_target_resume(self) -> None:
        assert self.ctx is not None
        if self.ctx.is_root:
            # Deviation D2 again: pipe the BACK record directly.
            self.ctx.pipe(PIPE_DFS_RETURNED)
            self._advance_dfs()
        else:
            self.after_rca = _ADVANCE
            self.start_rca(intern_char("BACK"))

    def _on_bca_initiator_done(self) -> None:
        """Bounce/return finished; nothing more for the initiator to do."""

    # ------------------------------------------------------------------
    # DFS bookkeeping
    # ------------------------------------------------------------------
    def _advance_dfs(self) -> None:
        assert self.ctx is not None
        ports = self.ctx.out_ports
        if self.dfs_scan_idx < len(ports):
            port = ports[self.dfs_scan_idx]
            self.dfs_scan_idx += 1
            self.dfs_waiting_port = port
            self.send(port, intern_char("DFS", out_port=port, in_port=STAR))
            return
        # All out-ports finished.
        if self.ctx.is_root:
            self.terminal = True
            self.ctx.pipe(PIPE_TERMINAL)
        else:
            assert self.dfs_parent_in is not None
            self.start_bca(self.dfs_parent_in, MSG_DFS_RETURN)

    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict[str, Any]:
        snap = super().state_snapshot()
        snap["dfs"] = {
            "seen": self.dfs_seen,
            "parent_in": self.dfs_parent_in,
            "scan_idx": self.dfs_scan_idx,
            "waiting_port": self.dfs_waiting_port,
            "after_rca": self.after_rca,
            "terminal": self.terminal,
        }
        return snap
