"""Per-processor protocol registers (all O(delta), independent of N).

The paper's processors remember a handful of port-valued marks:

* growing-snake marks: "IG-visited" + "IG-parent" per growing family
  (§2.3.2 / RCA step 1);
* marked-loop slots: predecessor in-ports #1/#2 and successor out-ports
  #1/#2 plus the alternation state for loop tokens (§2.4);
* the BCA loop slot with the "I am the recipient" flag (deviation D1);
* a relay register per dying family tracking head-promotion (§2.3.3).

Each register bundle knows how to reset itself and how to report a snapshot
for the finite-state audit.
"""

from __future__ import annotations

from typing import Any

__all__ = ["GrowingMarks", "LoopSlots", "BcaSlot", "DyingRelay"]


class GrowingMarks:
    """Visited/parent marks for one growing-snake family (IG, OG or BG)."""

    __slots__ = ("visited", "parent_in")

    def __init__(self) -> None:
        self.visited = False
        self.parent_in: int | None = None

    def mark(self, parent_in: int | None) -> None:
        """Set visited with ``parent_in`` (``None`` for the flood origin)."""
        self.visited = True
        self.parent_in = parent_in

    def clear(self) -> None:
        """Erase the marks (the KILL token's action)."""
        self.visited = False
        self.parent_in = None

    def snapshot(self) -> dict[str, Any]:
        return {"visited": self.visited, "parent_in": self.parent_in}


class LoopSlots:
    """The RCA marked-loop registers of §2.4.

    Slot 1 is written by the ID-snake (path ``A -> root``), slot 2 by the
    OD-snake (path ``root -> A``).  ``expect`` implements the paper's
    alternation rule for processors appearing twice on the loop: a loop
    token is first awaited through predecessor in-port #1, then #2, then #1
    again.  UNMARK forgets each slot as it uses it.
    """

    __slots__ = ("pred1", "succ1", "pred2", "succ2", "expect")

    def __init__(self) -> None:
        self.pred1: int | None = None
        self.succ1: int | None = None
        self.pred2: int | None = None
        self.succ2: int | None = None
        self.expect = 1

    def set_slot(self, slot: int, pred: int, succ: int) -> None:
        """Record the loop ports for ``slot`` (1 = ID-snake, 2 = OD-snake)."""
        if slot == 1:
            self.pred1, self.succ1 = pred, succ
        else:
            self.pred2, self.succ2 = pred, succ

    def any_set(self) -> bool:
        """Whether this processor currently lies on a marked loop."""
        return self.pred1 is not None or self.pred2 is not None

    def expected_pred(self) -> int | None:
        """The appropriate predecessor in-port for the next loop token."""
        if self.expect == 1 and self.pred1 is not None:
            return self.pred1
        if self.pred2 is not None:
            return self.pred2
        return self.pred1

    def route(self, in_port: int) -> int | None:
        """Loop-token routing: successor out-port for a token on ``in_port``.

        Applies the §2.4 alternation and advances it.  Returns ``None`` if
        the token arrived through a port that is not the appropriate
        predecessor (a protocol violation the caller reports).
        """
        if self.pred1 is not None and self.pred2 is not None:
            if self.expect == 1:
                if in_port != self.pred1:
                    return None
                self.expect = 2
                return self.succ1
            if in_port != self.pred2:
                return None
            self.expect = 1
            return self.succ2
        if self.pred1 is not None:
            return self.succ1 if in_port == self.pred1 else None
        if self.pred2 is not None:
            return self.succ2 if in_port == self.pred2 else None
        return None

    def unmark(self, in_port: int) -> int | None:
        """UNMARK routing: route, then forget the slot just used."""
        if self.pred1 is not None and self.pred2 is not None:
            if self.expect == 1:
                if in_port != self.pred1:
                    return None
                succ = self.succ1
                self.pred1 = self.succ1 = None
                self.expect = 2
                return succ
            if in_port != self.pred2:
                return None
            succ = self.succ2
            self.pred2 = self.succ2 = None
            self.expect = 1
            return succ
        if self.pred1 is not None:
            if in_port != self.pred1:
                return None
            succ = self.succ1
            self.clear()
            return succ
        if self.pred2 is not None:
            if in_port != self.pred2:
                return None
            succ = self.succ2
            self.clear()
            return succ
        return None

    def clear(self) -> None:
        """Forget all loop designations."""
        self.pred1 = self.succ1 = self.pred2 = self.succ2 = None
        self.expect = 1

    def snapshot(self) -> dict[str, Any]:
        return {
            "pred1": self.pred1,
            "succ1": self.succ1,
            "pred2": self.pred2,
            "succ2": self.succ2,
            "expect": self.expect,
        }


class BcaSlot:
    """The BCA marked-loop slot (deviation D1).

    A processor appears at most once on a BCA loop (the BG path is a
    breadth-first tree path and the initiator never relays BG snakes), so a
    single predecessor/successor pair suffices.  ``is_target`` is set on the
    penultimate loop processor — the message recipient.
    """

    __slots__ = ("pred", "succ", "is_target")

    def __init__(self) -> None:
        self.pred: int | None = None
        self.succ: int | None = None
        self.is_target = False

    def set(self, pred: int, succ: int) -> None:
        """Record the BCA loop ports for this processor."""
        self.pred, self.succ = pred, succ

    def active(self) -> bool:
        """Whether this processor lies on the current BCA loop."""
        return self.pred is not None

    def clear(self) -> None:
        """Forget the BCA loop designations and target flag."""
        self.pred = self.succ = None
        self.is_target = False

    def snapshot(self) -> dict[str, Any]:
        return {"pred": self.pred, "succ": self.succ, "is_target": self.is_target}


class DyingRelay:
    """Head-promotion state for one dying-snake family passing through.

    §2.3.3: a processor eats the head, then the *next* character received
    through the predecessor in-port is promoted to the new head; everything
    after passes unchanged.  ``promote_next`` is True between eating the
    head and seeing that next character.  The register also remembers which
    loop slot this family wrote so body characters route without re-deriving
    it.
    """

    __slots__ = ("active", "promote_next", "pred", "succ")

    def __init__(self) -> None:
        self.active = False
        self.promote_next = False
        self.pred: int | None = None
        self.succ: int | None = None

    def start(self, pred: int, succ: int) -> None:
        """Begin relaying: head just eaten, awaiting the promotion char."""
        self.active = True
        self.promote_next = True
        self.pred, self.succ = pred, succ

    def finish(self) -> None:
        """Tail passed: this dying snake is done with this processor."""
        self.active = False
        self.promote_next = False
        self.pred = self.succ = None

    def snapshot(self) -> dict[str, Any]:
        return {
            "active": self.active,
            "promote_next": self.promote_next,
            "pred": self.pred,
            "succ": self.succ,
        }
