"""Scripted single-RCA driver (Lemma 4.3 experiments, unit tests).

Runs exactly one Root Communication Algorithm from a chosen processor on a
chosen network, with no DFS layer, and reports when it completed and what
the root transcript contains.  This isolates the O(D) claim of Lemma 4.3
and gives the unit tests a handle on every RCA step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolViolation
from repro.sim.characters import Char
from repro.sim.engine import Engine
from repro.sim.run import (
    DEFAULT_BACKEND,
    ENGINE_BACKENDS,
    EnginePool,
    RunConfig,
    check_backend,
    execute_run,
    make_engine,
)
from repro.sim.transcript import Transcript
from repro.protocol.automaton import ProtocolProcessor
from repro.topology.portgraph import PortGraph

__all__ = ["ScriptedRCADriver", "RCARunResult", "run_single_rca"]


class ScriptedRCADriver(ProtocolProcessor):
    """A processor that can be told to run one RCA and remembers finishing."""

    def __init__(self) -> None:
        super().__init__()
        self.completed_at: int | None = None

    def trigger(self, token: Char) -> None:
        """Start the RCA now (called by the harness, not by a character)."""
        self.start_rca(token)

    def _on_rca_complete(self) -> None:
        self.completed_at = self.tick


@dataclass(frozen=True)
class RCARunResult:
    """Outcome of one scripted RCA."""

    initiator: int
    ticks: int
    completed_at: int
    transcript: Transcript
    engine: Engine

    @property
    def forward_events(self) -> list[Char]:
        """The FORWARD/BACK tokens the root observed."""
        return [
            e.char
            for e in self.transcript.events()
            if e.kind == "recv" and e.char is not None and e.char.kind in ("FWD", "BACK")
        ]


def run_single_rca(
    graph: PortGraph,
    initiator: int,
    *,
    root: int = 0,
    token: Char | None = None,
    max_ticks: int | None = None,
    backend: str = DEFAULT_BACKEND,
    pool: EnginePool | None = None,
) -> RCARunResult:
    """Run one RCA from ``initiator`` toward ``root`` and drain the network.

    The token defaults to ``FORWARD(1, 1)``.  Raises
    :class:`~repro.errors.TickBudgetExceeded` on livelock.  With ``pool``,
    the engine is checked out of (and returned to) an
    :class:`~repro.sim.run.EnginePool` — episode loops that fire many RCAs
    on one network reuse a single engine instead of rebuilding it per
    episode.  The ``engine`` in the result then stays coherent only until
    the pool's next checkout for this network.
    """
    if initiator == root:
        raise ProtocolViolation("the root does not run the RCA with itself")
    if pool is not None:
        engine = pool.checkout(
            ENGINE_BACKENDS[check_backend(backend)],
            graph,
            ScriptedRCADriver,
            root=root,
        )
        processors = engine.processors
    else:
        processors = [ScriptedRCADriver() for _ in graph.nodes()]
        engine = make_engine(backend, graph, list(processors), root=root)
    try:
        engine.start()
        driver = processors[initiator]
        driver.begin_tick(engine.tick)
        driver.trigger(token or Char("FWD", out_port=1, in_port=1))
        engine.wake(initiator)
        budget = max_ticks or (400 * (graph.num_nodes + 2) + 2000)
        run = execute_run(
            engine,
            RunConfig(
                max_ticks=budget,
                until=lambda: driver.completed_at is not None,
                start=False,
                drain_slack=200,
                backend=backend,
            ),
        )
        completed = driver.completed_at
        assert completed is not None
        return RCARunResult(
            initiator=initiator,
            ticks=run.drained_ticks,
            completed_at=completed,
            transcript=run.transcript,
            engine=engine,
        )
    finally:
        if pool is not None:
            pool.checkin(engine)
