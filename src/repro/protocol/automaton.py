"""The protocol automaton: snakes, tokens, RCA and BCA in one processor.

This class implements, per the paper:

* generic growing-snake handling (§2.3.2): breadth-first flooding with
  visited/parent marks, body pass-through, tail-triggered body appending;
* generic dying-snake handling (§2.3.3): eat the head, promote the next
  character, land the tail on the last path processor;
* marked-loop token routing with slot alternation (§2.4) and the root's
  pred-#1 -> succ-#2 exception;
* KILL / UNMARK cleanup (RCA steps 4-5);
* the **RCA initiator role** (processor A, §4.2.1 steps 1-5);
* the **root's RCA duties** (IG->OG and ID->OD streaming conversion);
* the **BCA initiator and recipient roles** (deviation D1 — reconstructed
  from the same toolkit; see DESIGN.md).

The DFS layer of the Global Topology Determination protocol lives in the
:class:`~repro.protocol.gtd.GTDProcessor` subclass; scripted single-RCA /
single-BCA drivers for the unit benchmarks live in
:mod:`repro.protocol.rca` / :mod:`repro.protocol.bca`.

Every register here is O(delta) — the finite-state audit enforces it.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any

from repro.errors import ProtocolViolation
from repro.sim.characters import (
    Char,
    MSG_DFS_RETURN,
    SCOPE_BCA,
    SCOPE_RCA,
    STAR,
    convert,
    fill_in_port,
    growing_family_of,
    intern_char,
    is_dying,
    is_growing,
    make_body,
    make_head,
    make_tail,
    snake_family,
    snake_role,
)
from repro.sim.processor import Processor
from repro.protocol.marks import BcaSlot, DyingRelay, GrowingMarks, LoopSlots

__all__ = ["ProtocolProcessor"]

# Phase registers are small ints (IntEnum), so the hot-loop comparisons
# below are int equality and the idle checks are plain truthiness (the
# quiescent member of each enum is 0).  The externally visible labels —
# what :meth:`ProtocolProcessor.state_snapshot` reports — are the
# lower-cased member names, pinned unchanged by the test suite.


class _RcaPhase(IntEnum):
    """RCA initiator phases (processor A working through §4.2.1)."""

    IDLE = 0
    WAIT_OG = 1       # step 1 done, waiting for first OG head
    CONVERT = 2       # step 3: streaming OG -> ID
    WAIT_ODT = 3      # step 3: waiting for the OD tail
    WAIT_LOOP = 4     # step 4: FORWARD/BACK circling the loop
    WAIT_UNMARK = 5   # step 5: UNMARK circling the loop


class _RootPhase(IntEnum):
    """Root phases for its RCA duties."""

    OPEN = 0          # accepting the next IG head
    IG_STREAM = 1     # converting IG -> OG
    AWAIT_ID = 2      # waiting for the ID head
    ID_STREAM = 3     # converting ID -> OD
    LOOP = 4          # relaying FORWARD/BACK then UNMARK


class _BcaPhase(IntEnum):
    """BCA initiator phases (processor B, deviation D1)."""

    IDLE = 0
    SEARCH = 1        # BG flood out, waiting on the target in-port
    CONVERT = 2       # streaming BG -> BD
    WAIT_TAIL = 3     # BD tail circling back to B
    WAIT_DONE = 4     # BDONE circling the loop
    WAIT_UNMARK = 5   # BCA UNMARK circling the loop


_RCA_IDLE = _RcaPhase.IDLE
_RCA_WAIT_OG = _RcaPhase.WAIT_OG
_RCA_CONVERT = _RcaPhase.CONVERT
_RCA_WAIT_ODT = _RcaPhase.WAIT_ODT
_RCA_WAIT_LOOP = _RcaPhase.WAIT_LOOP
_RCA_WAIT_UNMARK = _RcaPhase.WAIT_UNMARK

_ROOT_OPEN = _RootPhase.OPEN
_ROOT_IG_STREAM = _RootPhase.IG_STREAM
_ROOT_AWAIT_ID = _RootPhase.AWAIT_ID
_ROOT_ID_STREAM = _RootPhase.ID_STREAM
_ROOT_LOOP = _RootPhase.LOOP

_BCA_IDLE = _BcaPhase.IDLE
_BCA_SEARCH = _BcaPhase.SEARCH
_BCA_CONVERT = _BcaPhase.CONVERT
_BCA_WAIT_TAIL = _BcaPhase.WAIT_TAIL
_BCA_WAIT_DONE = _BcaPhase.WAIT_DONE
_BCA_WAIT_UNMARK = _BcaPhase.WAIT_UNMARK


# KILL purge predicates, one per scope.  Module-level (not per-call
# lambdas) so the object path and the code-space handler table share the
# exact same callables; semantics match ``growing_family_of`` exactly.
def _purge_rca_growing(char: Char) -> bool:
    return is_growing(char) and char.kind[:2] in ("IG", "OG")


def _purge_bca_growing(char: Char) -> bool:
    return is_growing(char) and char.kind[:2] == "BG"


class ProtocolProcessor(Processor):
    """A finite-state processor speaking the paper's full character protocol.

    Subclass hooks (all no-ops here):

    * :meth:`_on_dfs_char` — a DFS token arrived (GTD layer);
    * :meth:`_on_rca_complete` — this processor's own RCA finished (step 5);
    * :meth:`_on_bca_message` — a BCA delivered its message to *this*
      processor (it is the penultimate loop node);
    * :meth:`_on_bca_target_resume` — the BCA that delivered to this
      processor has finished cleaning up; safe to act;
    * :meth:`_on_bca_initiator_done` — this processor's own BCA finished.
    """

    #: The KILL token only ever erases growing-snake characters (§2.3.4);
    #: both purge sites below filter on ``is_growing``.  Declaring it lets
    #: the flat-core backend wire never-purged kinds straight to the wheel.
    PURGES_ONLY_GROWING = True

    #: The hot relay/stream transitions live entirely in the GrowingMarks /
    #: DyingRelay registers, which the character kernel's transition tables
    #: encode as per-family phases — the flat-core backend may table-walk
    #: this processor's deliveries (escapes land back in the handlers).
    TABLE_AUTOMATON = True

    def __init__(self) -> None:
        super().__init__()
        self.growing = {"IG": GrowingMarks(), "OG": GrowingMarks(), "BG": GrowingMarks()}
        self.relay = {"ID": DyingRelay(), "OD": DyingRelay(), "BD": DyingRelay()}
        # Flat aliases of the registers above, one attribute load each for
        # the code-space handlers.  Aliases — not copies: reset() re-runs
        # this __init__, so handlers must reach the registers through
        # ``self`` per call, never capture them in closures.
        self._marks_ig = self.growing["IG"]
        self._marks_og = self.growing["OG"]
        self._marks_bg = self.growing["BG"]
        self._relay_id = self.relay["ID"]
        self._relay_od = self.relay["OD"]
        self._relay_bd = self.relay["BD"]
        self.loop = LoopSlots()
        self.bca_slot = BcaSlot()
        # RCA initiator registers
        self.rca_phase = _RCA_IDLE
        self.rca_token: Char | None = None
        self.rca_accept_port: int | None = None
        self.rca_promote = False
        # Root registers
        self.root_phase = _ROOT_OPEN
        self.root_ig_src: int | None = None
        self.root_id_promote = False
        # BCA initiator registers
        self.bca_phase = _BCA_IDLE
        self.bca_in_port: int | None = None
        self.bca_msg: str | None = None
        self.bca_promote = False
        # statistics (not protocol state): completed-RCA counter for tests
        self.rca_completed = 0
        self.bca_completed = 0

    # ==================================================================
    # dispatch
    # ==================================================================
    def handle(self, in_port: int, char: Char) -> None:
        kind = char.kind
        if kind == "KILL":
            self._handle_kill(char)
        elif kind == "UNMARK":
            self._dispatch_unmark(in_port, char)
        elif is_dying(char):
            family = snake_family(char)
            if family == "BD":
                self._handle_bd(in_port, char)
            else:
                self._handle_rca_dying(family, in_port, char)
        elif is_growing(char):
            self._handle_growing(snake_family(char), in_port, fill_in_port(char, in_port))
        elif kind in ("FWD", "BACK"):
            self._handle_loop_token(in_port, char)
        elif kind == "BDONE":
            self._handle_bdone(in_port, char)
        elif kind == "DFS":
            self._dispatch_dfs(in_port, char)
        else:
            raise ProtocolViolation(f"unknown character {char} at node {self._node()}")

    # Uniform (in_port, char) adapters for the scheduler's dispatch tables.
    def _dispatch_kill(self, in_port: int, char: Char) -> None:
        self._handle_kill(char)

    def _dispatch_unmark(self, in_port: int, char: Char) -> None:
        if char.payload == SCOPE_RCA:
            self._handle_unmark_rca(in_port, char)
        else:
            self._handle_unmark_bca(in_port, char)

    # The adapters inline :func:`fill_in_port` (the dispatch table already
    # guarantees the kind, so only the STAR check remains) and hoist
    # :meth:`_handle_growing`'s interception tests — each adapter knows its
    # family, so the per-delivery string comparisons disappear.
    def _dispatch_dfs(self, in_port: int, char: Char) -> None:
        if char.in_port == STAR:
            char = intern_char(char.kind, char.out_port, in_port, char.payload)
        self._on_dfs_char(in_port, char)

    def _dispatch_growing_ig(self, in_port: int, char: Char) -> None:
        if char.in_port == STAR:
            char = intern_char(char.kind, char.out_port, in_port, char.payload)
        if self.ctx.is_root:
            self._root_handle_ig(in_port, char)
        else:
            self._relay_growing(self.growing["IG"], "IG", in_port, char)

    def _dispatch_growing_og(self, in_port: int, char: Char) -> None:
        if char.in_port == STAR:
            char = intern_char(char.kind, char.out_port, in_port, char.payload)
        if self.rca_phase != _RCA_IDLE:
            self._rca_handle_og(in_port, char)
        else:
            self._relay_growing(self.growing["OG"], "OG", in_port, char)

    def _dispatch_growing_bg(self, in_port: int, char: Char) -> None:
        if char.in_port == STAR:
            char = intern_char(char.kind, char.out_port, in_port, char.payload)
        if self.bca_phase != _BCA_IDLE:
            self._bca_handle_bg(in_port, char)
        else:
            self._relay_growing(self.growing["BG"], "BG", in_port, char)

    def _dispatch_dying_id(self, in_port: int, char: Char) -> None:
        self._handle_rca_dying("ID", in_port, char)

    def _dispatch_dying_od(self, in_port: int, char: Char) -> None:
        self._handle_rca_dying("OD", in_port, char)

    #: character kind -> adapter method name; expanded into bound-method
    #: tables per instance by :meth:`handler_table`.
    _DISPATCH_NAMES: dict[str, str] = {
        "KILL": "_dispatch_kill",
        "UNMARK": "_dispatch_unmark",
        "DFS": "_dispatch_dfs",
        "FWD": "_handle_loop_token",
        "BACK": "_handle_loop_token",
        "BDONE": "_handle_bdone",
        "BDH": "_handle_bd",
        "BDB": "_handle_bd",
        "BDT": "_handle_bd",
        **{f"IG{role}": "_dispatch_growing_ig" for role in "HBT"},
        **{f"OG{role}": "_dispatch_growing_og" for role in "HBT"},
        **{f"BG{role}": "_dispatch_growing_bg" for role in "HBT"},
        **{f"ID{role}": "_dispatch_dying_id" for role in "HBT"},
        **{f"OD{role}": "_dispatch_dying_od" for role in "HBT"},
    }

    def handler_table(self) -> dict[str, Any]:
        """Precomputed per-kind dispatch table for the scheduler core.

        Subclasses that override :meth:`handle` itself get an empty table,
        so their override stays authoritative for every character.
        """
        if type(self).handle is not ProtocolProcessor.handle:
            return {}
        return {
            kind: getattr(self, name) for kind, name in self._DISPATCH_NAMES.items()
        }

    def code_handler_table(self, kernel, chars, csend, cbroadcast):
        """Code-space handlers: ``handler(in_port, code)``, no Char objects.

        Built once per engine attach by the flat-core backend for non-root
        nodes running on its send-time fast path.  Every *hot* protocol
        action — growing-snake relays, dying-snake body streaming, KILL
        floods, loop-token and UNMARK routing — runs entirely on small-int
        codes: character queries are one indexed load into the
        :class:`~repro.sim.characters.CharKernel` tables, and emissions go
        straight to the packed wheel through ``csend(out_port, code,
        arrival_tick)`` / ``cbroadcast(code, arrival_tick)``.  Cold or
        intricate branches (interceptions, head promotion, terminal
        absorb-and-release steps, protocol violations) delegate to the
        object-path handlers via ``chars[code]``, so semantics — including
        exception messages — are byte-identical by construction.

        The engine applies the kernel fill table *before* dispatch, so
        ``code`` is always concrete here (mirroring the object loop, which
        fills before calling the per-kind handler).  Handlers reach every
        mutable register through ``self`` per call — :meth:`reset` re-runs
        ``__init__`` and rebinds them all.  Returns ``None`` (no table)
        when a subclass overrides :meth:`handle`, mirroring
        :meth:`handler_table`.
        """
        if type(self).handle is not ProtocolProcessor.handle:
            return None
        role_list = kernel.role_list
        body_ig = kernel.body_codes[0]
        body_og = kernel.body_codes[1]
        body_bg = kernel.body_codes[4]
        # the wiring context is attach-stable (reset re-attaches the same
        # NodeContext), so the connected out-ports may be captured
        out_ports = self.ctx.out_ports

        def c_ig(in_port: int, code: int) -> None:
            # §2.3.2 relay for IG (the root intercepts IG, but the engine
            # never installs code handlers on the root)
            marks = self._marks_ig
            if not marks.visited:
                if role_list[code] == 0:
                    marks.mark(in_port)
                    cbroadcast(code, self._tick + 3)
                return
            if in_port != marks.parent_in:
                return
            if role_list[code] == 2:
                arrival = self._tick + 3
                for port in out_ports:
                    csend(port, body_ig[port], arrival)
                cbroadcast(code, arrival + 1)
            else:
                cbroadcast(code, self._tick + 3)

        def c_og(in_port: int, code: int) -> None:
            if self.rca_phase:
                self._rca_handle_og(in_port, chars[code])
                return
            marks = self._marks_og
            if not marks.visited:
                if role_list[code] == 0:
                    marks.mark(in_port)
                    cbroadcast(code, self._tick + 3)
                return
            if in_port != marks.parent_in:
                return
            if role_list[code] == 2:
                arrival = self._tick + 3
                for port in out_ports:
                    csend(port, body_og[port], arrival)
                cbroadcast(code, arrival + 1)
            else:
                cbroadcast(code, self._tick + 3)

        def c_bg(in_port: int, code: int) -> None:
            if self.bca_phase:
                self._bca_handle_bg(in_port, chars[code])
                return
            marks = self._marks_bg
            if not marks.visited:
                if role_list[code] == 0:
                    marks.mark(in_port)
                    cbroadcast(code, self._tick + 3)
                return
            if in_port != marks.parent_in:
                return
            if role_list[code] == 2:
                arrival = self._tick + 3
                for port in out_ports:
                    csend(port, body_bg[port], arrival)
                cbroadcast(code, arrival + 1)
            else:
                cbroadcast(code, self._tick + 3)

        def c_id(in_port: int, code: int) -> None:
            # §2.3.3 body streaming; heads, tails, promotion and the root
            # interception all delegate (rare: once per snake per node)
            relay = self._relay_id
            if (
                relay.active
                and in_port == relay.pred
                and not relay.promote_next
                and role_list[code] == 1
            ):
                csend(relay.succ, code, self._tick + 3)
            else:
                self._handle_rca_dying("ID", in_port, chars[code])

        def c_od(in_port: int, code: int) -> None:
            relay = self._relay_od
            if (
                relay.active
                and in_port == relay.pred
                and not relay.promote_next
                and role_list[code] == 1
            ):
                csend(relay.succ, code, self._tick + 3)
            else:
                self._handle_rca_dying("OD", in_port, chars[code])

        def c_bd(in_port: int, code: int) -> None:
            relay = self._relay_bd
            if (
                relay.active
                and in_port == relay.pred
                and not relay.promote_next
                and role_list[code] == 1
            ):
                csend(relay.succ, code, self._tick + 3)
            else:
                self._handle_bd(in_port, chars[code])

        def c_loop(in_port: int, code: int) -> None:
            # the initiator's absorb (step 4 -> 5) delegates; route() only
            # mutates the alternation state when it succeeds, so a None
            # return can safely re-run through the object path to raise
            if self.rca_phase == _RCA_WAIT_LOOP and in_port == self.loop.pred1:
                self._handle_loop_token(in_port, chars[code])
                return
            succ = self.loop.route(in_port)
            if succ is None:
                self._handle_loop_token(in_port, chars[code])
                return
            csend(succ, code, self._tick + 3)

        def c_unmark_rca(in_port: int, code: int) -> None:
            if self.rca_phase == _RCA_WAIT_UNMARK and in_port == self.loop.pred1:
                self._handle_unmark_rca(in_port, chars[code])
                return
            succ = self.loop.unmark(in_port)
            if succ is None:
                self._handle_unmark_rca(in_port, chars[code])
                return
            csend(succ, code, self._tick + 1)

        def c_kill_rca(in_port: int, code: int) -> None:
            purged = self.purge_outbox(_purge_rca_growing)
            ig = self._marks_ig
            og = self._marks_og
            if purged or ig.visited or og.visited:
                ig.clear()
                og.clear()
                cbroadcast(code, self._tick + 1)

        def c_kill_bca(in_port: int, code: int) -> None:
            purged = self.purge_outbox(_purge_bca_growing)
            bg = self._marks_bg
            if purged or bg.visited:
                bg.clear()
                cbroadcast(code, self._tick + 1)

        # Handler-plan slots (classified once in the kernel): the family
        # index for snakes, 6 = loop token, 7/8 = RCA/BCA KILL, 9 = RCA
        # UNMARK.  DFS, BDONE and the BCA UNMARK stay on the object path
        # (cold or subclass-hooked); a None entry is the engine's fallback.
        impl = (
            c_ig, c_og, c_id, c_od, c_bg, c_bd,
            c_loop, c_kill_rca, c_kill_bca, c_unmark_rca,
        )
        return [impl[slot] if slot >= 0 else None for slot in kernel.handler_plan]

    # ==================================================================
    # growing snakes (§2.3.2)
    # ==================================================================
    def _handle_growing(self, family: str, in_port: int, char: Char) -> None:
        # Interceptions: terminators and initiators do not act as relays.
        assert self.ctx is not None
        if family == "IG" and self.ctx.is_root:
            self._root_handle_ig(in_port, char)
            return
        if family == "OG" and self.rca_phase != _RCA_IDLE:
            self._rca_handle_og(in_port, char)
            return
        if family == "BG" and self.bca_phase != _BCA_IDLE:
            self._bca_handle_bg(in_port, char)
            return
        self._relay_growing(self.growing[family], family, in_port, char)

    def _relay_growing(
        self, marks: GrowingMarks, family: str, in_port: int, char: Char
    ) -> None:
        """The generic §2.3.2 relay: flood heads, pass bodies, append tails."""
        assert self.ctx is not None
        role = char.kind[2]
        if not marks.visited:
            if role == "H":
                # First head claims this processor for its breadth-first tree.
                marks.mark(in_port)
                self.broadcast(char)
            # Stray body/tail at an unvisited processor: post-KILL debris,
            # dropped (deviation D6).
            return
        if in_port != marks.parent_in:
            # "all other <family>-snake characters will be ignored"
            return
        if role == "T":
            # Append this processor's own position, then pass the tail.
            for port in self.ctx.out_ports:
                self.send(port, make_body(family, port))
            self.broadcast(char, extra_delay=1)
        else:
            self.broadcast(char)

    # ------------------------------------------------------------------
    # root duties: IG -> OG conversion (RCA step 2)
    # ------------------------------------------------------------------
    def _root_handle_ig(self, in_port: int, char: Char) -> None:
        role = snake_role(char)
        if self.root_phase == _ROOT_OPEN:
            if role != "H":
                return  # stray debris
            # Accept: close to further IG-snakes, start converting to OG.
            self.root_phase = _ROOT_IG_STREAM
            self.root_ig_src = in_port
            # The root originates the OG flood; mark it so returning OG
            # snakes are ignored rather than relayed in a cycle.
            self.growing["OG"].mark(None)
            self.broadcast(convert(char, "OG"))
            return
        if self.root_phase == _ROOT_IG_STREAM and in_port == self.root_ig_src:
            if role == "B":
                self.broadcast(convert(char, "OG"))
            elif role == "T":
                # Hold the tail, append the root's own body character
                # through each out-port, then release the tail (§4.2.1.2).
                for port in self.ctx.out_ports:
                    self.send(port, make_body("OG", port))
                self.broadcast(make_tail("OG"), extra_delay=1)
                self.root_phase = _ROOT_AWAIT_ID
            else:
                raise ProtocolViolation("second IG head on the accepted stream")
            return
        # Closed to all other IG characters.

    # ------------------------------------------------------------------
    # RCA initiator: waiting for / converting the OG snake (step 3)
    # ------------------------------------------------------------------
    def _rca_handle_og(self, in_port: int, char: Char) -> None:
        role = snake_role(char)
        if self.rca_phase == _RCA_WAIT_OG:
            if role != "H":
                return  # debris
            # First surviving OG head: close off, eat it as an ID head.
            self.rca_accept_port = in_port
            self.loop.set_slot(1, pred=in_port, succ=char.out_port)
            self.rca_promote = True
            self.rca_phase = _RCA_CONVERT
            return
        if self.rca_phase == _RCA_CONVERT and in_port == self.rca_accept_port:
            succ = self.loop.succ1
            assert succ is not None
            if role == "B":
                out_kind = "IDH" if self.rca_promote else "IDB"
                self.rca_promote = False
                self.send(succ, intern_char(out_kind, char.out_port, char.in_port))
            elif role == "T":
                self.send(succ, make_tail("ID"))
                self.rca_phase = _RCA_WAIT_ODT
            else:
                raise ProtocolViolation("second OG head on the accepted stream")
            return
        # Closed to all other OG characters.

    # ------------------------------------------------------------------
    # BCA initiator: waiting for / converting the BG snake (deviation D1)
    # ------------------------------------------------------------------
    def _bca_handle_bg(self, in_port: int, char: Char) -> None:
        role = snake_role(char)
        if self.bca_phase == _BCA_SEARCH:
            if role == "H" and in_port == self.bca_in_port:
                # First BG head back through the target in-port: the snake
                # encodes a minimal loop B -> ... -> A -> B.
                self.bca_slot.set(pred=in_port, succ=char.out_port)
                self.bca_promote = True
                self.bca_phase = _BCA_CONVERT
            # All other BG characters are ignored: B never relays BG.
            return
        if self.bca_phase == _BCA_CONVERT and in_port == self.bca_in_port:
            succ = self.bca_slot.succ
            assert succ is not None
            if role == "B":
                out_kind = "BDH" if self.bca_promote else "BDB"
                self.bca_promote = False
                self.send(succ, intern_char(out_kind, char.out_port, char.in_port))
            elif role == "T":
                if self.bca_promote:
                    # Loop of length 1 (self-loop): B is its own recipient.
                    self.bca_slot.is_target = True
                    self.bca_promote = False
                    assert self.bca_msg is not None
                    self._on_bca_message(self.bca_msg)
                self.send(succ, make_tail("BD", payload=self.bca_msg))
                self.bca_phase = _BCA_WAIT_TAIL
            return
        # Otherwise: ignore.

    # ==================================================================
    # dying snakes (§2.3.3)
    # ==================================================================
    def _handle_rca_dying(self, family: str, in_port: int, char: Char) -> None:
        assert self.ctx is not None
        role = snake_role(char)
        if family == "ID" and self.ctx.is_root:
            self._root_handle_id(in_port, char)
            return
        if family == "OD" and self.rca_phase == _RCA_WAIT_ODT and role == "T":
            # RCA step 4: A received the OD tail; the loop is fully marked.
            self._rca_release_kill_and_token()
            return
        relay = self.relay[family]
        slot = 1 if family == "ID" else 2
        if role == "H":
            if relay.active:
                raise ProtocolViolation(f"{family} head while already relaying")
            self.loop.set_slot(slot, pred=in_port, succ=char.out_port)
            relay.start(pred=in_port, succ=char.out_port)
            return  # head is eaten
        if relay.active and in_port == relay.pred:
            succ = relay.succ
            assert succ is not None
            if role == "B":
                out_kind = family + ("H" if relay.promote_next else "B")
                relay.promote_next = False
                self.send(succ, intern_char(out_kind, char.out_port, char.in_port))
            else:  # tail
                self.send(succ, char)
                relay.finish()
            return
        raise ProtocolViolation(
            f"unexpected {char} at node {self._node()} via in-port {in_port}"
        )

    def _root_handle_id(self, in_port: int, char: Char) -> None:
        """Root exception: ID characters convert to OD (§2.3.3)."""
        role = snake_role(char)
        if self.root_phase == _ROOT_AWAIT_ID:
            if role != "H":
                raise ProtocolViolation("root expected an ID head")
            # "the root will set predecessor in-port #1 and successor
            # out-port #2 appropriately"
            self.loop.pred1 = in_port
            self.loop.succ2 = char.out_port
            self.root_id_promote = True
            self.root_phase = _ROOT_ID_STREAM
            return  # head eaten (converted into loop marks)
        if self.root_phase == _ROOT_ID_STREAM and in_port == self.loop.pred1:
            succ = self.loop.succ2
            assert succ is not None
            if role == "B":
                out_kind = "ODH" if self.root_id_promote else "ODB"
                self.root_id_promote = False
                self.send(succ, intern_char(out_kind, char.out_port, char.in_port))
            elif role == "T":
                self.send(succ, make_tail("OD"))
                self.root_phase = _ROOT_LOOP
            else:
                raise ProtocolViolation("second ID head at root")
            return
        raise ProtocolViolation(f"unexpected ID character {char} at root")

    # ------------------------------------------------------------------
    # BD: the BCA's dying snake, including message delivery
    # ------------------------------------------------------------------
    def _handle_bd(self, in_port: int, char: Char) -> None:
        role = snake_role(char)
        if (
            self.bca_phase == _BCA_WAIT_TAIL
            and role == "T"
            and in_port == self.bca_slot.pred
        ):
            # The tail returned to B: the loop is marked and the message was
            # delivered one hop ago.  Clean up (mirrors RCA step 4).
            self._release_kill(SCOPE_BCA)
            succ = self.bca_slot.succ
            assert succ is not None
            self.send(succ, intern_char("BDONE"))
            self.bca_phase = _BCA_WAIT_DONE
            return
        relay = self.relay["BD"]
        if role == "H":
            if relay.active:
                raise ProtocolViolation("BD head while already relaying")
            self.bca_slot.set(pred=in_port, succ=char.out_port)
            relay.start(pred=in_port, succ=char.out_port)
            return
        if relay.active and in_port == relay.pred:
            succ = relay.succ
            assert succ is not None
            if role == "B":
                out_kind = "BDH" if relay.promote_next else "BDB"
                relay.promote_next = False
                self.send(succ, intern_char(out_kind, char.out_port, char.in_port))
            else:  # tail
                if relay.promote_next:
                    # Head immediately followed by tail: this processor is
                    # the penultimate loop node — the message recipient.
                    self.bca_slot.is_target = True
                    if char.payload is None:
                        raise ProtocolViolation("BD tail carried no message")
                    self._on_bca_message(char.payload)
                self.send(succ, char)
                relay.finish()
            return
        raise ProtocolViolation(
            f"unexpected {char} at node {self._node()} via in-port {in_port}"
        )

    # ==================================================================
    # loop tokens (§2.4): FORWARD / BACK, BDONE
    # ==================================================================
    def _handle_loop_token(self, in_port: int, char: Char) -> None:
        assert self.ctx is not None
        if self.rca_phase == _RCA_WAIT_LOOP and in_port == self.loop.pred1:
            # The initiator absorbs its token and starts UNMARK (step 5).
            succ = self.loop.succ1
            assert succ is not None
            self.send(succ, intern_char("UNMARK", payload=SCOPE_RCA))
            self.rca_phase = _RCA_WAIT_UNMARK
            return
        if self.ctx.is_root and self.root_phase == _ROOT_LOOP:
            # Root exception: accept through pred #1, pass through succ #2.
            if in_port != self.loop.pred1:
                raise ProtocolViolation("loop token at root via wrong in-port")
            succ = self.loop.succ2
            assert succ is not None
            self.send(succ, char)
            return
        succ = self.loop.route(in_port)
        if succ is None:
            raise ProtocolViolation(
                f"loop token {char} at node {self._node()} via "
                f"inappropriate in-port {in_port}"
            )
        self.send(succ, char)

    def _handle_bdone(self, in_port: int, char: Char) -> None:
        if self.bca_phase == _BCA_WAIT_DONE and in_port == self.bca_slot.pred:
            # B absorbs its BDONE: growing debris is dead; start UNMARK.
            succ = self.bca_slot.succ
            assert succ is not None
            self.send(succ, intern_char("UNMARK", payload=SCOPE_BCA))
            self.bca_phase = _BCA_WAIT_UNMARK
            return
        if self.bca_slot.active() and in_port == self.bca_slot.pred:
            assert self.bca_slot.succ is not None
            self.send(self.bca_slot.succ, char)
            return
        raise ProtocolViolation(f"BDONE at node {self._node()} off the loop")

    # ==================================================================
    # cleanup: KILL and UNMARK
    # ==================================================================
    def _handle_kill(self, char: Char) -> None:
        scope = char.payload or SCOPE_RCA
        families = growing_family_of(scope)
        purged = self.purge_outbox(
            _purge_rca_growing if scope == SCOPE_RCA else _purge_bca_growing
        )
        marked = any(self.growing[f].visited for f in families)
        if marked or purged:
            for family in families:
                self.growing[family].clear()
            self.broadcast(char)
        # else: no growing traces here — absorb silently.

    def _handle_unmark_rca(self, in_port: int, char: Char) -> None:
        assert self.ctx is not None
        if self.rca_phase == _RCA_WAIT_UNMARK and in_port == self.loop.pred1:
            # UNMARK made it all the way around: terminate (step 5).
            self.loop.clear()
            self._reset_rca_registers()
            self.rca_completed += 1
            self._on_rca_complete()
            return
        if self.ctx.is_root and self.root_phase == _ROOT_LOOP:
            if in_port != self.loop.pred1:
                raise ProtocolViolation("UNMARK at root via wrong in-port")
            succ = self.loop.succ2
            assert succ is not None
            self.send(succ, char)
            self.loop.clear()
            self.root_phase = _ROOT_OPEN  # reopen to IG-snakes
            return
        succ = self.loop.unmark(in_port)
        if succ is None:
            raise ProtocolViolation(
                f"UNMARK at node {self._node()} via inappropriate in-port {in_port}"
            )
        self.send(succ, char)

    def _handle_unmark_bca(self, in_port: int, char: Char) -> None:
        if self.bca_phase == _BCA_WAIT_UNMARK and in_port == self.bca_slot.pred:
            was_target = self.bca_slot.is_target
            self.bca_slot.clear()
            self._reset_bca_registers()
            self.bca_completed += 1
            self._on_bca_initiator_done()
            if was_target:
                # Self-loop bounce: B was its own recipient.
                self._on_bca_target_resume()
            return
        if self.bca_slot.active() and in_port == self.bca_slot.pred:
            assert self.bca_slot.succ is not None
            was_target = self.bca_slot.is_target
            self.send(self.bca_slot.succ, char)
            self.bca_slot.clear()
            if was_target:
                self._on_bca_target_resume()
            return
        raise ProtocolViolation(f"BCA UNMARK at node {self._node()} off the loop")

    # ==================================================================
    # initiator entry points
    # ==================================================================
    def start_rca(self, token: Char) -> None:
        """Begin the Root Communication Algorithm as processor A.

        ``token`` is the FORWARD or BACK loop token to circulate in step 4.
        """
        assert self.ctx is not None
        if self.rca_phase != _RCA_IDLE:
            raise ProtocolViolation("RCA already in progress at this processor")
        if self.ctx.is_root:
            raise ProtocolViolation(
                "the root does not run the RCA with itself (deviation D2)"
            )
        self.rca_token = token
        self.rca_phase = _RCA_WAIT_OG
        # Step 1: release IG-snakes; mark self so they never re-enter.
        self.growing["IG"].mark(None)
        for port in self.ctx.out_ports:
            self.send(port, make_head("IG", port))
        self.broadcast(make_tail("IG"), extra_delay=1)

    def start_bca(self, in_port: int, message: str = MSG_DFS_RETURN) -> None:
        """Send ``message`` backwards through ``in_port`` (the BCA, as B)."""
        assert self.ctx is not None
        if self.bca_phase != _BCA_IDLE:
            raise ProtocolViolation("BCA already in progress at this processor")
        if in_port not in self.ctx.in_ports:
            raise ProtocolViolation(f"in-port {in_port} is not connected")
        self.bca_in_port = in_port
        self.bca_msg = message
        self.bca_phase = _BCA_SEARCH
        self.growing["BG"].mark(None)
        for port in self.ctx.out_ports:
            self.send(port, make_head("BG", port))
        self.broadcast(make_tail("BG"), extra_delay=1)

    # ------------------------------------------------------------------
    def _rca_release_kill_and_token(self) -> None:
        """RCA step 4: speed-3 KILL plus the speed-1 FORWARD/BACK token."""
        assert self.rca_token is not None
        self._release_kill(SCOPE_RCA)
        succ = self.loop.succ1
        assert succ is not None
        self.send(succ, self.rca_token)
        self.rca_phase = _RCA_WAIT_LOOP

    def _release_kill(self, scope: str) -> None:
        """Broadcast a KILL and erase this processor's own growing traces."""
        families = growing_family_of(scope)
        for family in families:
            self.growing[family].clear()
        self.purge_outbox(
            _purge_rca_growing if scope == SCOPE_RCA else _purge_bca_growing
        )
        self.broadcast(intern_char("KILL", payload=scope))

    def _reset_rca_registers(self) -> None:
        self.rca_phase = _RCA_IDLE
        self.rca_token = None
        self.rca_accept_port = None
        self.rca_promote = False

    def _reset_bca_registers(self) -> None:
        self.bca_phase = _BCA_IDLE
        self.bca_in_port = None
        self.bca_msg = None
        self.bca_promote = False

    # ==================================================================
    # subclass hooks
    # ==================================================================
    def _on_dfs_char(self, in_port: int, char: Char) -> None:
        raise ProtocolViolation(
            f"DFS token reached a processor with no DFS layer (node {self._node()})"
        )

    def _on_rca_complete(self) -> None:
        """Called when this processor's own RCA terminates (step 5)."""

    def _on_bca_message(self, payload: str) -> None:
        """Called when a BCA delivers ``payload`` to this processor."""

    def _on_bca_target_resume(self) -> None:
        """Called when the delivering BCA has finished cleanup."""

    def _on_bca_initiator_done(self) -> None:
        """Called when this processor's own BCA terminates."""

    # ==================================================================
    # audit support
    # ==================================================================
    def state_snapshot(self) -> dict[str, Any]:
        return {
            "growing": {f: m.snapshot() for f, m in self.growing.items()},
            "relay": {f: r.snapshot() for f, r in self.relay.items()},
            "loop": self.loop.snapshot(),
            "bca_slot": self.bca_slot.snapshot(),
            "rca": {
                "phase": self.rca_phase.name.lower(),
                "token": self.rca_token.kind if self.rca_token else None,
                "accept_port": self.rca_accept_port,
                "promote": self.rca_promote,
            },
            "root": {
                "phase": self.root_phase.name.lower(),
                "ig_src": self.root_ig_src,
                "id_promote": self.root_id_promote,
            },
            "bca": {
                "phase": self.bca_phase.name.lower(),
                "in_port": self.bca_in_port,
                "msg": self.bca_msg,
                "promote": self.bca_promote,
            },
        }

    def is_protocol_idle(self) -> bool:
        """No protocol activity of any kind at this processor.

        Used by the Lemma 4.2 cleanup invariant: after an RCA/BCA finishes
        (and at protocol end), every register must be back to quiescent.
        """
        return (
            not any(m.visited for m in self.growing.values())
            and not any(r.active for r in self.relay.values())
            and not self.loop.any_set()
            and not self.bca_slot.active()
            and self.rca_phase == _RCA_IDLE
            and self.bca_phase == _BCA_IDLE
            and self.root_phase in (_ROOT_OPEN,)
            and not self.has_pending_output()
        )

    def _node(self) -> int:
        return self.ctx.node if self.ctx else -1
