"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish topology problems from protocol problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "DegreeBoundError",
    "PortInUseError",
    "NotStronglyConnectedError",
    "SimulationError",
    "TickBudgetExceeded",
    "ProtocolError",
    "ProtocolViolation",
    "CleanupViolation",
    "TranscriptError",
    "ReconstructionError",
    "AnalysisError",
    "StoreError",
    "BaselineError",
    "CampaignError",
    "ScenarioExecutionError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class TopologyError(ReproError):
    """A port graph is malformed or violates a model constraint."""


class DegreeBoundError(TopologyError):
    """A processor would exceed the network degree bound ``delta``."""


class PortInUseError(TopologyError):
    """A wire was attached to a port that already has a wire."""


class NotStronglyConnectedError(TopologyError):
    """The protocol requires a strongly-connected network and this one is not."""


class SimulationError(ReproError):
    """The synchronous engine hit an unrecoverable condition."""


class TickBudgetExceeded(SimulationError):
    """A simulation ran past its tick watchdog without terminating.

    The Global Topology Determination protocol terminates in ``O(N * D)``
    ticks; tests and the runner set a generous multiple of that bound as a
    liveness watchdog.  Hitting it indicates a protocol deadlock or livelock.
    """

    def __init__(self, ticks: int, message: str | None = None) -> None:
        self.ticks = ticks
        super().__init__(message or f"simulation exceeded tick budget of {ticks}")


class ProtocolError(ReproError):
    """Base class for protocol-layer failures."""


class ProtocolViolation(ProtocolError):
    """A processor observed an input that the protocol says cannot happen."""


class CleanupViolation(ProtocolError):
    """Lemma 4.2 invariant failure: residual marks/characters after cleanup."""


class TranscriptError(ProtocolError):
    """The root transcript could not be parsed by the master computer."""


class ReconstructionError(ProtocolError):
    """The master computer produced an inconsistent map (stack underflow etc.)."""


class AnalysisError(ReproError):
    """An analysis routine was given out-of-domain parameters."""


class StoreError(ReproError):
    """A result store is corrupt, incompatible, or was misused."""


class BaselineError(ReproError):
    """A benchmark baseline file is malformed or cannot be compared."""


class CampaignError(ReproError):
    """The campaign executor / supervisor hit an unrecoverable condition."""


class ScenarioExecutionError(CampaignError):
    """A scenario failed under ``on_error="raise"`` (strict) supervision.

    Carries enough to find the cell again: the scenario label, the error
    kind (exception class name or supervisor verdict such as
    ``"worker-crash"``/``"deadline"``/``"corrupt-result"``) and the
    deterministic error digest the quarantined record would have carried.
    """

    def __init__(self, label: str, kind: str, digest: str) -> None:
        self.label = label
        self.kind = kind
        self.digest = digest
        super().__init__(
            f"scenario {label} failed: {kind} (digest {digest}); "
            f"rerun with --on-error quarantine to record it and continue"
        )
